//! Benchmark driver synthesis: a `fn main()` derived from the entry
//! function's dependent annotation.
//!
//! The entry point is the **last** top-level `fun` declaration. Its
//! annotation's Π-quantifiers tell the driver which index variables are
//! array/list *lengths* (they index an `array(n)`/`list(n)` in the domain)
//! and which are *scalars* (they index an `int(k)` or are plain `int`
//! arguments). Lengths come from `argv[1]` (`size`, clamped to literal
//! lower bounds from the guards; list lengths additionally capped at 4096
//! so recursive `Drop` cannot overflow the stack). Scalars are redrawn
//! every iteration from guard-derived intervals and re-checked against the
//! full guard conjunction, so the driver never feeds the program an input
//! its type forbids.
//!
//! Everything is deterministic: one xorshift RNG seeded from `argv[3]`
//! drives all draws, so the checked and proven-unchecked variants see
//! byte-identical inputs and must produce byte-identical stdout — that is
//! the differential test.
//!
//! `argv`: `[size] [iters] [seed]`, defaulting to `1000 3 0xDA7A5EED`.
//! Timing goes to **stderr** (`time_ns <n>`), results and FNV-hashed
//! array summaries to **stdout**.

use crate::codegen::FnSig;
use crate::names::mangle;
use dml_syntax::ast as sast;
use dml_types::env::Env;
use dml_types::ml::MlTy;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Outcome of driver synthesis.
pub(crate) struct Driver {
    /// The full `fn main() { ... }` text.
    pub main_rs: String,
    /// `None` when a real driver was produced; otherwise why only a
    /// build-only fallback could be emitted.
    pub fallback_reason: Option<String>,
}

/// A build-only `main` for programs outside the driver subset.
fn fallback(reason: &str) -> Driver {
    let reason_lit = reason.replace('\\', "\\\\").replace('"', "\\\"");
    Driver {
        main_rs: format!("fn main() {{\n    println!(\"no driver: {reason_lit}\");\n}}\n"),
        fallback_reason: Some(reason.to_string()),
    }
}

/// How one quantified index variable is used by the entry's domain.
#[derive(Debug, Clone)]
struct IndexVar {
    rust: String,
    /// Indexes an `array(v)`/`list(v)` somewhere in the domain.
    is_length: bool,
    /// Indexes a `list(v)` (forces the 4096 cap).
    is_list_len: bool,
    /// Literal lower bound from sort + guards (`nat` gives 0).
    lo: i64,
    /// Literal exclusive upper bound, if any.
    hi_lit: Option<i64>,
}

pub(crate) fn synth_main(
    prog: &sast::Program,
    env: &Env,
    top_fns: &[(String, Rc<FnSig>)],
) -> Driver {
    // Entry: last top-level fun declaration.
    let Some(entry_fd) = prog.decls.iter().rev().find_map(|d| match d {
        sast::Decl::Fun(group) => group.last(),
        _ => None,
    }) else {
        return fallback("program has no top-level fun declaration");
    };
    let Some((_, sig)) = top_fns.iter().rev().find(|(n, _)| *n == entry_fd.name.name) else {
        return fallback("entry function was not emitted");
    };
    let Some(anno) = &entry_fd.anno else {
        return fallback("entry function has no dependent annotation");
    };

    // Peel quantifiers: explicit index params plus Pi layers.
    let mut quants: Vec<sast::Quant> = entry_fd.index_params.clone();
    let mut ty = anno.clone();
    loop {
        match ty {
            sast::DType::Pi(qs, inner) => {
                quants.extend(qs);
                ty = *inner;
            }
            other => {
                ty = other;
                break;
            }
        }
    }

    // Peel one arrow per curried group.
    let mut dom_dts: Vec<sast::DType> = Vec::new();
    for _ in 0..sig.groups.len() {
        match ty {
            sast::DType::Arrow(d, rest) => {
                dom_dts.push(*d);
                ty = *rest;
            }
            _ => return fallback("annotation has fewer arrows than parameter groups"),
        }
    }

    // Flatten each group's domain to per-parameter dependent types.
    let mut flat: Vec<(MlTy, sast::DType)> = Vec::new();
    for (g, dt) in dom_dts.into_iter().enumerate() {
        let k = sig.groups[g].len();
        match k {
            0 => {}
            1 => flat.push((sig.groups[g][0].ml.clone(), dt)),
            _ => match dt {
                sast::DType::Product(ds) if ds.len() == k => {
                    for (p, d) in sig.groups[g].iter().zip(ds) {
                        flat.push((p.ml.clone(), d));
                    }
                }
                _ => return fallback("domain product does not match parameter group"),
            },
        }
    }

    // Classify index variables.
    let mut vars: HashMap<String, IndexVar> = HashMap::new();
    let mut conjuncts: Vec<sast::IProp> = Vec::new();
    for q in &quants {
        let mut iv = IndexVar {
            rust: format!("__ix_{}", mangle(&q.var.name)),
            is_length: false,
            is_list_len: false,
            lo: 0,
            hi_lit: None,
        };
        match flatten_sort(&q.var.name, &q.sort, &mut conjuncts) {
            Ok(lo) => iv.lo = lo,
            Err(reason) => return fallback(&reason),
        }
        if let Some(g) = &q.guard {
            collect_conjuncts(g, &mut conjuncts);
        }
        vars.insert(q.var.name.clone(), iv);
    }
    for (_, dt) in &flat {
        mark_lengths(dt, &mut vars);
    }
    // Literal bounds from the guard conjunction.
    for c in &conjuncts {
        apply_literal_bound(c, &mut vars);
    }

    // Partition parameters into pre-loop aggregates and per-iter scalars.
    let mut pre = String::new(); // statements before the iteration loop
    let mut scalar_draws = String::new(); // statements inside the redraw loop
    let mut scalar_names: Vec<String> = Vec::new();
    let mut call_args: Vec<String> = Vec::new();
    let mut printable_aggs: Vec<(String, String)> = Vec::new();
    let mut agg_n = 0usize;
    let mut b = Builder { env, vars: &vars, tmp: 0 };

    // Length variables are fixed before anything else.
    let mut var_names: Vec<&String> = vars.keys().collect();
    var_names.sort();
    for name in &var_names {
        let iv = &vars[*name];
        if iv.is_length {
            let clamp = if iv.is_list_len { "rt::list_len_clamp" } else { "rt::len_clamp" };
            let _ = writeln!(pre, "    let {} = {clamp}(__size, {});", iv.rust, iv.lo);
        }
    }

    for (k, (ml, dt)) in flat.iter().enumerate() {
        match classify(ml, dt, &vars) {
            Class::Scalar => {
                // Singleton int(v): the value IS the index variable.
                if let Some(v) = singleton_var(dt) {
                    let iv = &vars[&v];
                    if iv.is_length {
                        call_args.push(iv.rust.clone());
                        continue;
                    }
                    let lo = iv.lo;
                    let hi = match iv.hi_lit {
                        Some(h) => format!("{h}"),
                        None => format!("__size.max({})", lo + 1),
                    };
                    let _ = writeln!(
                        scalar_draws,
                        "            let {} = __rng.int_in({lo}, {hi});",
                        iv.rust
                    );
                    scalar_names.push(iv.rust.clone());
                    call_args.push(iv.rust.clone());
                } else if let Some(lit) = singleton_lit(dt) {
                    call_args.push(format!("{lit}i64"));
                } else {
                    // Plain unindexed int: a fresh draw in [0, size).
                    let n = format!("__s{k}");
                    let _ = writeln!(
                        scalar_draws,
                        "            let {n} = __rng.int_in(0, __size.max(1));"
                    );
                    scalar_names.push(n.clone());
                    call_args.push(n);
                }
            }
            Class::Bool => {
                let n = format!("__s{k}");
                let _ = writeln!(scalar_draws, "            let {n} = __rng.int_in(0, 2) == 1;");
                scalar_names.push(n.clone());
                call_args.push(n);
            }
            Class::Unit => call_args.push("()".to_string()),
            Class::Aggregate => {
                let name = format!("__agg{agg_n}");
                agg_n += 1;
                match b.build(ml, dt, &name, 1) {
                    Ok(stmts) => pre.push_str(&stmts),
                    Err(reason) => return fallback(&reason),
                }
                call_args.push(format!("{name}.clone()"));
                if !has_arrow(ml) {
                    printable_aggs.push((format!("arg{k}"), name));
                }
            }
            Class::Unsupported(reason) => return fallback(&reason),
        }
    }

    // Guard re-check: only meaningful when scalars are drawn.
    let guard_rust = if scalar_names.is_empty() || conjuncts.is_empty() {
        None
    } else {
        let mut parts = Vec::new();
        for c in &conjuncts {
            match prop_rust(c, &vars) {
                Ok(s) => parts.push(s),
                Err(reason) => return fallback(&reason),
            }
        }
        Some(parts.join(" && "))
    };

    // Assemble main().
    let mut m = String::new();
    m.push_str("fn main() {\n");
    m.push_str("    let __argv: Vec<String> = std::env::args().collect();\n");
    m.push_str(
        "    let __size: i64 = __argv.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);\n",
    );
    m.push_str(
        "    let __iters: i64 = __argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(3).max(1);\n",
    );
    m.push_str(
        "    let __seed: u64 = __argv.get(3).and_then(|s| s.parse().ok()).unwrap_or(0xDA7A5EED);\n",
    );
    m.push_str("    let mut __rng = rt::Rng::new(__seed);\n");
    m.push_str(&pre);
    m.push_str("    let mut __last = None;\n");
    m.push_str("    let __t0 = std::time::Instant::now();\n");
    m.push_str("    for __it in 0..__iters {\n");
    m.push_str("        let _ = __it;\n");
    if scalar_draws.is_empty() {
        // No per-iter inputs.
    } else if let Some(g) = &guard_rust {
        m.push_str(&format!(
            "        let ({names},) = {{\n            let mut __attempt = 0i64;\n            loop {{\n{draws}                if ({g}) || __attempt >= 64 {{ break ({names},); }}\n                __attempt += 1;\n            }}\n        }};\n",
            names = scalar_names.join(", "),
            draws = indent(&scalar_draws, "        "),
        ));
    } else {
        m.push_str(&indent(&scalar_draws, "        "));
    }
    m.push_str(&format!("        __last = Some({}({}));\n", sig.rust, call_args.join(", ")));
    m.push_str("    }\n");
    m.push_str("    let __dt = __t0.elapsed().as_nanos();\n");
    m.push_str("    eprintln!(\"time_ns {}\", __dt);\n");
    m.push_str("    println!(\"result {:?}\", __last.unwrap());\n");
    for (label, name) in &printable_aggs {
        m.push_str(&format!("    println!(\"{label} {{:?}}\", {name});\n"));
    }
    m.push_str("}\n");

    Driver { main_rs: m, fallback_reason: None }
}

// -- classification --------------------------------------------------------

enum Class {
    Scalar,
    Bool,
    Unit,
    Aggregate,
    Unsupported(String),
}

fn classify(ml: &MlTy, dt: &sast::DType, _vars: &HashMap<String, IndexVar>) -> Class {
    match ml {
        MlTy::Con(n, args) if n == "int" && args.is_empty() => Class::Scalar,
        MlTy::Con(n, args) if n == "bool" && args.is_empty() => {
            if matches!(dt, sast::DType::App { ix_args, .. } if !ix_args.is_empty()) {
                Class::Unsupported("singleton bool parameters unsupported".into())
            } else {
                Class::Bool
            }
        }
        MlTy::Con(n, args) if n == "unit" && args.is_empty() => Class::Unit,
        MlTy::Con(n, _) if n == "array" || n == "list" => Class::Aggregate,
        MlTy::Arrow(_, _) => Class::Aggregate,
        MlTy::Tuple(_) => Class::Aggregate,
        MlTy::Rigid(_) | MlTy::UVar(_) => Class::Scalar,
        MlTy::Con(n, _) => Class::Unsupported(format!("parameter of type `{n}` unsupported")),
    }
}

fn singleton_var(dt: &sast::DType) -> Option<String> {
    match dt {
        sast::DType::App { name, ix_args, .. } if name.name == "int" && ix_args.len() == 1 => {
            match &ix_args[0] {
                sast::Index::Int(sast::IExpr::Var(v)) => Some(v.name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

fn singleton_lit(dt: &sast::DType) -> Option<i64> {
    match dt {
        sast::DType::App { name, ix_args, .. } if name.name == "int" && ix_args.len() == 1 => {
            match &ix_args[0] {
                sast::Index::Int(sast::IExpr::Lit(n, _)) => Some(*n),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Marks variables used as `array(v)` / `list(v)` lengths, recursing into
/// type arguments and products.
fn mark_lengths(dt: &sast::DType, vars: &mut HashMap<String, IndexVar>) {
    match dt {
        sast::DType::App { name, ty_args, ix_args } => {
            let fam = name.name.as_str();
            if (fam == "array" || fam == "list") && ix_args.len() == 1 {
                if let sast::Index::Int(sast::IExpr::Var(v)) = &ix_args[0] {
                    if let Some(iv) = vars.get_mut(&v.name) {
                        iv.is_length = true;
                        if fam == "list" {
                            iv.is_list_len = true;
                        }
                    }
                }
            }
            for t in ty_args {
                mark_lengths(t, vars);
            }
        }
        sast::DType::Product(ds) => {
            for d in ds {
                mark_lengths(d, vars);
            }
        }
        sast::DType::Arrow(a, b) => {
            mark_lengths(a, vars);
            mark_lengths(b, vars);
        }
        sast::DType::Pi(_, t) | sast::DType::Sigma(_, t) => mark_lengths(t, vars),
        sast::DType::Var(_) => {}
    }
}

/// Flattens a sort into a literal lower bound plus extra conjuncts.
fn flatten_sort(
    var: &str,
    sort: &sast::Sort,
    conjuncts: &mut Vec<sast::IProp>,
) -> Result<i64, String> {
    match sort {
        sast::Sort::Int => Ok(0), // scalars default to [0, _)
        sast::Sort::Nat => Ok(0),
        sast::Sort::Bool => Err("boolean index parameters unsupported".into()),
        sast::Sort::Subset(inner, base, prop) => {
            let lo = flatten_sort(var, base, conjuncts)?;
            // The subset's bound variable names the quantified variable.
            conjuncts.push(rename_prop(prop, &inner.name, var));
            Ok(lo)
        }
    }
}

fn rename_prop(p: &sast::IProp, from: &str, to: &str) -> sast::IProp {
    match p {
        sast::IProp::Var(i) => {
            let mut i = i.clone();
            if i.name == from {
                i.name = to.to_string();
            }
            sast::IProp::Var(i)
        }
        sast::IProp::Lit(b, s) => sast::IProp::Lit(*b, *s),
        sast::IProp::Cmp(op, a, c) => sast::IProp::Cmp(
            *op,
            Box::new(rename_iexpr(a, from, to)),
            Box::new(rename_iexpr(c, from, to)),
        ),
        sast::IProp::Not(q) => sast::IProp::Not(Box::new(rename_prop(q, from, to))),
        sast::IProp::And(a, c) => {
            sast::IProp::And(Box::new(rename_prop(a, from, to)), Box::new(rename_prop(c, from, to)))
        }
        sast::IProp::Or(a, c) => {
            sast::IProp::Or(Box::new(rename_prop(a, from, to)), Box::new(rename_prop(c, from, to)))
        }
    }
}

fn rename_iexpr(e: &sast::IExpr, from: &str, to: &str) -> sast::IExpr {
    use sast::IExpr::*;
    let r = |x: &sast::IExpr| Box::new(rename_iexpr(x, from, to));
    match e {
        Var(i) => {
            let mut i = i.clone();
            if i.name == from {
                i.name = to.to_string();
            }
            Var(i)
        }
        Lit(n, s) => Lit(*n, *s),
        Add(a, b) => Add(r(a), r(b)),
        Sub(a, b) => Sub(r(a), r(b)),
        Mul(a, b) => Mul(r(a), r(b)),
        Div(a, b) => Div(r(a), r(b)),
        Mod(a, b) => Mod(r(a), r(b)),
        Min(a, b) => Min(r(a), r(b)),
        Max(a, b) => Max(r(a), r(b)),
        Abs(a) => Abs(r(a)),
        Sgn(a) => Sgn(r(a)),
        Neg(a) => Neg(r(a)),
    }
}

fn collect_conjuncts(p: &sast::IProp, out: &mut Vec<sast::IProp>) {
    match p {
        sast::IProp::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Tightens literal bounds from `v op lit` / `lit op v` conjuncts.
fn apply_literal_bound(c: &sast::IProp, vars: &mut HashMap<String, IndexVar>) {
    use sast::CmpOp::*;
    let sast::IProp::Cmp(op, a, b) = c else { return };
    let (var, lit, var_on_left) = match (a.as_ref(), b.as_ref()) {
        (sast::IExpr::Var(v), sast::IExpr::Lit(n, _)) => (v.name.clone(), *n, true),
        (sast::IExpr::Lit(n, _), sast::IExpr::Var(v)) => (v.name.clone(), *n, false),
        _ => return,
    };
    let Some(iv) = vars.get_mut(&var) else { return };
    // Normalise to var OP lit.
    let op = if var_on_left {
        *op
    } else {
        match op {
            Lt => Gt,
            Le => Ge,
            Gt => Lt,
            Ge => Le,
            Eq => Eq,
            Neq => Neq,
        }
    };
    match op {
        Ge => iv.lo = iv.lo.max(lit),
        Gt => iv.lo = iv.lo.max(lit + 1),
        Lt => iv.hi_lit = Some(iv.hi_lit.map_or(lit, |h| h.min(lit))),
        Le => iv.hi_lit = Some(iv.hi_lit.map_or(lit + 1, |h| h.min(lit + 1))),
        Eq => {
            iv.lo = iv.lo.max(lit);
            iv.hi_lit = Some(lit + 1);
        }
        Neq => {}
    }
}

// -- value synthesis -------------------------------------------------------

struct Builder<'a> {
    env: &'a Env,
    vars: &'a HashMap<String, IndexVar>,
    tmp: u32,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("__t{}", self.tmp)
    }

    /// Emits statements that build an aggregate value named `out_name`.
    fn build(
        &mut self,
        ml: &MlTy,
        dt: &sast::DType,
        out_name: &str,
        depth: usize,
    ) -> Result<String, String> {
        let pad = "    ".repeat(depth);
        match ml {
            MlTy::Con(n, args) if n == "array" && args.len() == 1 => {
                let (len, elem_dt) = self.seq_len(dt, "array")?;
                let v = self.fresh();
                let mut s = String::new();
                let _ = writeln!(s, "{pad}let mut {v} = Vec::new();");
                let _ = writeln!(s, "{pad}for _ in 0..{len} {{");
                let inner = self.build(&args[0], &elem_dt, &format!("{v}_e"), depth + 1);
                s.push_str(&inner?);
                let _ = writeln!(s, "{pad}    {v}.push({v}_e);");
                let _ = writeln!(s, "{pad}}}");
                let _ = writeln!(s, "{pad}let {out_name} = rt::Arr::from_vec({v});");
                Ok(s)
            }
            MlTy::Con(n, args) if n == "list" && args.len() == 1 => {
                let (len, elem_dt) = self.seq_len(dt, "list")?;
                let v = self.fresh();
                let mut s = String::new();
                let _ = writeln!(s, "{pad}let mut {v} = Vec::new();");
                let _ = writeln!(s, "{pad}for _ in 0..{len} {{");
                let inner = self.build(&args[0], &elem_dt, &format!("{v}_e"), depth + 1);
                s.push_str(&inner?);
                let _ = writeln!(s, "{pad}    {v}.push({v}_e);");
                let _ = writeln!(s, "{pad}}}");
                let _ = writeln!(s, "{pad}let {out_name} = rt::List::from_vec({v});");
                Ok(s)
            }
            MlTy::Con(n, a) if n == "int" && a.is_empty() => {
                Ok(format!("{pad}let {out_name} = __rng.int_in(0, 1000000);\n"))
            }
            MlTy::Rigid(_) | MlTy::UVar(_) => {
                Ok(format!("{pad}let {out_name} = __rng.int_in(0, 1000000);\n"))
            }
            MlTy::Con(n, a) if n == "bool" && a.is_empty() => {
                Ok(format!("{pad}let {out_name} = __rng.int_in(0, 2) == 1;\n"))
            }
            MlTy::Con(n, a) if n == "unit" && a.is_empty() => {
                Ok(format!("{pad}let {out_name} = ();\n"))
            }
            MlTy::Tuple(ts) => {
                let comps = match dt {
                    sast::DType::Product(ds) if ds.len() == ts.len() => ds.clone(),
                    _ => return Err("tuple parameter without matching product type".into()),
                };
                let mut s = String::new();
                let mut names = Vec::new();
                for (k, (t, d)) in ts.iter().zip(&comps).enumerate() {
                    let n = format!("{out_name}_{k}");
                    s.push_str(&self.build(t, d, &n, depth)?);
                    names.push(n);
                }
                let _ = writeln!(s, "{pad}let {out_name} = ({},);", names.join(", "));
                Ok(s)
            }
            MlTy::Arrow(_, _) => {
                let f = self.fun_value(ml)?;
                Ok(format!("{pad}let {out_name} = {f};\n"))
            }
            MlTy::Con(n, _) => Err(format!("cannot synthesise a value of type `{n}`")),
        }
    }

    /// The length expression and element dependent type of a sequence type.
    fn seq_len(&self, dt: &sast::DType, fam: &str) -> Result<(String, sast::DType), String> {
        let sast::DType::App { name, ty_args, ix_args } = dt else {
            return Err(format!("{fam} parameter without {fam} dependent type"));
        };
        if name.name != fam || ty_args.len() != 1 {
            return Err(format!("{fam} parameter with mismatched dependent type"));
        }
        let len = match ix_args.as_slice() {
            [sast::Index::Int(sast::IExpr::Var(v))] => match self.vars.get(&v.name) {
                Some(iv) => iv.rust.clone(),
                None => return Err(format!("unknown length variable `{}`", v.name)),
            },
            [sast::Index::Int(sast::IExpr::Lit(n, _))] => format!("{n}"),
            _ => return Err(format!("{fam} length is not a variable or literal")),
        };
        Ok((len, ty_args[0].clone()))
    }

    /// A deterministic function value for a function-typed parameter.
    fn fun_value(&self, ml: &MlTy) -> Result<String, String> {
        let MlTy::Arrow(dom, cod) = ml else { return Err("not a function type".into()) };
        let is_int = |t: &MlTy| {
            matches!(t, MlTy::Con(n, a) if n == "int" && a.is_empty())
                || matches!(t, MlTy::Rigid(_) | MlTy::UVar(_))
        };
        let is_bool = |t: &MlTy| matches!(t, MlTy::Con(n, a) if n == "bool" && a.is_empty());
        let int_pair =
            matches!(dom.as_ref(), MlTy::Tuple(ts) if ts.len() == 2 && ts.iter().all(&is_int));
        if int_pair && is_bool(cod) {
            return Ok("rt::fun(|__p: (i64, i64, )| __p.0 <= __p.1)".to_string());
        }
        if is_int(dom) && is_bool(cod) {
            return Ok("rt::fun(|__p: i64| rt::fmod(__p, 2) == 0)".to_string());
        }
        // (int * int) -> order, or any 3-way nullary enum in decl order.
        if int_pair {
            if let MlTy::Con(n, _) = cod.as_ref() {
                let paths: Option<Vec<String>> = if n == "order" {
                    Some(vec![
                        "rt::order::LESS".into(),
                        "rt::order::EQUAL".into(),
                        "rt::order::GREATER".into(),
                    ])
                } else {
                    self.env.datatypes.get(n).and_then(|info| {
                        if info.cons.len() == 3
                            && info
                                .cons
                                .iter()
                                .all(|c| self.env.cons.get(c).is_some_and(|ci| ci.arg.is_none()))
                        {
                            Some(
                                info.cons
                                    .iter()
                                    .map(|c| format!("{}::{}", mangle(n), mangle(c)))
                                    .collect(),
                            )
                        } else {
                            None
                        }
                    })
                };
                if let Some(p) = paths {
                    return Ok(format!(
                        "rt::fun(|__p: (i64, i64, )| if __p.0 < __p.1 {{ {} }} else if __p.0 == __p.1 {{ {} }} else {{ {} }})",
                        p[0], p[1], p[2]
                    ));
                }
            }
        }
        Err("function-typed parameter with unsupported shape".into())
    }
}

fn has_arrow(ml: &MlTy) -> bool {
    match ml {
        MlTy::Arrow(_, _) => true,
        MlTy::Con(_, args) => args.iter().any(has_arrow),
        MlTy::Tuple(ts) => ts.iter().any(has_arrow),
        MlTy::Rigid(_) | MlTy::UVar(_) => false,
    }
}

// -- guard translation -----------------------------------------------------

fn prop_rust(p: &sast::IProp, vars: &HashMap<String, IndexVar>) -> Result<String, String> {
    Ok(match p {
        sast::IProp::Var(i) => return Err(format!("boolean index variable `{}` in guard", i.name)),
        sast::IProp::Lit(b, _) => format!("{b}"),
        sast::IProp::Cmp(op, a, b) => {
            let op_s = match op {
                sast::CmpOp::Lt => "<",
                sast::CmpOp::Le => "<=",
                sast::CmpOp::Gt => ">",
                sast::CmpOp::Ge => ">=",
                sast::CmpOp::Eq => "==",
                sast::CmpOp::Neq => "!=",
            };
            format!("({} {op_s} {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?)
        }
        sast::IProp::Not(q) => format!("(!{})", prop_rust(q, vars)?),
        sast::IProp::And(a, b) => {
            format!("({} && {})", prop_rust(a, vars)?, prop_rust(b, vars)?)
        }
        sast::IProp::Or(a, b) => {
            format!("({} || {})", prop_rust(a, vars)?, prop_rust(b, vars)?)
        }
    })
}

fn iexpr_rust(e: &sast::IExpr, vars: &HashMap<String, IndexVar>) -> Result<String, String> {
    use sast::IExpr::*;
    Ok(match e {
        Var(i) => match vars.get(&i.name) {
            Some(iv) => iv.rust.clone(),
            None => return Err(format!("unknown index variable `{}` in guard", i.name)),
        },
        Lit(n, _) => format!("{n}i64"),
        Add(a, b) => format!("({} + {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Sub(a, b) => format!("({} - {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Mul(a, b) => format!("({} * {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Div(a, b) => format!("rt::fdiv({}, {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Mod(a, b) => format!("rt::fmod({}, {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Min(a, b) => format!("rt::imin({}, {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Max(a, b) => format!("rt::imax({}, {})", iexpr_rust(a, vars)?, iexpr_rust(b, vars)?),
        Abs(a) => format!("rt::iabs({})", iexpr_rust(a, vars)?),
        Sgn(a) => format!("({}).signum()", iexpr_rust(a, vars)?),
        Neg(a) => format!("(-{})", iexpr_rust(a, vars)?),
    })
}

fn indent(block: &str, extra: &str) -> String {
    block
        .lines()
        .map(|l| if l.is_empty() { String::new() } else { format!("{extra}{l}") })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}
