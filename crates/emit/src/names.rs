//! Identifier mangling: DML names to Rust names.
//!
//! Emitted crates open with `#![allow(non_snake_case, non_camel_case_types)]`
//! so source names survive verbatim wherever Rust's grammar permits; only
//! reserved words and non-identifier characters are rewritten.

/// Rust keywords (strict + reserved) that cannot be used as identifiers.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "become", "box", "break", "const", "continue", "crate", "do", "dyn",
    "else", "enum", "extern", "false", "final", "fn", "for", "gen", "if", "impl", "in", "let",
    "loop", "macro", "match", "mod", "move", "mut", "override", "priv", "pub", "ref", "return",
    "self", "Self", "static", "struct", "super", "trait", "true", "try", "type", "typeof",
    "unsafe", "unsized", "use", "virtual", "where", "while", "yield",
];

/// Mangles a DML value/function identifier into a valid Rust identifier.
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (k, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if k == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else if c == '\'' {
            out.push('_');
        } else {
            out.push_str(&format!("_x{:x}_", c as u32));
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    if KEYWORDS.contains(&out.as_str()) {
        out.push('_');
    }
    out
}

/// Mangles a DML type variable (`a` from `'a`) into a Rust generic name.
pub fn tyvar(name: &str) -> String {
    let base = mangle(name);
    let mut chars = base.chars();
    match chars.next() {
        Some(c) => format!("{}{}", c.to_ascii_uppercase(), chars.as_str()),
        None => "A".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_get_suffixed() {
        assert_eq!(mangle("loop"), "loop_");
        assert_eq!(mangle("match"), "match_");
        assert_eq!(mangle("ref"), "ref_");
    }

    #[test]
    fn ordinary_names_survive() {
        assert_eq!(mangle("copy4"), "copy4");
        assert_eq!(mangle("bsearch"), "bsearch");
    }

    #[test]
    fn odd_characters_are_encoded() {
        assert_eq!(mangle("a'b"), "a_b");
        assert!(mangle("<=").starts_with("_x"));
    }

    #[test]
    fn tyvars_are_uppercased() {
        assert_eq!(tyvar("a"), "A");
        assert_eq!(tyvar("key"), "Key");
    }
}
