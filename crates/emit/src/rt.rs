//! The runtime module embedded into every emitted crate.
//!
//! This file is compiled twice: once here (so the workspace type-checks and
//! tests it) and once verbatim inside each generated `src/main.rs`, where
//! `dml-emit` pastes it into a `mod rt { ... }` block. It must therefore be
//! dependency-free, contain no inner attributes, and use fully-qualified
//! `std` paths in signatures.
//!
//! The array type mirrors the paper's cost model: `get_ck`/`set_ck` are the
//! *checked* access forms (a hoisted bound assert followed by an in-bounds
//! access, exactly the desugaring of SNIPPETS.md snippet 1), while
//! `get_un`/`set_un` are the unchecked forms the emitter may only call from
//! an `unsafe` block annotated with the Proven goal that justifies it.

use std::cell::UnsafeCell;
use std::rc::Rc;

/// Bound required of every type-variable instantiation in emitted code.
pub trait Val: Clone + std::fmt::Debug + 'static {}
impl<T: Clone + std::fmt::Debug + 'static> Val for T {}

/// A first-class DML function value.
pub type Fun<A, B> = Rc<dyn Fn(A) -> B>;

/// Wraps a closure as a function value.
pub fn fun<A, B>(f: impl Fn(A) -> B + 'static) -> Fun<A, B> {
    Rc::new(f)
}

/// Applies a function value (DML application `f e`).
pub fn app<A, B>(f: &Fun<A, B>, a: A) -> B {
    (**f)(a)
}

/// The prelude's `order` datatype.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(non_camel_case_types)]
pub enum order {
    LESS,
    EQUAL,
    GREATER,
}

/// The prelude's `'a list` datatype. Constructor names match the DML
/// prelude so emitted pattern matches read like the source.
#[allow(non_camel_case_types)]
pub enum List<T> {
    nil,
    cons(Rc<(T, List<T>)>),
}

impl<T> Clone for List<T> {
    fn clone(&self) -> List<T> {
        match self {
            List::nil => List::nil,
            List::cons(rc) => List::cons(Rc::clone(rc)),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for List<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Iterative, so deep lists do not recurse the formatter.
        write!(f, "[")?;
        let mut cur = self;
        let mut first = true;
        while let List::cons(rc) = cur {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{:?}", rc.0)?;
            cur = &rc.1;
        }
        write!(f, "]")
    }
}

impl<T: Clone> List<T> {
    /// Builds a list from a vector, first element at the head.
    pub fn from_vec(v: Vec<T>) -> List<T> {
        let mut l = List::nil;
        for x in v.into_iter().rev() {
            l = List::cons(Rc::new((x, l)));
        }
        l
    }

    /// The prelude's `llength`.
    pub fn llength(&self) -> i64 {
        let mut n = 0i64;
        let mut cur = self;
        while let List::cons(rc) = cur {
            n += 1;
            cur = &rc.1;
        }
        n
    }

    /// Checked `nth`: the hoisted tag-check form. Panics like SML's
    /// `Subscript` when the index runs past the end of the list.
    pub fn nth_ck(&self, i: i64) -> T {
        assert!(i >= 0, "Subscript: negative list index {i}");
        let mut cur = self;
        let mut k = i;
        loop {
            match cur {
                List::nil => panic!("Subscript: list index {i} past end"),
                List::cons(rc) => {
                    if k == 0 {
                        return rc.0.clone();
                    }
                    k -= 1;
                    cur = &rc.1;
                }
            }
        }
    }

    /// Unchecked `nth`: the `nil` tag check is compiled away.
    ///
    /// # Safety
    ///
    /// The caller must hold a Proven verdict for `0 <= i < llength(self)`;
    /// the `nil` arm is then unreachable.
    pub unsafe fn nth_un(&self, i: i64) -> T {
        let mut cur = self;
        let mut k = i;
        loop {
            match cur {
                // SAFETY: the solver proved i < llength(self), so the walk
                // hits `cons` at every step (the eliminated tag check).
                List::nil => unsafe { std::hint::unreachable_unchecked() },
                List::cons(rc) => {
                    if k == 0 {
                        return rc.0.clone();
                    }
                    k -= 1;
                    cur = &rc.1;
                }
            }
        }
    }
}

/// Turns an `i64` index into a `usize` after the bound check — the hoisted
/// assert of the snippet-1 desugaring, shared by every checked access.
#[inline(always)]
pub fn ck(i: i64, n: usize) -> usize {
    assert!(i >= 0 && (i as usize) < n, "Subscript: index {i} out of bounds for length {n}");
    i as usize
}

/// A DML array: fixed length, mutable cells, O(1) handle clone.
///
/// `UnsafeCell` rather than `RefCell` keeps checked accesses down to one
/// bound test (no borrow-flag traffic), so the checked-vs-unchecked delta
/// measured by `BENCH_native.json` isolates the paper's claim. All emitted
/// code is single-threaded and every internal reference is statement-local,
/// which keeps the cell discipline sound (and Miri-clean).
pub struct Arr<T> {
    cells: Rc<UnsafeCell<Vec<T>>>,
}

impl<T> Clone for Arr<T> {
    fn clone(&self) -> Arr<T> {
        Arr { cells: Rc::clone(&self.cells) }
    }
}

impl<T: Clone> Arr<T> {
    /// The prelude's `array(n, x)`.
    pub fn new(n: i64, x: T) -> Arr<T> {
        assert!(n >= 0, "Size: negative array length {n}");
        Arr::from_vec(vec![x; n as usize])
    }

    /// Wraps an existing vector.
    pub fn from_vec(v: Vec<T>) -> Arr<T> {
        Arr { cells: Rc::new(UnsafeCell::new(v)) }
    }

    /// The prelude's `length`. Array lengths are fixed at creation.
    #[inline(always)]
    pub fn len(&self) -> i64 {
        // SAFETY: statement-local shared read of the cell.
        unsafe { (*self.cells.get()).len() as i64 }
    }

    /// `true` when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checked read: hoisted assert, then an in-bounds read.
    #[inline(always)]
    pub fn get_ck(&self, i: i64) -> T {
        // SAFETY: `ck` just established `u < len`.
        unsafe {
            let v = self.cells.get();
            let u = ck(i, (*v).len());
            (&*v).get_unchecked(u).clone()
        }
    }

    /// Unchecked read.
    ///
    /// # Safety
    ///
    /// The caller must hold a Proven verdict for `0 <= i < self.len()`.
    #[inline(always)]
    pub unsafe fn get_un(&self, i: i64) -> T {
        // SAFETY: contract above; the emitter records the goal number at
        // the call site.
        unsafe { (&*self.cells.get()).get_unchecked(i as usize).clone() }
    }

    /// Checked write: hoisted assert, then an in-bounds write.
    #[inline(always)]
    pub fn set_ck(&self, i: i64, x: T) {
        // SAFETY: `ck` just established `u < len`.
        unsafe {
            let v = self.cells.get();
            let u = ck(i, (*v).len());
            *(&mut *v).get_unchecked_mut(u) = x;
        }
    }

    /// Unchecked write.
    ///
    /// # Safety
    ///
    /// The caller must hold a Proven verdict for `0 <= i < self.len()`.
    #[inline(always)]
    pub unsafe fn set_un(&self, i: i64, x: T) {
        // SAFETY: contract above; the emitter records the goal number at
        // the call site.
        unsafe {
            *(&mut *self.cells.get()).get_unchecked_mut(i as usize) = x;
        }
    }

    /// Copies the contents out (drivers use this for output hashing).
    pub fn snapshot(&self) -> Vec<T> {
        // SAFETY: statement-local shared read of the cell.
        unsafe { (*self.cells.get()).clone() }
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for Arr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Arrays print as a length plus an FNV-1a hash of their elements'
        // debug forms: stable across variants, cheap for huge arrays.
        let mut h = 0xcbf29ce484222325u64;
        for x in self.snapshot() {
            let s = format!("{x:?};");
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        write!(f, "Arr(len={}, fnv=0x{h:016x})", self.len())
    }
}

/// The prelude's `print_int`.
pub fn print_int(n: i64) {
    println!("{n}");
}

/// Raised when no `case` arm matches (SML's `Match`).
pub fn match_fail<T>() -> T {
    panic!("Match: no clause applied")
}

/// Wrapping add, matching the interpreter's arithmetic.
#[inline(always)]
pub fn add(a: i64, b: i64) -> i64 {
    a.wrapping_add(b)
}

/// Wrapping subtract.
#[inline(always)]
pub fn subi(a: i64, b: i64) -> i64 {
    a.wrapping_sub(b)
}

/// Wrapping multiply.
#[inline(always)]
pub fn mul(a: i64, b: i64) -> i64 {
    a.wrapping_mul(b)
}

/// Wrapping negate (the prelude's `neg`).
#[inline(always)]
pub fn neg(a: i64) -> i64 {
    a.wrapping_neg()
}

/// The prelude's `iabs`.
#[inline(always)]
pub fn iabs(a: i64) -> i64 {
    a.wrapping_abs()
}

/// The prelude's `imin`.
#[inline(always)]
pub fn imin(a: i64, b: i64) -> i64 {
    a.min(b)
}

/// The prelude's `imax`.
#[inline(always)]
pub fn imax(a: i64, b: i64) -> i64 {
    a.max(b)
}

/// SML flooring division (`div`). Panics on a zero divisor, like the
/// interpreter; division guards are never compiled away (see docs/EMIT.md).
#[inline(always)]
pub fn fdiv(a: i64, b: i64) -> i64 {
    assert!(b != 0, "Div: division by zero");
    let q = a.wrapping_div(b);
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// SML flooring remainder (`mod`).
#[inline(always)]
pub fn fmod(a: i64, b: i64) -> i64 {
    a.wrapping_sub(fdiv(a, b).wrapping_mul(b))
}

/// Clamps a driver-chosen array length to an annotation's lower bound.
pub fn len_clamp(size: i64, lo: i64) -> i64 {
    size.max(lo).max(0)
}

/// Like [`len_clamp`], but caps list lengths (lists drop recursively, so
/// drivers keep them shallow; see docs/EMIT.md).
pub fn list_len_clamp(size: i64, lo: i64) -> i64 {
    len_clamp(size, lo).min(4096.max(lo))
}

/// xorshift64* — the deterministic driver RNG. Identical streams in the
/// checked and unchecked variants make the differential test byte-exact.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (any seed is fine; zero is fixed up).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw from `[lo, hi)`; returns `lo` when the range is empty.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % ((hi - lo) as u64)) as i64
    }
}

/// FNV-1a over a byte string (drivers hash program names into seeds).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
