//! The DML → Rust translator.
//!
//! Strategy (documented in `docs/EMIT.md`):
//!
//! * Phase-1 ML schemes type every `fun`/`val` binder; emitted functions
//!   are plain Rust `fn`s over `i64`/`bool`/`rt::Arr`/`rt::List`/user
//!   enums, generic over `rt::Val`-bounded type variables.
//! * Local functions are lambda-lifted to the top level; their free value
//!   variables become trailing capture parameters (fixpoint across `and`
//!   groups).
//! * Direct self-tail-calls are rewritten into a `loop { ... }` with
//!   simultaneous parameter rebinding — DML benchmark loops recurse far
//!   past any native stack.
//! * Every `sub`/`update`/`nth` site hoists base and index (and the stored
//!   value) into temporaries *in source evaluation order* before the
//!   access — the snippet-1 desugaring that defeats the evaluation-order/
//!   aliasing trap — then selects the access form from the site verdict.

use crate::names::{mangle, tyvar};
use dml_elab::SiteVerdict;
use dml_syntax::ast as sast;
use dml_syntax::Span;
use dml_types::env::Env;
use dml_types::ml::{MlScheme, MlTy};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Which access forms the backend emits at check sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Every site uses the hoisted checked form (`get_ck`/`set_ck`/
    /// `nth_ck`) — the paper's "all checks on" baseline.
    Checked,
    /// Sites with a Proven verdict use the unchecked form inside a
    /// `// SAFETY: goal #N proven` unsafe block; all others stay checked.
    UncheckedProven,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Checked => write!(f, "checked"),
            Variant::UncheckedProven => write!(f, "proven-unchecked"),
        }
    }
}

/// A translation error: the program uses a construct outside the emitted
/// subset (see docs/EMIT.md for the subset definition).
#[derive(Debug, Clone)]
pub struct EmitError {
    /// What went wrong.
    pub message: String,
    /// Where, if known.
    pub span: Option<Span>,
}

impl EmitError {
    pub(crate) fn new(message: impl Into<String>, span: Option<Span>) -> EmitError {
        EmitError { message: message.into(), span }
    }
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "emit error at {s}: {}", self.message),
            None => write!(f, "emit error: {}", self.message),
        }
    }
}

impl std::error::Error for EmitError {}

/// Counters describing what the emitter did with check sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmitStats {
    /// Sites lowered to the unchecked form (each inside one `unsafe`
    /// block with a goal-numbered SAFETY comment).
    pub unchecked_sites: usize,
    /// Sites lowered to the hoisted checked form.
    pub checked_sites: usize,
}

/// One flattened Rust parameter of an emitted function.
#[derive(Debug, Clone)]
pub(crate) struct RsParam {
    pub rust: String,
    pub ml: MlTy,
}

/// A captured enclosing binding, passed as a trailing parameter.
#[derive(Debug, Clone)]
pub(crate) struct Capture {
    pub src: String,
    pub rust: String,
    pub ml: Option<MlTy>,
    pub binding_id: u32,
}

/// The signature of an emitted (top-level or lifted) function.
#[derive(Debug, Clone)]
pub(crate) struct FnSig {
    pub rust: String,
    /// Rust generic parameter names.
    pub generics: Vec<String>,
    /// Per curried group: the flattened Rust parameters.
    pub groups: Vec<Vec<RsParam>>,
    /// Per curried group: the group's whole ML type (for eta-wrapping).
    pub group_tys: Vec<MlTy>,
    pub ret: MlTy,
    pub captures: Vec<Capture>,
}

impl FnSig {
    fn flat_params(&self) -> Vec<&RsParam> {
        self.groups.iter().flatten().collect()
    }
}

#[derive(Debug, Clone)]
enum Binding {
    Val { rust: String, ml: Option<MlTy>, id: u32 },
    Fn(Rc<FnSig>),
}

/// The translator. One instance per emitted crate.
pub(crate) struct Emitter<'a> {
    env: &'a Env,
    schemes: &'a HashMap<Span, MlScheme>,
    sites: HashMap<Span, &'a SiteVerdict>,
    variant: Variant,
    pub out_types: Vec<String>,
    pub out_fns: Vec<String>,
    pub stats: EmitStats,
    /// Top-level function signatures in declaration order.
    pub top_fns: Vec<(String, Rc<FnSig>)>,
    scopes: Vec<HashMap<String, Binding>>,
    used_fn_names: HashSet<String>,
    tmp: u32,
    next_binding: u32,
}

const PRIMS: &[&str] = &[
    "+",
    "-",
    "*",
    "div",
    "mod",
    "neg",
    "iabs",
    "imin",
    "imax",
    "=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "not",
    "length",
    "sub",
    "update",
    "array",
    "subCK",
    "updateCK",
    "llength",
    "nth",
    "nthCK",
    "print_int",
];

impl<'a> Emitter<'a> {
    pub fn new(
        env: &'a Env,
        schemes: &'a HashMap<Span, MlScheme>,
        sites: &'a [SiteVerdict],
        variant: Variant,
    ) -> Emitter<'a> {
        Emitter {
            env,
            schemes,
            sites: sites.iter().map(|s| (s.site, s)).collect(),
            variant,
            out_types: Vec::new(),
            out_fns: Vec::new(),
            stats: EmitStats::default(),
            top_fns: Vec::new(),
            scopes: vec![HashMap::new()],
            used_fn_names: HashSet::new(),
            tmp: 0,
            next_binding: 0,
        }
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.tmp += 1;
        format!("__{stem}{}", self.tmp)
    }

    fn fresh_binding_id(&mut self) -> u32 {
        self.next_binding += 1;
        self.next_binding
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind_val(&mut self, name: &str, rust: String, ml: Option<MlTy>) -> u32 {
        let id = self.fresh_binding_id();
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), Binding::Val { rust, ml, id });
        id
    }

    fn unique_fn_name(&mut self, base: &str) -> String {
        let mut name = mangle(base);
        let mut k = 1;
        while !self.used_fn_names.insert(name.clone()) {
            k += 1;
            name = format!("{}_{k}", mangle(base));
        }
        name
    }

    // -- types ------------------------------------------------------------

    /// Renders an ML type as Rust. Unconstrained unification variables
    /// default to `i64` (they are unused by construction).
    pub(crate) fn rs_ty(ml: &MlTy) -> Result<String, EmitError> {
        Ok(match ml {
            MlTy::UVar(_) => "i64".to_string(),
            MlTy::Rigid(n) => tyvar(n),
            MlTy::Con(n, args) => match (n.as_str(), args.len()) {
                ("int", 0) => "i64".to_string(),
                ("bool", 0) => "bool".to_string(),
                ("unit", 0) => "()".to_string(),
                ("order", 0) => "rt::order".to_string(),
                ("array", 1) => format!("rt::Arr<{}>", Self::rs_ty(&args[0])?),
                ("list", 1) => format!("rt::List<{}>", Self::rs_ty(&args[0])?),
                _ => {
                    let mut out = mangle(n);
                    if !args.is_empty() {
                        out.push('<');
                        for (k, a) in args.iter().enumerate() {
                            if k > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&Self::rs_ty(a)?);
                        }
                        out.push('>');
                    }
                    out
                }
            },
            MlTy::Tuple(ts) => {
                let mut out = "(".to_string();
                for t in ts {
                    out.push_str(&Self::rs_ty(t)?);
                    out.push_str(", ");
                }
                out.push(')');
                out
            }
            MlTy::Arrow(a, b) => {
                format!("rt::Fun<{}, {}>", Self::rs_ty(a)?, Self::rs_ty(b)?)
            }
        })
    }

    /// `true` when the rendered Rust type is `Copy` (no clone needed).
    fn is_copy(ml: Option<&MlTy>) -> bool {
        match ml {
            None => false,
            Some(MlTy::Con(n, args)) => {
                args.is_empty() && matches!(n.as_str(), "int" | "bool" | "unit" | "order")
            }
            Some(MlTy::Tuple(ts)) => ts.iter().all(|t| Self::is_copy(Some(t))),
            Some(_) => false,
        }
    }

    // -- datatypes --------------------------------------------------------

    pub fn datatype_def(&mut self, d: &sast::DatatypeDecl) -> Result<(), EmitError> {
        if d.name.name == "list" || d.name.name == "order" {
            return Err(EmitError::new(
                format!("datatype `{}` shadows a runtime type", d.name.name),
                Some(d.name.span),
            ));
        }
        let mut out = String::new();
        out.push_str("#[derive(Clone, Debug)]\n");
        out.push_str(&format!("pub enum {}", mangle(&d.name.name)));
        if !d.tyvars.is_empty() {
            out.push('<');
            for (k, tv) in d.tyvars.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&tyvar(&tv.name));
            }
            out.push('>');
        }
        out.push_str(" {\n");
        for con in &d.cons {
            let info = self.env.cons.get(&con.name.name).ok_or_else(|| {
                EmitError::new(
                    format!("constructor `{}` missing from environment", con.name.name),
                    Some(con.name.span),
                )
            })?;
            match info.arg_ml() {
                None => out.push_str(&format!("    {},\n", mangle(&con.name.name))),
                Some(arg) => out.push_str(&format!(
                    "    {}(std::rc::Rc<{}>),\n",
                    mangle(&con.name.name),
                    Self::rs_ty(&arg)?
                )),
            }
        }
        out.push_str("}\n");
        self.out_types.push(out);
        Ok(())
    }

    /// The Rust path of a constructor (`rt::List::cons`, `answer::FOUND`).
    fn con_path(&self, name: &str) -> Result<String, EmitError> {
        match name {
            "nil" => return Ok("rt::List::nil".to_string()),
            "::" => return Ok("rt::List::cons".to_string()),
            "LESS" | "EQUAL" | "GREATER" => return Ok(format!("rt::order::{name}")),
            _ => {}
        }
        let info = self
            .env
            .cons
            .get(name)
            .ok_or_else(|| EmitError::new(format!("unknown constructor `{name}`"), None))?;
        Ok(format!("{}::{}", mangle(&info.datatype), mangle(name)))
    }

    // -- programs ---------------------------------------------------------

    pub fn program(&mut self, prog: &sast::Program) -> Result<(), EmitError> {
        for d in &prog.decls {
            match d {
                sast::Decl::Datatype(dd) => self.datatype_def(dd)?,
                sast::Decl::Typeref(_) | sast::Decl::Assert(_) => {}
                sast::Decl::Fun(group) => {
                    let sigs = self.fun_group(group, "")?;
                    for (fd, sig) in group.iter().zip(sigs) {
                        self.top_fns.push((fd.name.name.clone(), sig));
                    }
                }
                sast::Decl::Val(v) => {
                    return Err(EmitError::new(
                        "top-level `val` declarations are outside the emitted subset",
                        Some(v.span),
                    ))
                }
                sast::Decl::Exception(e) => {
                    return Err(EmitError::new(
                        "exceptions are outside the emitted subset",
                        Some(e.span),
                    ))
                }
            }
        }
        Ok(())
    }

    // -- functions --------------------------------------------------------

    /// Translates a (possibly mutually recursive) `fun` group, registering
    /// the functions in the current scope and appending their definitions.
    /// `prefix` qualifies lifted names with their enclosing function.
    fn fun_group(
        &mut self,
        group: &[sast::FunDecl],
        prefix: &str,
    ) -> Result<Vec<Rc<FnSig>>, EmitError> {
        // 1. Schemes and shapes.
        let mut shapes = Vec::new();
        for fd in group {
            let scheme = self.schemes.get(&fd.name.span).ok_or_else(|| {
                EmitError::new(
                    format!("no inferred scheme for `{}`", fd.name.name),
                    Some(fd.name.span),
                )
            })?;
            let n_groups =
                fd.clauses.first().map(|c| c.params.len()).ok_or_else(|| {
                    EmitError::new("function with no clauses", Some(fd.name.span))
                })?;
            let (group_tys, ret) = arrow_groups(&scheme.ty, n_groups, fd.name.span)?;
            shapes.push((scheme.clone(), group_tys, ret));
        }

        // 2. Captures: free value variables, closed over local-fn calls.
        let group_names: HashSet<&str> = group.iter().map(|f| f.name.name.as_str()).collect();
        let mut raw_free: Vec<BTreeSet<String>> = Vec::new();
        let mut deps: Vec<BTreeSet<String>> = Vec::new();
        for fd in group {
            let mut free = BTreeSet::new();
            for clause in &fd.clauses {
                let mut bound: Vec<String> = clause
                    .params
                    .iter()
                    .flat_map(|p| p.bound_vars())
                    .map(|i| i.name.clone())
                    .collect();
                bound.push(fd.name.name.clone());
                free_idents(&clause.body, &mut bound, &mut free);
            }
            let mut caps = BTreeSet::new();
            let mut dep = BTreeSet::new();
            for name in free {
                if group_names.contains(name.as_str()) {
                    continue;
                }
                match self.lookup(&name) {
                    Some(Binding::Val { .. }) => {
                        caps.insert(name);
                    }
                    Some(Binding::Fn(sig)) => {
                        // Calling an earlier lifted fn pulls in its captures.
                        for c in &sig.captures {
                            caps.insert(c.src.clone());
                        }
                    }
                    None => {} // prim, constructor, or later top-level fn
                }
            }
            for name in group_names.iter() {
                dep.insert(name.to_string());
            }
            raw_free.push(caps);
            deps.push(dep);
        }
        // Fixpoint across the group: everyone shares the union of captures
        // reachable through intra-group calls. (Conservative — a member
        // that never calls a sibling may carry an unused capture — but
        // deterministic and simple; unused parameters are allowed.)
        let union: BTreeSet<String> = raw_free.iter().flatten().cloned().collect();
        let caps_per_fn: Vec<BTreeSet<String>> =
            if group.len() > 1 { vec![union; group.len()] } else { raw_free };

        // 3. Build signatures and register bindings.
        let mut sigs: Vec<Rc<FnSig>> = Vec::new();
        for (k, fd) in group.iter().enumerate() {
            let (scheme, group_tys, ret) = &shapes[k];
            let base = if prefix.is_empty() {
                fd.name.name.clone()
            } else {
                format!("{prefix}_{}", fd.name.name)
            };
            let rust = self.unique_fn_name(&base);
            // Captures with their binding identity and types.
            let mut captures = Vec::new();
            for src in &caps_per_fn[k] {
                let Some(Binding::Val { rust: r, ml, id }) = self.lookup(src) else {
                    return Err(EmitError::new(
                        format!("capture `{src}` of `{}` is not a value binding", fd.name.name),
                        Some(fd.name.span),
                    ));
                };
                captures.push(Capture {
                    src: src.clone(),
                    rust: r.clone(),
                    ml: ml.clone(),
                    binding_id: *id,
                });
            }
            // Parameter layout from the first clause.
            let simple = fd.clauses.len() == 1 && fd.clauses[0].params.iter().all(simple_group_pat);
            let mut groups = Vec::new();
            if simple {
                for (p, gty) in fd.clauses[0].params.iter().zip(group_tys.iter()) {
                    groups.push(self.direct_group_params(p, gty)?);
                }
            } else {
                for (g, gty) in group_tys.iter().enumerate() {
                    let is_unit = matches!(gty, MlTy::Con(n, a) if n == "unit" && a.is_empty());
                    if is_unit {
                        groups.push(Vec::new());
                    } else {
                        groups.push(vec![RsParam { rust: format!("__a{g}"), ml: gty.clone() }]);
                    }
                }
            }
            // Generics: scheme variables plus free rigids of the signature.
            let mut rigids = BTreeSet::new();
            scheme.ty.rigids_into(&mut rigids);
            for c in &captures {
                if let Some(ml) = &c.ml {
                    ml.rigids_into(&mut rigids);
                }
            }
            let generics: Vec<String> = rigids.iter().map(|r| tyvar(r)).collect();
            let sig = Rc::new(FnSig {
                rust,
                generics,
                groups,
                group_tys: group_tys.clone(),
                ret: ret.clone(),
                captures,
            });
            self.scopes
                .last_mut()
                .expect("scope stack nonempty")
                .insert(fd.name.name.clone(), Binding::Fn(Rc::clone(&sig)));
            sigs.push(sig);
        }

        // 4. Translate bodies.
        for (fd, sig) in group.iter().zip(sigs.iter()) {
            let def = self.fn_def(fd, sig)?;
            self.out_fns.push(def);
        }
        Ok(sigs)
    }

    /// Flattened Rust params for a simple (single-clause, var-ish) group
    /// pattern.
    fn direct_group_params(
        &mut self,
        pat: &sast::Pat,
        gty: &MlTy,
    ) -> Result<Vec<RsParam>, EmitError> {
        let pat = strip_anno(pat);
        match pat {
            sast::Pat::Var(i) => Ok(vec![RsParam { rust: mangle(&i.name), ml: gty.clone() }]),
            sast::Pat::Wild(_) => {
                let name = self.fresh("w");
                Ok(vec![RsParam { rust: name, ml: gty.clone() }])
            }
            sast::Pat::Tuple(ps, span) => {
                if ps.is_empty() {
                    return Ok(Vec::new());
                }
                let comps: Vec<MlTy> = match gty {
                    MlTy::Tuple(ts) if ts.len() == ps.len() => ts.clone(),
                    _ => {
                        return Err(EmitError::new(
                            "tuple pattern does not match inferred group type",
                            Some(*span),
                        ))
                    }
                };
                let mut out = Vec::new();
                for (p, ml) in ps.iter().zip(comps) {
                    match strip_anno(p) {
                        sast::Pat::Var(i) => out.push(RsParam { rust: mangle(&i.name), ml }),
                        sast::Pat::Wild(_) => {
                            let name = self.fresh("w");
                            out.push(RsParam { rust: name, ml });
                        }
                        other => {
                            return Err(EmitError::new(
                                "non-variable pattern in simple group",
                                Some(other.span()),
                            ))
                        }
                    }
                }
                Ok(out)
            }
            other => Err(EmitError::new("unsupported parameter pattern", Some(other.span()))),
        }
    }

    /// Emits one function definition.
    fn fn_def(&mut self, fd: &sast::FunDecl, sig: &Rc<FnSig>) -> Result<String, EmitError> {
        let self_tail = fd.clauses.iter().any(|c| scan_self_tail(&c.body, &fd.name.name));
        // New scope: params + captures.
        self.scopes.push(HashMap::new());
        let simple = fd.clauses.len() == 1 && fd.clauses[0].params.iter().all(simple_group_pat);
        if simple {
            for (p, group) in fd.clauses[0].params.iter().zip(sig.groups.iter()) {
                let pat = strip_anno(p);
                match pat {
                    sast::Pat::Var(i) => {
                        let rp = &group[0];
                        self.bind_val(&i.name, rp.rust.clone(), Some(rp.ml.clone()));
                    }
                    sast::Pat::Tuple(ps, _) => {
                        for (sp, rp) in ps.iter().zip(group.iter()) {
                            if let sast::Pat::Var(i) = strip_anno(sp) {
                                self.bind_val(&i.name, rp.rust.clone(), Some(rp.ml.clone()));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        for c in &sig.captures {
            // Preserve the capture's original binding id so identity checks
            // in `resolve_capture` succeed inside the lifted body.
            self.scopes.last_mut().expect("scope stack nonempty").insert(
                c.src.clone(),
                Binding::Val { rust: c.rust.clone(), ml: c.ml.clone(), id: c.binding_id },
            );
        }
        // Re-register self so recursive references resolve inside the body.
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(fd.name.name.clone(), Binding::Fn(Rc::clone(sig)));

        let tail_target = if self_tail { Some(Rc::clone(sig)) } else { None };
        let body = if simple {
            self.expr(&fd.clauses[0].body, tail_target.as_ref())?
        } else {
            self.clause_match(fd, sig, tail_target.as_ref())?
        };
        self.scopes.pop();

        // Header.
        let mut out = String::new();
        out.push_str(&format!("fn {}", sig.rust));
        if !sig.generics.is_empty() {
            out.push('<');
            for (k, g) in sig.generics.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{g}: rt::Val"));
            }
            out.push('>');
        }
        out.push('(');
        let mut first = true;
        for p in sig.flat_params() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            if self_tail {
                out.push_str("mut ");
            }
            out.push_str(&format!("{}: {}", p.rust, Self::rs_ty(&p.ml)?));
        }
        for c in &sig.captures {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let ty = match &c.ml {
                Some(ml) => Self::rs_ty(ml)?,
                None => {
                    return Err(EmitError::new(
                        format!("capture `{}` has no inferred type", c.src),
                        Some(fd.name.span),
                    ))
                }
            };
            out.push_str(&format!("{}: {ty}", c.rust));
        }
        out.push_str(&format!(") -> {} {{\n", Self::rs_ty(&sig.ret)?));
        if self_tail {
            out.push_str("    '__rec: loop {\n        return ");
            out.push_str(&body);
            out.push_str(";\n    }\n");
        } else {
            out.push_str("    ");
            out.push_str(&body);
            out.push('\n');
        }
        out.push_str("}\n");
        Ok(out)
    }

    /// Multi-clause (or complex-pattern) body: match on the tuple of group
    /// parameters.
    fn clause_match(
        &mut self,
        fd: &sast::FunDecl,
        sig: &Rc<FnSig>,
        tail: Option<&Rc<FnSig>>,
    ) -> Result<String, EmitError> {
        let scrut_names: Vec<String> = sig
            .groups
            .iter()
            .flat_map(|g| g.iter().map(|p| format!("{}.clone()", p.rust)))
            .collect();
        let scrut_tys: Vec<MlTy> =
            sig.groups.iter().flat_map(|g| g.iter().map(|p| p.ml.clone())).collect();
        let (scrut, scrut_ty) = match scrut_names.len() {
            0 => {
                return Err(EmitError::new(
                    "multi-clause function of unit argument unsupported",
                    Some(fd.name.span),
                ))
            }
            1 => (scrut_names[0].clone(), scrut_tys[0].clone()),
            _ => (format!("({})", scrut_names.join(", ")), MlTy::Tuple(scrut_tys)),
        };
        let mut arms = Vec::new();
        let mut last_irrefutable = false;
        for clause in &fd.clauses {
            self.scopes.push(HashMap::new());
            // Combine the clause's group patterns into one pattern shape
            // matching the scrutinee.
            let flat_pats: Vec<&sast::Pat> = clause.params.iter().collect();
            let (pat_str, prologue, irrefutable) = if flat_pats.len() == 1 {
                self.pat(flat_pats[0], Some(&scrut_ty))?
            } else {
                let mut parts = Vec::new();
                let mut pro = String::new();
                let mut irr = true;
                let tys = match &scrut_ty {
                    MlTy::Tuple(ts) => ts.clone(),
                    _ => vec![],
                };
                for (k, p) in flat_pats.iter().enumerate() {
                    let (s, pr, ir) = self.pat(p, tys.get(k))?;
                    parts.push(s);
                    pro.push_str(&pr);
                    irr &= ir;
                }
                (format!("({})", parts.join(", ")), pro, irr)
            };
            let body = self.expr(&clause.body, tail)?;
            self.scopes.pop();
            arms.push(format!("        {pat_str} => {{ {prologue}{body} }}"));
            last_irrefutable = irrefutable;
        }
        if !last_irrefutable {
            arms.push("        _ => rt::match_fail()".to_string());
        }
        Ok(format!("match {scrut} {{\n{}\n    }}", arms.join(",\n")))
    }

    // -- patterns ---------------------------------------------------------

    /// Translates a pattern to (rust pattern, prologue statements,
    /// irrefutable?). Binds pattern variables in the current scope.
    fn pat(
        &mut self,
        p: &sast::Pat,
        scrut_ml: Option<&MlTy>,
    ) -> Result<(String, String, bool), EmitError> {
        match p {
            sast::Pat::Anno(inner, _, _) => self.pat(inner, scrut_ml),
            sast::Pat::Wild(_) => Ok(("_".to_string(), String::new(), true)),
            sast::Pat::Int(n, _) => Ok((format!("{n}"), String::new(), false)),
            sast::Pat::Bool(b, _) => Ok((format!("{b}"), String::new(), false)),
            sast::Pat::Var(i) => {
                if self.env.is_constructor(&i.name) {
                    // Nullary constructor pattern.
                    return Ok((self.con_path(&i.name)?, String::new(), false));
                }
                let rust = mangle(&i.name);
                self.bind_val(&i.name, rust.clone(), scrut_ml.cloned());
                Ok((rust, String::new(), true))
            }
            sast::Pat::Tuple(ps, _) => {
                if ps.is_empty() {
                    return Ok(("()".to_string(), String::new(), true));
                }
                let comp_tys: Vec<Option<&MlTy>> = match scrut_ml {
                    Some(MlTy::Tuple(ts)) if ts.len() == ps.len() => ts.iter().map(Some).collect(),
                    _ => vec![None; ps.len()],
                };
                let mut parts = Vec::new();
                let mut prologue = String::new();
                let mut irr = true;
                for (sub, ty) in ps.iter().zip(comp_tys) {
                    let (s, pro, ir) = self.pat(sub, ty)?;
                    parts.push(s);
                    prologue.push_str(&pro);
                    irr &= ir;
                }
                Ok((format!("({})", parts.join(", ")), prologue, irr))
            }
            sast::Pat::Con(name, arg, span) => {
                let path = self.con_path(&name.name)?;
                let Some(arg) = arg else {
                    return Ok((path, String::new(), false));
                };
                // Payload type: constructor arg with datatype tyvars
                // instantiated from the scrutinee's type arguments.
                let payload_ml = self.con_payload_ml(&name.name, scrut_ml);
                let holder = self.fresh("p");
                let mut prologue = String::new();
                match strip_anno(arg) {
                    sast::Pat::Var(i) if !self.env.is_constructor(&i.name) => {
                        let rust = mangle(&i.name);
                        prologue.push_str(&format!("let {rust} = (*{holder}).clone(); "));
                        self.bind_val(&i.name, rust, payload_ml);
                    }
                    sast::Pat::Wild(_) => {}
                    sast::Pat::Tuple(ps, _) => {
                        let comp_tys: Vec<Option<MlTy>> = match &payload_ml {
                            Some(MlTy::Tuple(ts)) if ts.len() == ps.len() => {
                                ts.iter().map(|t| Some(t.clone())).collect()
                            }
                            _ => vec![None; ps.len()],
                        };
                        let mut names = Vec::new();
                        for (sub, ty) in ps.iter().zip(comp_tys) {
                            match strip_anno(sub) {
                                sast::Pat::Var(i) if !self.env.is_constructor(&i.name) => {
                                    let rust = mangle(&i.name);
                                    names.push(rust.clone());
                                    self.bind_val(&i.name, rust, ty);
                                }
                                sast::Pat::Wild(_) => names.push("_".to_string()),
                                other => {
                                    return Err(EmitError::new(
                                        "nested constructor pattern depth unsupported",
                                        Some(other.span()),
                                    ))
                                }
                            }
                        }
                        prologue.push_str(&format!(
                            "let ({}) = (*{holder}).clone(); ",
                            names.join(", ")
                        ));
                    }
                    other => {
                        return Err(EmitError::new(
                            "unsupported constructor payload pattern",
                            Some(other.span()),
                        ))
                    }
                }
                let _ = span;
                Ok((format!("{path}({holder})"), prologue, false))
            }
        }
    }

    /// The ML type of a constructor's payload given the scrutinee type.
    fn con_payload_ml(&self, con: &str, scrut_ml: Option<&MlTy>) -> Option<MlTy> {
        let info = self.env.cons.get(con)?;
        let arg = info.arg_ml()?;
        let Some(MlTy::Con(_, args)) = scrut_ml else { return None };
        let map: HashMap<&str, &MlTy> =
            info.tyvars.iter().map(|t| t.as_str()).zip(args.iter()).collect();
        Some(arg.subst_rigids(&|n| map.get(n).map(|t| (*t).clone())))
    }

    // -- expressions ------------------------------------------------------

    /// Translates an expression to a Rust expression string. `tail` is the
    /// enclosing function when this position is a tail position of a
    /// loop-rewritten body.
    fn expr(&mut self, e: &sast::Expr, tail: Option<&Rc<FnSig>>) -> Result<String, EmitError> {
        match e {
            sast::Expr::Int(n, _) => {
                Ok(if *n < 0 { format!("({n}i64)") } else { format!("{n}i64") })
            }
            sast::Expr::Bool(b, _) => Ok(format!("{b}")),
            sast::Expr::Var(i) => self.var_value(i),
            sast::Expr::Anno(inner, _, _) => self.expr(inner, tail),
            sast::Expr::Tuple(es, _) => {
                if es.is_empty() {
                    return Ok("()".to_string());
                }
                let mut parts = Vec::new();
                for x in es {
                    parts.push(self.expr(x, None)?);
                }
                Ok(format!("({},)", parts.join(", ")))
            }
            sast::Expr::If(c, t, f, _) => {
                let c = self.expr(c, None)?;
                let t = self.expr(t, tail)?;
                let f = self.expr(f, tail)?;
                Ok(format!("(if {c} {{ {t} }} else {{ {f} }})"))
            }
            sast::Expr::Andalso(a, b, _) => {
                let a = self.expr(a, None)?;
                let b = self.expr(b, None)?;
                Ok(format!("({a} && {b})"))
            }
            sast::Expr::Orelse(a, b, _) => {
                let a = self.expr(a, None)?;
                let b = self.expr(b, None)?;
                Ok(format!("({a} || {b})"))
            }
            sast::Expr::Seq(es, _) => {
                let (last, init) = es
                    .split_last()
                    .ok_or_else(|| EmitError::new("empty sequence", Some(e.span())))?;
                let mut out = "{ ".to_string();
                for x in init {
                    let s = self.expr(x, None)?;
                    out.push_str(&format!("let _ = {s}; "));
                }
                out.push_str(&self.expr(last, tail)?);
                out.push_str(" }");
                Ok(out)
            }
            sast::Expr::Case(scrut, arms, _) => self.case(scrut, arms, tail),
            sast::Expr::Let(decls, body, _) => self.let_expr(decls, body, tail),
            sast::Expr::App(_, _, _) => self.app(e, tail),
            sast::Expr::Fn(_, span) => Err(EmitError::new(
                "anonymous `fn` expressions are outside the emitted subset",
                Some(*span),
            )),
            sast::Expr::Raise(_, span) | sast::Expr::Handle(_, _, span) => {
                Err(EmitError::new("exceptions are outside the emitted subset", Some(*span)))
            }
        }
    }

    fn case(
        &mut self,
        scrut: &sast::Expr,
        arms: &[(sast::Pat, sast::Expr)],
        tail: Option<&Rc<FnSig>>,
    ) -> Result<String, EmitError> {
        let scrut_ml = self.expr_ml(scrut);
        let scrut_s = self.expr(scrut, None)?;
        let mut out_arms = Vec::new();
        let mut last_irr = false;
        for (p, body) in arms {
            self.scopes.push(HashMap::new());
            let (pat_s, prologue, irr) = self.pat(p, scrut_ml.as_ref())?;
            let body_s = self.expr(body, tail)?;
            self.scopes.pop();
            out_arms.push(format!("{pat_s} => {{ {prologue}{body_s} }}"));
            last_irr = irr;
        }
        if !last_irr {
            out_arms.push("_ => rt::match_fail()".to_string());
        }
        Ok(format!("(match {scrut_s} {{ {} }})", out_arms.join(", ")))
    }

    fn let_expr(
        &mut self,
        decls: &[sast::Decl],
        body: &sast::Expr,
        tail: Option<&Rc<FnSig>>,
    ) -> Result<String, EmitError> {
        self.scopes.push(HashMap::new());
        let mut out = "{ ".to_string();
        let result = (|| -> Result<(), EmitError> {
            for d in decls {
                match d {
                    sast::Decl::Val(v) => {
                        let e = self.expr(&v.expr, None)?;
                        let stmt = self.val_binding(&v.pat, &e)?;
                        out.push_str(&stmt);
                    }
                    sast::Decl::Fun(group) => {
                        // Lift with the enclosing function's name as prefix
                        // for readable lifted names.
                        let prefix = self.current_prefix();
                        self.fun_group(group, &prefix)?;
                    }
                    other => {
                        return Err(EmitError::new(
                            "only `val` and `fun` declarations are supported in `let`",
                            Some(other.span()),
                        ))
                    }
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.scopes.pop();
            return Err(e);
        }
        let body_s = self.expr(body, tail);
        self.scopes.pop();
        out.push_str(&body_s?);
        out.push_str(" }");
        Ok(out)
    }

    /// A readable prefix for lifted local functions: the nearest enclosing
    /// emitted function name. Uniqueness comes from `unique_fn_name`.
    fn current_prefix(&self) -> String {
        self.top_fns.last().map(|(n, _)| mangle(n)).unwrap_or_default()
    }

    /// `let <pat> = <expr>;` for irrefutable patterns.
    fn val_binding(&mut self, pat: &sast::Pat, rhs: &str) -> Result<String, EmitError> {
        match strip_anno(pat) {
            sast::Pat::Wild(_) => Ok(format!("let _ = {rhs}; ")),
            sast::Pat::Var(i) if !self.env.is_constructor(&i.name) => {
                let rust = mangle(&i.name);
                let ml = self.schemes.get(&i.span).map(|s| s.ty.clone());
                self.bind_val(&i.name, rust.clone(), ml);
                Ok(format!("let {rust} = {rhs}; "))
            }
            sast::Pat::Tuple(ps, span) => {
                let mut names = Vec::new();
                for p in ps {
                    match strip_anno(p) {
                        sast::Pat::Var(i) if !self.env.is_constructor(&i.name) => {
                            let rust = mangle(&i.name);
                            let ml = self.schemes.get(&i.span).map(|s| s.ty.clone());
                            self.bind_val(&i.name, rust.clone(), ml);
                            names.push(rust);
                        }
                        sast::Pat::Wild(_) => names.push("_".to_string()),
                        other => {
                            return Err(EmitError::new(
                                "refutable pattern in `val` binding",
                                Some(other.span()),
                            ))
                        }
                    }
                }
                let _ = span;
                Ok(format!("let ({}) = {rhs}; ", names.join(", ")))
            }
            other => Err(EmitError::new("refutable pattern in `val` binding", Some(other.span()))),
        }
    }

    /// A variable in value position.
    fn var_value(&mut self, i: &sast::Ident) -> Result<String, EmitError> {
        if self.env.is_constructor(&i.name) {
            return self.con_path(&i.name);
        }
        match self.lookup(&i.name).cloned() {
            Some(Binding::Val { rust, ml, .. }) => {
                if Self::is_copy(ml.as_ref()) {
                    Ok(rust)
                } else {
                    Ok(format!("{rust}.clone()"))
                }
            }
            Some(Binding::Fn(sig)) => self.eta_wrap(&sig, i.span),
            None => Err(EmitError::new(
                format!("`{}` cannot be used as a value here", i.name),
                Some(i.span),
            )),
        }
    }

    /// Wraps a known function as a first-class `rt::Fun` value.
    fn eta_wrap(&mut self, sig: &FnSig, span: Span) -> Result<String, EmitError> {
        if sig.groups.len() != 1 {
            return Err(EmitError::new(
                "only single-group functions can be used as values",
                Some(span),
            ));
        }
        let gty = Self::rs_ty(&sig.group_tys[0])?;
        let x = self.fresh("x");
        let mut args = Vec::new();
        match sig.groups[0].len() {
            0 => {}
            1 => args.push(x.clone()),
            k => {
                for j in 0..k {
                    args.push(format!("{x}.{j}"));
                }
            }
        }
        // Clone captured values into the closure, then clone per call.
        let mut pre = String::new();
        let mut cap_args = Vec::new();
        for c in &sig.captures {
            let cur = self.resolve_capture(c, span)?;
            let held = self.fresh("c");
            pre.push_str(&format!("let {held} = {cur}; "));
            cap_args.push(format!("{held}.clone()"));
        }
        args.extend(cap_args);
        Ok(format!("{{ {pre}rt::fun(move |{x}: {gty}| {}({})) }}", sig.rust, args.join(", ")))
    }

    /// Resolves a callee's capture by name in the current scope, checking
    /// binding *identity* (not just the name): a later `val` shadowing the
    /// captured variable would silently change which value the lifted
    /// function receives, so we refuse to emit that. Inside the callee's
    /// own body (and its siblings') the capture is re-bound as a parameter
    /// carrying the same id, so the check passes there too.
    fn resolve_capture(&self, c: &Capture, span: Span) -> Result<String, EmitError> {
        match self.lookup(&c.src) {
            Some(Binding::Val { rust, ml, id }) if *id == c.binding_id => {
                if Self::is_copy(ml.as_ref()) {
                    Ok(rust.clone())
                } else {
                    Ok(format!("{rust}.clone()"))
                }
            }
            _ => Err(EmitError::new(
                format!("captured variable `{}` is shadowed or out of scope at this call", c.src),
                Some(span),
            )),
        }
    }

    /// The ML type of an expression, when cheaply known (variables and
    /// annotated binders). Used only to type pattern bindings.
    fn expr_ml(&self, e: &sast::Expr) -> Option<MlTy> {
        match e {
            sast::Expr::Var(i) => match self.lookup(&i.name) {
                Some(Binding::Val { ml, .. }) => ml.clone(),
                _ => None,
            },
            sast::Expr::Anno(inner, _, _) => self.expr_ml(inner),
            sast::Expr::App(f, _, _) => {
                // Result type of a known function call.
                if let sast::Expr::Var(i) = strip_app_head(f) {
                    if let Some(Binding::Fn(sig)) = self.lookup(&i.name) {
                        return Some(sig.ret.clone());
                    }
                }
                None
            }
            _ => None,
        }
    }

    // -- application ------------------------------------------------------

    fn app(&mut self, e: &sast::Expr, tail: Option<&Rc<FnSig>>) -> Result<String, EmitError> {
        // Unravel the curried application spine.
        let mut args: Vec<&sast::Expr> = Vec::new();
        let mut head = e;
        while let sast::Expr::App(f, a, _) = head {
            args.push(a);
            head = f;
        }
        args.reverse();
        let head = strip_anno_expr(head);

        if let sast::Expr::Var(i) = head {
            let name = i.name.as_str();
            // Constructor application.
            if self.env.is_constructor(name) {
                if args.len() != 1 {
                    return Err(EmitError::new(
                        format!("constructor `{name}` applied to {} groups", args.len()),
                        Some(e.span()),
                    ));
                }
                let payload = self.expr(args[0], None)?;
                return Ok(format!("{}(std::rc::Rc::new({payload}))", self.con_path(name)?));
            }
            // Known function or local value?
            match self.lookup(name).cloned() {
                Some(Binding::Fn(sig)) => {
                    if args.len() == sig.groups.len() {
                        return self.known_call(&sig, &args, e.span(), tail);
                    }
                    return Err(EmitError::new(
                        format!(
                            "`{name}` expects {} argument group(s), got {} (partial application \
                             is outside the emitted subset)",
                            sig.groups.len(),
                            args.len()
                        ),
                        Some(e.span()),
                    ));
                }
                Some(Binding::Val { .. }) => {
                    return self.value_call(head, &args);
                }
                None => {
                    if PRIMS.contains(&name) {
                        if args.len() != 1 {
                            return Err(EmitError::new(
                                format!("primitive `{name}` applied to {} groups", args.len()),
                                Some(e.span()),
                            ));
                        }
                        return self.prim_call(name, args[0], e.span());
                    }
                    return Err(EmitError::new(format!("unknown function `{name}`"), Some(i.span)));
                }
            }
        }
        // General head expression of function type.
        self.value_call(head, &args)
    }

    /// Application of a first-class function value, one group at a time.
    fn value_call(&mut self, head: &sast::Expr, args: &[&sast::Expr]) -> Result<String, EmitError> {
        let mut cur = match head {
            sast::Expr::Var(i) => match self.lookup(&i.name) {
                Some(Binding::Val { rust, .. }) => format!("&{rust}"),
                _ => format!("&{}", self.expr(head, None)?),
            },
            _ => format!("&{}", self.expr(head, None)?),
        };
        for (k, a) in args.iter().enumerate() {
            let arg = self.expr(a, None)?;
            let call = format!("rt::app({cur}, {arg})");
            cur = if k + 1 == args.len() { call } else { format!("&{call}") };
        }
        Ok(cur)
    }

    /// Direct call of a known (emitted) function; handles the self-tail
    /// loop rewrite.
    fn known_call(
        &mut self,
        sig: &Rc<FnSig>,
        args: &[&sast::Expr],
        span: Span,
        tail: Option<&Rc<FnSig>>,
    ) -> Result<String, EmitError> {
        // Flatten arguments group by group, preserving evaluation order.
        let mut pre = String::new();
        let mut flat: Vec<String> = Vec::new();
        for (g, a) in args.iter().enumerate() {
            let k = sig.groups[g].len();
            let a_stripped = strip_anno_expr(a);
            match k {
                0 => match a_stripped {
                    sast::Expr::Tuple(es, _) if es.is_empty() => {}
                    other => {
                        let s = self.expr(other, None)?;
                        pre.push_str(&format!("let _ = {s}; "));
                    }
                },
                1 => flat.push(self.expr(a_stripped, None)?),
                _ => match a_stripped {
                    sast::Expr::Tuple(es, _) if es.len() == k => {
                        for x in es {
                            flat.push(self.expr(x, None)?);
                        }
                    }
                    other => {
                        let t = self.fresh("g");
                        let s = self.expr(other, None)?;
                        pre.push_str(&format!("let {t} = {s}; "));
                        for j in 0..k {
                            flat.push(format!("{t}.{j}.clone()"));
                        }
                    }
                },
            }
        }

        // Self-tail call inside a loop-form body: rebind and continue.
        let is_self_tail = tail.map(|t| Rc::ptr_eq(t, sig)).unwrap_or(false);
        if is_self_tail {
            let params = sig.flat_params();
            debug_assert_eq!(params.len(), flat.len());
            let mut out = "{ ".to_string();
            out.push_str(&pre);
            let temps: Vec<String> = (0..flat.len()).map(|k| format!("__n{k}")).collect();
            if !flat.is_empty() {
                out.push_str(&format!("let ({},) = ({},); ", temps.join(", "), flat.join(", ")));
                for (p, t) in params.iter().zip(&temps) {
                    out.push_str(&format!("{} = {t}; ", p.rust));
                }
            }
            out.push_str("continue '__rec }");
            return Ok(out);
        }

        // Ordinary call: append captures.
        let mut call_args = flat;
        for c in &sig.captures {
            call_args.push(self.resolve_capture(c, span)?);
        }
        let call = format!("{}({})", sig.rust, call_args.join(", "));
        if pre.is_empty() {
            Ok(call)
        } else {
            Ok(format!("{{ {pre}{call} }}"))
        }
    }

    // -- primitives -------------------------------------------------------

    /// The components of a primitive's tuple argument.
    fn prim_args(arg: &sast::Expr, n: usize, span: Span) -> Result<Vec<&sast::Expr>, EmitError> {
        let arg = strip_anno_expr(arg);
        if n == 1 {
            return Ok(vec![arg]);
        }
        match arg {
            sast::Expr::Tuple(es, _) if es.len() == n => Ok(es.iter().collect()),
            _ => Err(EmitError::new(format!("primitive expects a {n}-tuple argument"), Some(span))),
        }
    }

    /// A base-array/list argument in method position: borrows variables
    /// instead of cloning the handle.
    fn base_expr(&mut self, e: &sast::Expr) -> Result<String, EmitError> {
        match strip_anno_expr(e) {
            sast::Expr::Var(i) if !self.env.is_constructor(&i.name) => {
                if let Some(Binding::Val { rust, .. }) = self.lookup(&i.name) {
                    return Ok(format!("(&{rust})"));
                }
                Ok(format!("({})", self.expr(e, None)?))
            }
            _ => Ok(format!("({})", self.expr(e, None)?)),
        }
    }

    /// The SAFETY comment for a proven site.
    fn safety_comment(site: &SiteVerdict) -> String {
        let goals: Vec<String> = site.goals.iter().map(|g| format!("goal #{g} proven")).collect();
        format!("// SAFETY: {}", goals.join("; "))
    }

    /// Whether the site at `span` may use the unchecked access form.
    fn site_unchecked(&self, span: Span) -> Option<SiteVerdict> {
        if self.variant != Variant::UncheckedProven {
            return None;
        }
        match self.sites.get(&span) {
            Some(s) if s.proven => Some((*s).clone()),
            _ => None,
        }
    }

    fn prim_call(&mut self, name: &str, arg: &sast::Expr, span: Span) -> Result<String, EmitError> {
        match name {
            "+" | "-" | "*" | "div" | "mod" | "imin" | "imax" => {
                let es = Self::prim_args(arg, 2, span)?;
                let a = self.expr(es[0], None)?;
                let b = self.expr(es[1], None)?;
                let f = match name {
                    "+" => "rt::add",
                    "-" => "rt::subi",
                    "*" => "rt::mul",
                    "div" => "rt::fdiv",
                    "mod" => "rt::fmod",
                    "imin" => "rt::imin",
                    _ => "rt::imax",
                };
                Ok(format!("{f}({a}, {b})"))
            }
            "=" | "<>" | "<" | "<=" | ">" | ">=" => {
                let es = Self::prim_args(arg, 2, span)?;
                let a = self.expr(es[0], None)?;
                let b = self.expr(es[1], None)?;
                let op = match name {
                    "=" => "==",
                    "<>" => "!=",
                    other => other,
                };
                Ok(format!("({a} {op} {b})"))
            }
            "neg" | "iabs" => {
                let es = Self::prim_args(arg, 1, span)?;
                let a = self.expr(es[0], None)?;
                let f = if name == "neg" { "rt::neg" } else { "rt::iabs" };
                Ok(format!("{f}({a})"))
            }
            "not" => {
                let es = Self::prim_args(arg, 1, span)?;
                let a = self.expr(es[0], None)?;
                Ok(format!("(!{a})"))
            }
            "print_int" => {
                let es = Self::prim_args(arg, 1, span)?;
                let a = self.expr(es[0], None)?;
                Ok(format!("rt::print_int({a})"))
            }
            "length" => {
                let es = Self::prim_args(arg, 1, span)?;
                let b = self.base_expr(es[0])?;
                Ok(format!("{b}.len()"))
            }
            "llength" => {
                let es = Self::prim_args(arg, 1, span)?;
                let b = self.base_expr(es[0])?;
                Ok(format!("{b}.llength()"))
            }
            "array" => {
                let es = Self::prim_args(arg, 2, span)?;
                let n = self.expr(es[0], None)?;
                let x = self.expr(es[1], None)?;
                Ok(format!("rt::Arr::new({n}, {x})"))
            }
            "sub" | "subCK" | "nth" | "nthCK" => {
                let es = Self::prim_args(arg, 2, span)?;
                // Hoist base then index, in source evaluation order.
                let b = self.base_expr(es[0])?;
                let i = self.expr(es[1], None)?;
                let bt = self.fresh("b");
                let it = self.fresh("i");
                let is_list = name.starts_with("nth");
                let site = if name.ends_with("CK") { None } else { self.site_unchecked(span) };
                let access = match site {
                    Some(s) => {
                        self.stats.unchecked_sites += 1;
                        let safety = Self::safety_comment(&s);
                        let m = if is_list { "nth_un" } else { "get_un" };
                        format!("{safety}\n      unsafe {{ {bt}.{m}({it}) }}")
                    }
                    None => {
                        if !name.ends_with("CK") {
                            self.stats.checked_sites += 1;
                        }
                        let m = if is_list { "nth_ck" } else { "get_ck" };
                        format!("{bt}.{m}({it})")
                    }
                };
                Ok(format!("{{ let {bt} = {b}; let {it} = {i};\n      {access} }}"))
            }
            "update" | "updateCK" => {
                let es = Self::prim_args(arg, 3, span)?;
                let b = self.base_expr(es[0])?;
                let i = self.expr(es[1], None)?;
                let x = self.expr(es[2], None)?;
                let bt = self.fresh("b");
                let it = self.fresh("i");
                let xt = self.fresh("v");
                let site = if name.ends_with("CK") { None } else { self.site_unchecked(span) };
                let access = match site {
                    Some(s) => {
                        self.stats.unchecked_sites += 1;
                        let safety = Self::safety_comment(&s);
                        format!("{safety}\n      unsafe {{ {bt}.set_un({it}, {xt}) }}")
                    }
                    None => {
                        if !name.ends_with("CK") {
                            self.stats.checked_sites += 1;
                        }
                        format!("{bt}.set_ck({it}, {xt})")
                    }
                };
                Ok(format!("{{ let {bt} = {b}; let {it} = {i}; let {xt} = {x};\n      {access} }}"))
            }
            other => Err(EmitError::new(format!("unsupported primitive `{other}`"), Some(span))),
        }
    }
}

// -- helpers ---------------------------------------------------------------

/// Splits an ML arrow type into `n` curried argument groups plus result.
fn arrow_groups(ty: &MlTy, n: usize, span: Span) -> Result<(Vec<MlTy>, MlTy), EmitError> {
    let mut groups = Vec::new();
    let mut cur = ty.clone();
    for _ in 0..n {
        match cur {
            MlTy::Arrow(a, b) => {
                groups.push(*a);
                cur = *b;
            }
            _ => {
                return Err(EmitError::new(
                    "inferred type has fewer arrows than parameter groups",
                    Some(span),
                ))
            }
        }
    }
    Ok((groups, cur))
}

fn strip_anno(p: &sast::Pat) -> &sast::Pat {
    match p {
        sast::Pat::Anno(inner, _, _) => strip_anno(inner),
        other => other,
    }
}

fn strip_anno_expr(e: &sast::Expr) -> &sast::Expr {
    match e {
        sast::Expr::Anno(inner, _, _) => strip_anno_expr(inner),
        other => other,
    }
}

fn strip_app_head(e: &sast::Expr) -> &sast::Expr {
    match e {
        sast::Expr::App(f, _, _) => strip_app_head(f),
        sast::Expr::Anno(inner, _, _) => strip_app_head(inner),
        other => other,
    }
}

/// Is this parameter pattern simple enough for direct named binding?
fn simple_group_pat(p: &sast::Pat) -> bool {
    match strip_anno(p) {
        sast::Pat::Var(_) | sast::Pat::Wild(_) => true,
        sast::Pat::Tuple(ps, _) => {
            ps.iter().all(|q| matches!(strip_anno(q), sast::Pat::Var(_) | sast::Pat::Wild(_)))
        }
        _ => false,
    }
}

/// Does `body` contain a direct self-tail-call of `name`?
fn scan_self_tail(body: &sast::Expr, name: &str) -> bool {
    match body {
        sast::Expr::App(_, _, _) => {
            matches!(strip_app_head(body), sast::Expr::Var(i) if i.name == name)
        }
        sast::Expr::If(_, t, f, _) => scan_self_tail(t, name) || scan_self_tail(f, name),
        sast::Expr::Case(_, arms, _) => arms.iter().any(|(_, e)| scan_self_tail(e, name)),
        sast::Expr::Let(decls, e, _) => {
            // A redefinition of `name` in the let shadows the function.
            let shadowed = decls.iter().any(|d| match d {
                sast::Decl::Fun(fs) => fs.iter().any(|f| f.name.name == name),
                sast::Decl::Val(v) => v.pat.bound_vars().iter().any(|i| i.name == name),
                _ => false,
            });
            !shadowed && scan_self_tail(e, name)
        }
        sast::Expr::Seq(es, _) => es.last().map(|e| scan_self_tail(e, name)).unwrap_or(false),
        sast::Expr::Anno(e, _, _) => scan_self_tail(e, name),
        _ => false,
    }
}

/// Collects free identifiers of `e` (value positions) into `out`, skipping
/// those in `bound`.
fn free_idents(e: &sast::Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        sast::Expr::Var(i) => {
            if !bound.iter().any(|b| b == &i.name) {
                out.insert(i.name.clone());
            }
        }
        sast::Expr::Int(_, _) | sast::Expr::Bool(_, _) => {}
        sast::Expr::App(f, a, _) => {
            free_idents(f, bound, out);
            free_idents(a, bound, out);
        }
        sast::Expr::Tuple(es, _) | sast::Expr::Seq(es, _) => {
            for x in es {
                free_idents(x, bound, out);
            }
        }
        sast::Expr::If(c, t, f, _) => {
            free_idents(c, bound, out);
            free_idents(t, bound, out);
            free_idents(f, bound, out);
        }
        sast::Expr::Andalso(a, b, _) | sast::Expr::Orelse(a, b, _) => {
            free_idents(a, bound, out);
            free_idents(b, bound, out);
        }
        sast::Expr::Anno(x, _, _) => free_idents(x, bound, out),
        sast::Expr::Case(scrut, arms, _) => {
            free_idents(scrut, bound, out);
            for (p, body) in arms {
                let mark = bound.len();
                for v in p.bound_vars() {
                    bound.push(v.name.clone());
                }
                free_idents(body, bound, out);
                bound.truncate(mark);
            }
        }
        sast::Expr::Fn(arms, _) => {
            for (p, body) in arms {
                let mark = bound.len();
                for v in p.bound_vars() {
                    bound.push(v.name.clone());
                }
                free_idents(body, bound, out);
                bound.truncate(mark);
            }
        }
        sast::Expr::Let(decls, body, _) => {
            let mark = bound.len();
            for d in decls {
                match d {
                    sast::Decl::Val(v) => {
                        free_idents(&v.expr, bound, out);
                        for i in v.pat.bound_vars() {
                            bound.push(i.name.clone());
                        }
                    }
                    sast::Decl::Fun(fs) => {
                        for f in fs {
                            bound.push(f.name.name.clone());
                        }
                        for f in fs {
                            for c in &f.clauses {
                                let m2 = bound.len();
                                for p in &c.params {
                                    for i in p.bound_vars() {
                                        bound.push(i.name.clone());
                                    }
                                }
                                free_idents(&c.body, bound, out);
                                bound.truncate(m2);
                            }
                        }
                    }
                    _ => {}
                }
            }
            free_idents(body, bound, out);
            bound.truncate(mark);
        }
        sast::Expr::Raise(_, _) => {}
        sast::Expr::Handle(x, arms, _) => {
            free_idents(x, bound, out);
            for (_, body) in arms {
                free_idents(body, bound, out);
            }
        }
    }
}
