//! Golden-emission tests: emitted Rust is a deterministic function of the
//! source program alone.
//!
//! For `examples/{dotprod,bcopy,bsearch}.dml` the proven-unchecked
//! emission must be byte-identical across {workers 1, 4} × {cache on,
//! off} (solver parallelism and the verdict cache change *how fast*
//! verdicts arrive, never *which code* is emitted), and must match the
//! committed snapshot under `tests/golden/emit/`. Regenerate snapshots
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dml-emit --test emit_golden
//! ```

use dml::pipeline::Compiler;
use dml_emit::{emit_program, EmitOptions, Variant};
use dml_types::infer::infer_program;
use std::path::PathBuf;

const EXAMPLES: &[&str] = &["dotprod", "bcopy", "bsearch"];

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(rel)
}

/// Emits the proven-unchecked variant under an explicit solver config;
/// returns `(main_rs, proven_site_count, unchecked_sites)`.
fn emit_with(source: &str, name: &str, workers: usize, cache: bool) -> (String, usize, usize) {
    let compiled = Compiler::new()
        .workers(workers)
        .cache(cache)
        .compile(source)
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
    let schemes = infer_program(compiled.program(), compiled.env())
        .unwrap_or_else(|e| panic!("{name}: re-inference failed: {e:?}"))
        .schemes;
    let sites = compiled.site_verdicts();
    let proven = sites.iter().filter(|s| s.proven).count();
    let opts = EmitOptions {
        variant: Variant::UncheckedProven,
        crate_name: format!("{}_unchecked", dml_emit::sanitize_crate_name(name)),
    };
    let emitted = emit_program(compiled.program(), compiled.env(), &schemes, &sites, &opts)
        .unwrap_or_else(|e| panic!("{name}: emission failed: {e}"));
    (emitted.main_rs, proven, emitted.stats.unchecked_sites)
}

#[test]
fn emission_is_config_independent_and_matches_golden() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for name in EXAMPLES {
        let source = std::fs::read_to_string(repo_path(&format!("examples/{name}.dml")))
            .unwrap_or_else(|e| panic!("read examples/{name}.dml: {e}"));

        let (reference, proven, unchecked) = emit_with(&source, name, 1, true);
        for (workers, cache) in [(1, false), (4, true), (4, false)] {
            let (other, p2, u2) = emit_with(&source, name, workers, cache);
            assert_eq!(
                reference, other,
                "{name}: emission differs under workers={workers} cache={cache}"
            );
            assert_eq!((proven, unchecked), (p2, u2), "{name}: site counts drifted");
        }

        // Exactly one unsafe block per proven site, in the program body.
        let body = reference
            .split_once(dml_emit::RT_END_MARKER)
            .map(|(_, rest)| rest)
            .expect("runtime end marker present");
        assert_eq!(
            body.matches("unsafe {").count(),
            proven,
            "{name}: unsafe blocks must equal the `dmlc check` proven count"
        );
        assert_eq!(unchecked, proven, "{name}: emitter stats vs verdicts");

        let golden_path = repo_path(&format!("crates/emit/tests/golden/emit/{name}_unchecked.rs"));
        if update {
            std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
            std::fs::write(&golden_path, &reference).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1",
                golden_path.display()
            )
        });
        assert_eq!(
            golden, reference,
            "{name}: emission drifted from the committed snapshot; \
             if intentional, regenerate with UPDATE_GOLDEN=1"
        );
    }
}

/// The committed example files must keep the same code as the in-crate
/// benchmark sources — the goldens snapshot the seed programs, not forks.
#[test]
fn examples_match_seed_sources() {
    let pairs: &[(&str, &str)] = &[
        ("dotprod", dml_programs::dotprod::SOURCE),
        ("bcopy", dml_programs::bcopy::SOURCE),
        ("bsearch", dml_programs::bsearch::SOURCE),
    ];
    for (name, source) in pairs {
        let file = std::fs::read_to_string(repo_path(&format!("examples/{name}.dml")))
            .unwrap_or_else(|e| panic!("read examples/{name}.dml: {e}"));
        assert!(
            file.contains(source.trim()),
            "examples/{name}.dml drifted from dml_programs::{name}::SOURCE"
        );
    }
}
