//! The evaluation-order/aliasing trap, end to end.
//!
//! `examples/aliasing_trap.dml` buries mutations of an array inside the
//! index and value expressions of accesses to that same array. The
//! emission contract (docs/EMIT.md) hoists base, index, and value into
//! temporaries once, in source order, before selecting the access form —
//! so removing the bounds check cannot change which element is read or
//! written. These tests assert the hoist textually and then prove it
//! behaviourally: both emitted variants build and produce byte-identical
//! stdout.

use dml::pipeline::Compiler;
use dml_emit::{emit_program, EmitOptions, Variant};
use dml_types::infer::infer_program;
use std::path::PathBuf;
use std::process::Command;

const TRAP: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/aliasing_trap.dml");

fn emit(variant: Variant) -> dml_emit::EmittedCrate {
    let source = std::fs::read_to_string(TRAP).expect("read aliasing_trap.dml");
    let compiled = Compiler::new().compile(&source).expect("pipeline");
    let schemes = infer_program(compiled.program(), compiled.env()).expect("inference").schemes;
    let sites = compiled.site_verdicts();
    assert!(sites.iter().all(|s| s.proven), "every trap site must be proven (got {:?})", sites);
    let opts = EmitOptions {
        variant,
        crate_name: format!(
            "aliasing_trap_{}",
            match variant {
                Variant::Checked => "checked",
                Variant::UncheckedProven => "unchecked",
            }
        ),
    };
    emit_program(compiled.program(), compiled.env(), &schemes, &sites, &opts).expect("emission")
}

/// Every access hoists base before index before the access itself — in
/// both variants, so the checked baseline and the unsafe emission have
/// identical evaluation order by construction.
#[test]
fn hoist_order_is_base_then_index_then_access() {
    for variant in [Variant::Checked, Variant::UncheckedProven] {
        let emitted = emit(variant);
        let body = emitted
            .main_rs
            .split_once(dml_emit::RT_END_MARKER)
            .map(|(_, rest)| rest)
            .expect("runtime end marker present");
        let accesses: Vec<usize> = ["get_un(", "get_ck(", "set_un(", "set_ck("]
            .iter()
            .flat_map(|m| body.match_indices(m).map(|(p, _)| p))
            .collect();
        assert!(!accesses.is_empty(), "no array accesses emitted");
        for pos in accesses {
            let before = &body[..pos];
            let b = before.rfind("let __b").unwrap_or_else(|| {
                panic!(
                    "{variant:?}: access at {pos} has no hoisted base:\n...{}",
                    &body[pos.saturating_sub(200)..pos]
                )
            });
            let i = before
                .rfind("let __i")
                .unwrap_or_else(|| panic!("{variant:?}: access at {pos} has no hoisted index"));
            assert!(b < i, "{variant:?}: base must be hoisted before index at {pos}");
        }
    }
}

/// The side-effecting index expression lands inside the hoisted index
/// temporary (evaluated exactly once, before the access), not inline in
/// the access itself.
#[test]
fn side_effects_are_hoisted_out_of_the_access() {
    let emitted = emit(Variant::UncheckedProven);
    let body = emitted.main_rs.split_once(dml_emit::RT_END_MARKER).map(|(_, rest)| rest).unwrap();
    for (pos, _) in body.match_indices("unsafe {") {
        let access = &body[pos..pos + body[pos..].find('}').unwrap() + 1];
        // The block applies one unchecked access to already-hoisted
        // temporaries: no checked calls, no runtime calls, no nested
        // blocks — so no expression with side effects can hide in it.
        assert!(
            !access.contains("_ck(")
                && !access.contains("rt::")
                && access.matches('{').count() == 1,
            "non-hoisted work leaked inside an unsafe access: {access}"
        );
        assert!(
            access.contains(".get_un(__i")
                || access.contains(".set_un(__i")
                || access.contains(".nth_un(__i"),
            "unsafe access must consume the hoisted index temporary: {access}"
        );
    }
    assert_eq!(emitted.stats.unchecked_sites, 8, "all eight trap sites lowered unchecked");
}

/// The behavioural proof: both variants build and print identical stdout.
#[test]
fn trap_differential_build_and_run() {
    let tmp = std::env::temp_dir().join(format!("dml_trap_test_{}", std::process::id()));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut outs = Vec::new();
    for variant in [Variant::Checked, Variant::UncheckedProven] {
        let emitted = emit(variant);
        assert!(emitted.driver_fallback.is_none(), "trap needs a runnable driver");
        let dir: PathBuf = tmp.join(&emitted.crate_name);
        dml_emit::write_crate(&emitted, &dir).expect("write crate");
        let build = Command::new(&cargo)
            .args(["build", "--quiet"])
            .current_dir(&dir)
            .env("CARGO_TARGET_DIR", tmp.join("target"))
            .output()
            .expect("spawn cargo");
        assert!(
            build.status.success(),
            "build failed for {variant:?}:\n{}",
            String::from_utf8_lossy(&build.stderr)
        );
        let bin = tmp.join("target/debug").join(&emitted.crate_name);
        let run = Command::new(&bin).args(["16", "3", "42"]).output().expect("run binary");
        assert!(
            run.status.success(),
            "binary failed for {variant:?}:\n{}",
            String::from_utf8_lossy(&run.stderr)
        );
        outs.push(String::from_utf8_lossy(&run.stdout).into_owned());
    }
    assert_eq!(outs[0], outs[1], "aliasing trap: checked and unchecked stdout differ");
    let _ = std::fs::remove_dir_all(&tmp);
}
