//! End-to-end backend tests over the seed benchmark corpus.
//!
//! Every supported program must emit in both variants; the
//! proven-unchecked variant must contain exactly one `unsafe` block per
//! proven site, each annotated with a goal-numbered SAFETY comment; and
//! the emitted dotprod crate must build and run with identical stdout in
//! both variants (the differential check the CI job runs at scale).

use dml::pipeline::Compiler;
use dml_emit::{emit_program, EmitOptions, Variant};
use dml_types::infer::infer_program;
use std::path::PathBuf;
use std::process::Command;

/// The emit corpus: every seed program except `kmp` (top-level stateful
/// `val` — outside the emitted subset; see docs/EMIT.md).
fn corpus() -> Vec<dml_programs::BenchProgram> {
    let mut v = dml_programs::all_programs();
    v.retain(|p| p.name != "kmp");
    v
}

fn emit(name: &str, source: &str, variant: Variant) -> dml_emit::EmittedCrate {
    let compiled =
        Compiler::new().compile(source).unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
    let schemes = infer_program(compiled.program(), compiled.env())
        .unwrap_or_else(|e| panic!("{name}: re-inference failed: {e:?}"))
        .schemes;
    let sites = compiled.site_verdicts();
    let opts = EmitOptions {
        variant,
        crate_name: format!(
            "{}_{}",
            dml_emit::sanitize_crate_name(name),
            match variant {
                Variant::Checked => "checked",
                Variant::UncheckedProven => "unchecked",
            }
        ),
    };
    emit_program(compiled.program(), compiled.env(), &schemes, &sites, &opts)
        .unwrap_or_else(|e| panic!("{name}: emission failed: {e}"))
}

#[test]
fn corpus_emits_in_both_variants() {
    for p in corpus() {
        let checked = emit(p.name, p.source, Variant::Checked);
        let unchecked = emit(p.name, p.source, Variant::UncheckedProven);
        assert_eq!(
            checked.stats.unchecked_sites, 0,
            "{}: checked variant must not emit unchecked sites",
            p.name
        );
        assert!(
            !checked.main_rs.is_empty() && !unchecked.main_rs.is_empty(),
            "{}: empty emission",
            p.name
        );
    }
}

#[test]
fn unsafe_blocks_match_proven_sites() {
    for p in corpus() {
        let compiled = Compiler::new().compile(p.source).expect("compile");
        let proven = compiled.site_verdicts().iter().filter(|s| s.proven).count();
        let emitted = emit(p.name, p.source, Variant::UncheckedProven);
        // Count unsafe blocks in the program body (the embedded runtime has
        // its own audited unsafe blocks; cut it off first).
        let body = emitted
            .main_rs
            .split_once(dml_emit::RT_END_MARKER)
            .map(|(_, rest)| rest)
            .expect("runtime end marker present");
        let count = body.matches("unsafe {").count();
        assert_eq!(count, emitted.stats.unchecked_sites, "{}: unsafe blocks vs stats", p.name);
        assert_eq!(count, proven, "{}: unsafe blocks must equal proven site count", p.name);
        // Every unsafe block must be preceded by a SAFETY comment within
        // the previous two lines (the grep lint CI also enforces).
        let lines: Vec<&str> = body.lines().collect();
        for (k, l) in lines.iter().enumerate() {
            if l.contains("unsafe {") {
                let window = &lines[k.saturating_sub(2)..=k];
                assert!(
                    window.iter().any(|w| w.contains("// SAFETY: goal #")),
                    "{}: unsafe block without goal-numbered SAFETY comment at line {k}",
                    p.name
                );
            }
        }
    }
}

#[test]
fn checked_variant_has_no_program_unsafe() {
    for p in corpus() {
        let emitted = emit(p.name, p.source, Variant::Checked);
        let body = emitted
            .main_rs
            .split_once(dml_emit::RT_END_MARKER)
            .map(|(_, rest)| rest)
            .expect("runtime end marker present");
        assert_eq!(
            body.matches("unsafe {").count(),
            0,
            "{}: checked variant leaked an unsafe block",
            p.name
        );
    }
}

#[test]
fn bench_programs_get_real_drivers() {
    // The paper's table programs plus dotprod must synthesise a runnable
    // benchmark main, not the build-only fallback.
    let mut names: Vec<&str> = dml_programs::table_programs().iter().map(|p| p.name).collect();
    names.push("dotprod");
    for p in corpus() {
        if !names.contains(&p.name) {
            continue;
        }
        let emitted = emit(p.name, p.source, Variant::UncheckedProven);
        assert!(
            emitted.driver_fallback.is_none(),
            "{}: driver fell back: {:?}",
            p.name,
            emitted.driver_fallback
        );
    }
}

/// Builds and runs both variants of every corpus program at a small size;
/// stdout must be byte-identical between checked and proven-unchecked.
#[test]
fn corpus_differential_build_and_run() {
    let tmp = std::env::temp_dir().join(format!("dml_emit_test_{}", std::process::id()));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for p in corpus() {
        let mut outs = Vec::new();
        for variant in [Variant::Checked, Variant::UncheckedProven] {
            let emitted = emit(p.name, p.source, variant);
            if emitted.driver_fallback.is_some() {
                // Build-only program: still must compile.
            }
            let dir: PathBuf = tmp.join(emitted.crate_name.clone());
            dml_emit::write_crate(&emitted, &dir).expect("write crate");
            let build = Command::new(&cargo)
                .args(["build", "--quiet"])
                .current_dir(&dir)
                .env("CARGO_TARGET_DIR", tmp.join("target"))
                .output()
                .expect("spawn cargo");
            assert!(
                build.status.success(),
                "{}: cargo build failed for {variant:?}:\n{}",
                p.name,
                String::from_utf8_lossy(&build.stderr)
            );
            let bin = tmp.join("target/debug").join(&emitted.crate_name);
            let run =
                Command::new(&bin).args(["12", "2", "7"]).output().expect("run emitted binary");
            assert!(
                run.status.success(),
                "{}: emitted binary failed for {variant:?}:\n{}",
                p.name,
                String::from_utf8_lossy(&run.stderr)
            );
            outs.push(String::from_utf8_lossy(&run.stdout).into_owned());
        }
        assert_eq!(outs[0], outs[1], "{}: checked and unchecked stdout differ", p.name);
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
