//! Property tests: the pretty-printer and parser are mutually consistent —
//! `parse ∘ pretty` is the identity up to printing (printing is a fixed
//! point), for randomly generated types, index expressions, and
//! propositions.

use dml_syntax::ast::{CmpOp, DType, IExpr, IProp, Ident, Index, Quant, Sort};
use dml_syntax::{parse_dtype, pretty};
use dml_syntax::Span;
use proptest::prelude::*;

fn ident(name: &str) -> Ident {
    Ident::new(name, Span::default())
}

fn arb_iexpr() -> impl Strategy<Value = IExpr> {
    let leaf = prop_oneof![
        (0i64..50).prop_map(|n| IExpr::Lit(n, Span::default())),
        prop_oneof![Just("n"), Just("m"), Just("i")].prop_map(|s| IExpr::Var(ident(s))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| IExpr::Abs(Box::new(a))),
        ]
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
    ]
}

fn arb_iprop() -> impl Strategy<Value = IProp> {
    let atom = (arb_cmp(), arb_iexpr(), arb_iexpr())
        .prop_map(|(op, a, b)| IProp::Cmp(op, Box::new(a), Box::new(b)));
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IProp::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IProp::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| IProp::Not(Box::new(a))),
        ]
    })
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    let leaf = prop_oneof![
        Just(DType::base("int")),
        Just(DType::base("bool")),
        Just(DType::unit()),
        Just(DType::Var(ident("a"))),
        arb_iexpr().prop_map(|e| DType::App {
            name: ident("int"),
            ty_args: vec![],
            ix_args: vec![Index::Int(e)],
        }),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_iexpr()).prop_map(|(t, e)| DType::App {
                name: ident("array"),
                ty_args: vec![t],
                ix_args: vec![Index::Int(e)],
            }),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(DType::Product),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| DType::Arrow(Box::new(a), Box::new(b))),
            (arb_iprop(), inner.clone()).prop_map(|(g, t)| DType::Pi(
                vec![
                    Quant { var: ident("n"), sort: Sort::Nat, guard: None },
                    Quant { var: ident("m"), sort: Sort::Int, guard: None },
                    Quant { var: ident("i"), sort: Sort::Int, guard: Some(g) },
                ],
                Box::new(t),
            )),
            (arb_iprop(), inner).prop_map(|(g, t)| DType::Sigma(
                vec![Quant { var: ident("n"), sort: Sort::Nat, guard: Some(g) },
                     Quant { var: ident("m"), sort: Sort::Int, guard: None }],
                Box::new(t),
            )),
        ]
    })
}

/// Strips spans so ASTs can be compared structurally after a reparse.
fn print_twice_fixed_point(t: &DType) {
    let once = pretty::dtype(t);
    let reparsed = parse_dtype(&once)
        .unwrap_or_else(|e| panic!("re-parse of `{once}` failed: {}", e.render(&once)));
    let twice = pretty::dtype(&reparsed);
    assert_eq!(once, twice, "printing is a fixed point");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn dtype_print_parse_fixed_point(t in arb_dtype()) {
        print_twice_fixed_point(&t);
    }

    #[test]
    fn iexpr_print_parse_fixed_point(e in arb_iexpr()) {
        let t = DType::App {
            name: ident("int"),
            ty_args: vec![],
            ix_args: vec![Index::Int(e)],
        };
        print_twice_fixed_point(&t);
    }

    #[test]
    fn iprop_print_parse_fixed_point(p in arb_iprop()) {
        let t = DType::Pi(
            vec![Quant { var: ident("n"), sort: Sort::Int, guard: Some(p) }],
            Box::new(DType::base("int")),
        );
        print_twice_fixed_point(&t);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(src in "\\PC{0,120}") {
        let _ = dml_syntax::lexer::lex(&src);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(src in "\\PC{0,120}") {
        let _ = dml_syntax::parse_program(&src);
        let _ = dml_syntax::parse_expr(&src);
        let _ = dml_syntax::parse_dtype(&src);
    }

    /// Token-soup built from the language's own vocabulary parses or fails
    /// gracefully (a much denser source of near-miss programs than \\PC).
    #[test]
    fn parser_total_on_vocabulary_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("fun"), Just("val"), Just("let"), Just("in"), Just("end"),
                Just("if"), Just("then"), Just("else"), Just("case"), Just("of"),
                Just("where"), Just("<|"), Just("{"), Just("}"), Just("("),
                Just(")"), Just("["), Just("]"), Just("->"), Just("=>"),
                Just("="), Just("|"), Just("::"), Just("nat"), Just("int"),
                Just("x"), Just("f"), Just("n"), Just("0"), Just("1"),
                Just("+"), Just("*"), Just("sub"), Just("array"), Just(","),
                Just(":"), Just("'a"), Just("&&"), Just("~"),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = dml_syntax::parse_program(&src);
    }
}
