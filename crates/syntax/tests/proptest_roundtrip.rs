//! Property tests: the pretty-printer and parser are mutually consistent —
//! `parse ∘ pretty` is the identity up to printing (printing is a fixed
//! point), for randomly generated types, index expressions, and
//! propositions.
//!
//! Inputs come from the local fixed-seed generator below (the workspace
//! builds offline, so no external property-testing framework), making every
//! run reproducible.

use dml_syntax::ast::{CmpOp, DType, IExpr, IProp, Ident, Index, Quant, Sort};
use dml_syntax::Span;
use dml_syntax::{parse_dtype, pretty};

/// SplitMix64 — deterministic input supply for the roundtrip tests.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn ident(name: &str) -> Ident {
    Ident::new(name, Span::default())
}

fn random_iexpr(rng: &mut Rng, depth: usize) -> IExpr {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => IExpr::Lit(rng.below(50) as i64, Span::default()),
            1 => IExpr::Var(ident("n")),
            2 => IExpr::Var(ident("m")),
            _ => IExpr::Var(ident("i")),
        };
    }
    let d = depth - 1;
    match rng.below(7) {
        0 => IExpr::Add(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        1 => IExpr::Sub(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        2 => IExpr::Mul(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        3 => IExpr::Div(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        4 => IExpr::Min(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        5 => IExpr::Max(Box::new(random_iexpr(rng, d)), Box::new(random_iexpr(rng, d))),
        _ => IExpr::Abs(Box::new(random_iexpr(rng, d))),
    }
}

fn random_cmp(rng: &mut Rng) -> CmpOp {
    match rng.below(6) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        _ => CmpOp::Neq,
    }
}

fn random_iprop(rng: &mut Rng, depth: usize) -> IProp {
    if depth == 0 || rng.below(3) == 0 {
        let op = random_cmp(rng);
        return IProp::Cmp(op, Box::new(random_iexpr(rng, 2)), Box::new(random_iexpr(rng, 2)));
    }
    let d = depth - 1;
    match rng.below(3) {
        0 => IProp::And(Box::new(random_iprop(rng, d)), Box::new(random_iprop(rng, d))),
        1 => IProp::Or(Box::new(random_iprop(rng, d)), Box::new(random_iprop(rng, d))),
        _ => IProp::Not(Box::new(random_iprop(rng, d))),
    }
}

fn random_dtype(rng: &mut Rng, depth: usize) -> DType {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(5) {
            0 => DType::base("int"),
            1 => DType::base("bool"),
            2 => DType::unit(),
            3 => DType::Var(ident("a")),
            _ => DType::App {
                name: ident("int"),
                ty_args: vec![],
                ix_args: vec![Index::Int(random_iexpr(rng, 2))],
            },
        };
    }
    let d = depth - 1;
    match rng.below(5) {
        0 => DType::App {
            name: ident("array"),
            ty_args: vec![random_dtype(rng, d)],
            ix_args: vec![Index::Int(random_iexpr(rng, 2))],
        },
        1 => {
            let n = 2 + rng.below(2);
            DType::Product((0..n).map(|_| random_dtype(rng, d)).collect())
        }
        2 => DType::Arrow(Box::new(random_dtype(rng, d)), Box::new(random_dtype(rng, d))),
        3 => DType::Pi(
            vec![
                Quant { var: ident("n"), sort: Sort::Nat, guard: None },
                Quant { var: ident("m"), sort: Sort::Int, guard: None },
                Quant { var: ident("i"), sort: Sort::Int, guard: Some(random_iprop(rng, 2)) },
            ],
            Box::new(random_dtype(rng, d)),
        ),
        _ => DType::Sigma(
            vec![
                Quant { var: ident("n"), sort: Sort::Nat, guard: Some(random_iprop(rng, 2)) },
                Quant { var: ident("m"), sort: Sort::Int, guard: None },
            ],
            Box::new(random_dtype(rng, d)),
        ),
    }
}

/// Strips spans so ASTs can be compared structurally after a reparse.
fn print_twice_fixed_point(t: &DType) {
    let once = pretty::dtype(t);
    let reparsed = parse_dtype(&once)
        .unwrap_or_else(|e| panic!("re-parse of `{once}` failed: {}", e.render(&once)));
    let twice = pretty::dtype(&reparsed);
    assert_eq!(once, twice, "printing is a fixed point");
}

#[test]
fn dtype_print_parse_fixed_point() {
    let mut rng = Rng(0xD7E9);
    for _ in 0..512 {
        print_twice_fixed_point(&random_dtype(&mut rng, 3));
    }
}

#[test]
fn iexpr_print_parse_fixed_point() {
    let mut rng = Rng(0x1E87);
    for _ in 0..512 {
        let t = DType::App {
            name: ident("int"),
            ty_args: vec![],
            ix_args: vec![Index::Int(random_iexpr(&mut rng, 3))],
        };
        print_twice_fixed_point(&t);
    }
}

#[test]
fn iprop_print_parse_fixed_point() {
    let mut rng = Rng(0x1B0B);
    for _ in 0..512 {
        let t = DType::Pi(
            vec![Quant {
                var: ident("n"),
                sort: Sort::Int,
                guard: Some(random_iprop(&mut rng, 3)),
            }],
            Box::new(DType::base("int")),
        );
        print_twice_fixed_point(&t);
    }
}

/// A printable-character soup (ASCII plus some multibyte) for totality
/// tests.
fn random_text(rng: &mut Rng, max_len: usize) -> String {
    const EXTRA: &[char] = &['λ', 'π', '→', '≤', '∀', '€', '“', '\t'];
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            if rng.below(8) == 0 {
                EXTRA[rng.below(EXTRA.len())]
            } else {
                (0x20 + rng.below(0x5f) as u8) as char
            }
        })
        .collect()
}

/// The lexer never panics on arbitrary input.
#[test]
fn lexer_total() {
    let mut rng = Rng(0x7E07);
    for _ in 0..512 {
        let src = random_text(&mut rng, 120);
        let _ = dml_syntax::lexer::lex(&src);
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total() {
    let mut rng = Rng(0x9A55);
    for _ in 0..512 {
        let src = random_text(&mut rng, 120);
        let _ = dml_syntax::parse_program(&src);
        let _ = dml_syntax::parse_expr(&src);
        let _ = dml_syntax::parse_dtype(&src);
    }
}

/// Token-soup built from the language's own vocabulary parses or fails
/// gracefully (a much denser source of near-miss programs than random
/// characters).
#[test]
fn parser_total_on_vocabulary_soup() {
    const WORDS: &[&str] = &[
        "fun", "val", "let", "in", "end", "if", "then", "else", "case", "of", "where", "<|", "{",
        "}", "(", ")", "[", "]", "->", "=>", "=", "|", "::", "nat", "int", "x", "f", "n", "0", "1",
        "+", "*", "sub", "array", ",", ":", "'a", "&&", "~",
    ];
    let mut rng = Rng(0x50FA);
    for _ in 0..1024 {
        let len = rng.below(40);
        let src = (0..len).map(|_| WORDS[rng.below(WORDS.len())]).collect::<Vec<_>>().join(" ");
        let _ = dml_syntax::parse_program(&src);
    }
}
