//! Pretty-printing of surface syntax back to concrete syntax.
//!
//! The printer is used for diagnostics and golden tests; it produces valid
//! concrete syntax (re-parseable for types and index expressions).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a dependent type.
pub fn dtype(t: &DType) -> String {
    let mut s = String::new();
    write_dtype(&mut s, t, 0);
    s
}

/// Renders an index expression.
pub fn iexpr(e: &IExpr) -> String {
    let mut s = String::new();
    write_iexpr(&mut s, e, 0);
    s
}

/// Renders an index proposition.
pub fn iprop(p: &IProp) -> String {
    let mut s = String::new();
    write_iprop(&mut s, p, 0);
    s
}

/// Renders a sort.
pub fn sort(s0: &Sort) -> String {
    match s0 {
        Sort::Int => "int".to_string(),
        Sort::Bool => "bool".to_string(),
        Sort::Nat => "nat".to_string(),
        Sort::Subset(v, inner, p) => {
            format!("{{{}:{} | {}}}", v.name, sort(inner), iprop(p))
        }
    }
}

/// Renders a pattern.
pub fn pat(p: &Pat) -> String {
    match p {
        Pat::Wild(_) => "_".to_string(),
        Pat::Var(i) => i.name.clone(),
        Pat::Int(n, _) => {
            if *n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
        Pat::Bool(b, _) => b.to_string(),
        Pat::Tuple(ps, _) => {
            let inner: Vec<String> = ps.iter().map(pat).collect();
            format!("({})", inner.join(", "))
        }
        Pat::Con(c, arg, _) => match arg {
            None => c.name.clone(),
            Some(a) if c.name == "::" => match a.as_ref() {
                Pat::Tuple(ps, _) if ps.len() == 2 => {
                    format!("{} :: {}", pat(&ps[0]), pat(&ps[1]))
                }
                other => format!(":: {}", pat(other)),
            },
            Some(a) => format!("{} {}", c.name, pat(a)),
        },
        Pat::Anno(p, t, _) => format!("({} : {})", pat(p), dtype(t)),
    }
}

/// Renders an expression (single line; intended for diagnostics).
pub fn expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

fn quants_str(qs: &[Quant]) -> String {
    let mut parts = Vec::new();
    let mut guard = None;
    for q in qs {
        parts.push(format!("{}:{}", q.var.name, sort(&q.sort)));
        if let Some(g) = &q.guard {
            guard = Some(iprop(g));
        }
    }
    match guard {
        Some(g) => format!("{} | {}", parts.join(", "), g),
        None => parts.join(", "),
    }
}

fn write_dtype(out: &mut String, t: &DType, prec: u8) {
    // prec: 0 = top (arrow), 1 = product, 2 = atom
    match t {
        DType::Var(i) => {
            let _ = write!(out, "'{}", i.name);
        }
        DType::App { name, ty_args, ix_args } => {
            match ty_args.len() {
                0 => {}
                1 => {
                    write_dtype(out, &ty_args[0], 2);
                    out.push(' ');
                }
                _ => {
                    out.push('(');
                    for (k, a) in ty_args.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        write_dtype(out, a, 0);
                    }
                    out.push_str(") ");
                }
            }
            out.push_str(&name.name);
            if !ix_args.is_empty() {
                out.push('(');
                for (k, ix) in ix_args.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    match ix {
                        Index::Int(e) => write_iexpr(out, e, 0),
                        Index::Prop(p) => write_iprop(out, p, 0),
                    }
                }
                out.push(')');
            }
        }
        DType::Product(parts) => {
            if prec > 1 {
                out.push('(');
            }
            for (k, p) in parts.iter().enumerate() {
                if k > 0 {
                    out.push_str(" * ");
                }
                write_dtype(out, p, 2);
            }
            if prec > 1 {
                out.push(')');
            }
        }
        DType::Arrow(a, b) => {
            if prec > 0 {
                out.push('(');
            }
            write_dtype(out, a, 1);
            out.push_str(" -> ");
            write_dtype(out, b, 0);
            if prec > 0 {
                out.push(')');
            }
        }
        DType::Pi(qs, body) => {
            // A quantified type binds loosest; parenthesize in any tighter
            // context (products, postfix application, arrow domains).
            if prec > 0 {
                out.push('(');
            }
            let _ = write!(out, "{{{}}} ", quants_str(qs));
            write_dtype(out, body, 0);
            if prec > 0 {
                out.push(')');
            }
        }
        DType::Sigma(qs, body) => {
            if prec > 0 {
                out.push('(');
            }
            let _ = write!(out, "[{}] ", quants_str(qs));
            write_dtype(out, body, 0);
            if prec > 0 {
                out.push(')');
            }
        }
    }
}

fn write_iexpr(out: &mut String, e: &IExpr, prec: u8) {
    // prec: 0 = additive, 1 = multiplicative, 2 = atom
    match e {
        IExpr::Var(i) => out.push_str(&i.name),
        IExpr::Lit(n, _) => {
            if *n < 0 {
                let _ = write!(out, "~{}", -n);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        IExpr::Add(a, b) | IExpr::Sub(a, b) => {
            if prec > 0 {
                out.push('(');
            }
            write_iexpr(out, a, 0);
            out.push_str(if matches!(e, IExpr::Add(_, _)) { " + " } else { " - " });
            write_iexpr(out, b, 1);
            if prec > 0 {
                out.push(')');
            }
        }
        IExpr::Mul(a, b) | IExpr::Div(a, b) | IExpr::Mod(a, b) => {
            if prec > 1 {
                out.push('(');
            }
            write_iexpr(out, a, 1);
            out.push_str(match e {
                IExpr::Mul(_, _) => " * ",
                IExpr::Div(_, _) => " div ",
                _ => " mod ",
            });
            write_iexpr(out, b, 2);
            if prec > 1 {
                out.push(')');
            }
        }
        IExpr::Min(a, b) | IExpr::Max(a, b) => {
            out.push_str(if matches!(e, IExpr::Min(_, _)) { "min(" } else { "max(" });
            write_iexpr(out, a, 0);
            out.push_str(", ");
            write_iexpr(out, b, 0);
            out.push(')');
        }
        IExpr::Abs(a) => {
            out.push_str("abs(");
            write_iexpr(out, a, 0);
            out.push(')');
        }
        IExpr::Sgn(a) => {
            out.push_str("sgn(");
            write_iexpr(out, a, 0);
            out.push(')');
        }
        IExpr::Neg(a) => {
            out.push('~');
            write_iexpr(out, a, 2);
        }
    }
}

fn write_iprop(out: &mut String, p: &IProp, prec: u8) {
    // prec: 0 = or, 1 = and, 2 = atom
    match p {
        IProp::Var(i) => out.push_str(&i.name),
        IProp::Lit(b, _) => {
            let _ = write!(out, "{b}");
        }
        IProp::Cmp(op, a, b) => {
            write_iexpr(out, a, 0);
            let _ = write!(out, " {op} ");
            write_iexpr(out, b, 0);
        }
        IProp::Not(q) => {
            out.push_str("not ");
            write_iprop(out, q, 2);
        }
        IProp::And(a, b) => {
            if prec > 1 {
                out.push('(');
            }
            write_iprop(out, a, 1);
            out.push_str(" && ");
            write_iprop(out, b, 2);
            if prec > 1 {
                out.push(')');
            }
        }
        IProp::Or(a, b) => {
            if prec > 0 {
                out.push('(');
            }
            write_iprop(out, a, 0);
            out.push_str(" || ");
            write_iprop(out, b, 1);
            if prec > 0 {
                out.push(')');
            }
        }
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Var(i) => out.push_str(&i.name),
        Expr::Int(n, _) => {
            if *n < 0 {
                let _ = write!(out, "~{}", -n);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Bool(b, _) => {
            let _ = write!(out, "{b}");
        }
        Expr::App(f, a, _) => {
            match f.as_ref() {
                Expr::Var(i) => out.push_str(&i.name),
                nested => {
                    out.push('(');
                    write_expr(out, nested);
                    out.push(')');
                }
            }
            match a.as_ref() {
                Expr::Tuple(_, _) => write_expr(out, a),
                simple @ (Expr::Var(_) | Expr::Int(_, _) | Expr::Bool(_, _)) => {
                    out.push(' ');
                    write_expr(out, simple);
                }
                complex => {
                    out.push('(');
                    write_expr(out, complex);
                    out.push(')');
                }
            }
        }
        Expr::Tuple(es, _) => {
            out.push('(');
            for (k, x) in es.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, x);
            }
            out.push(')');
        }
        Expr::If(c, t, f, _) => {
            out.push_str("if ");
            write_expr(out, c);
            out.push_str(" then ");
            write_expr(out, t);
            out.push_str(" else ");
            write_expr(out, f);
        }
        Expr::Case(s, arms, _) => {
            out.push_str("case ");
            write_expr(out, s);
            out.push_str(" of ");
            for (k, (p, b)) in arms.iter().enumerate() {
                if k > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&pat(p));
                out.push_str(" => ");
                write_expr(out, b);
            }
        }
        Expr::Let(_, body, _) => {
            out.push_str("let ... in ");
            write_expr(out, body);
            out.push_str(" end");
        }
        Expr::Fn(arms, _) => {
            out.push_str("fn ");
            for (k, (p, b)) in arms.iter().enumerate() {
                if k > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&pat(p));
                out.push_str(" => ");
                write_expr(out, b);
            }
        }
        Expr::Seq(es, _) => {
            out.push('(');
            for (k, x) in es.iter().enumerate() {
                if k > 0 {
                    out.push_str("; ");
                }
                write_expr(out, x);
            }
            out.push(')');
        }
        Expr::Anno(x, t, _) => {
            out.push('(');
            write_expr(out, x);
            out.push_str(" : ");
            out.push_str(&dtype(t));
            out.push(')');
        }
        Expr::Andalso(a, b, _) => {
            write_expr(out, a);
            out.push_str(" andalso ");
            write_expr(out, b);
        }
        Expr::Orelse(a, b, _) => {
            write_expr(out, a);
            out.push_str(" orelse ");
            write_expr(out, b);
        }
        Expr::Raise(name, _) => {
            out.push_str("raise ");
            out.push_str(&name.name);
        }
        Expr::Handle(body, arms, _) => {
            out.push('(');
            write_expr(out, body);
            out.push_str(" handle ");
            for (k, (name, h)) in arms.iter().enumerate() {
                if k > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&name.name);
                out.push_str(" => ");
                write_expr(out, h);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_dtype, parse_expr};

    /// Types round-trip: parse → print → parse yields the same AST.
    fn roundtrip_ty(src: &str) {
        let t1 = parse_dtype(src).unwrap();
        let printed = dtype(&t1);
        let t2 = parse_dtype(&printed).unwrap_or_else(|e| {
            panic!("re-parse of `{printed}` failed: {e}");
        });
        let p2 = dtype(&t2);
        assert_eq!(printed, p2, "printing must be a fixed point");
    }

    #[test]
    fn roundtrip_simple_types() {
        roundtrip_ty("int");
        roundtrip_ty("int(n)");
        roundtrip_ty("'a array(n)");
        roundtrip_ty("int * int -> int");
        roundtrip_ty("{n:nat} 'a array(n) -> int(n)");
        roundtrip_ty("{n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a");
        roundtrip_ty("[n:nat | n <= m] 'a list(n)");
        roundtrip_ty("int(l + (h - l) div 2)");
        roundtrip_ty("bool(a <= b)");
        roundtrip_ty("int(min(a, b) * 2)");
    }

    #[test]
    fn pretty_expr_smoke() {
        let e = parse_expr("if x = 0 then f(1, 2) else g x").unwrap();
        let s = expr(&e);
        assert!(s.contains("if"), "{s}");
        assert!(s.contains("f(1, 2)"), "{s}");
    }

    #[test]
    fn pretty_cons_pattern() {
        let p = crate::parser::parse_program("fun f(x::xs) = x").unwrap();
        if let crate::ast::Decl::Fun(fs) = &p.decls[0] {
            let s = pat(&fs[0].clauses[0].params[0]);
            assert_eq!(s, "x :: xs");
        } else {
            panic!("expected fun");
        }
    }

    #[test]
    fn pretty_negative_numbers() {
        let e = parse_expr("~3").unwrap();
        assert_eq!(expr(&e), "~3");
    }
}
