//! Surface syntax for the DML fragment of ML used in
//! *Eliminating Array Bound Checking Through Dependent Types*
//! (Xi & Pfenning, PLDI 1998).
//!
//! This crate provides the lexer, recursive-descent parser, surface abstract
//! syntax tree, source spans, diagnostics and a pretty-printer for the
//! language of the paper: core ML (functions, datatypes, pattern matching,
//! tuples, `let`, `if`, `case`) extended with
//!
//! * `assert` declarations giving dependent signatures to primitives,
//! * `typeref` declarations refining datatypes by index sorts,
//! * `where f <| dtype` annotations on function declarations,
//! * dependent types with universal `{a:sort | prop} t` and existential
//!   `[a:sort | prop] t` quantifiers over a linear index language.
//!
//! # Example
//!
//! ```
//! use dml_syntax::parse_program;
//!
//! let src = r#"
//! fun double(x) = x + x
//! where double <| {n:int} int(n) -> int(n+n)
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.decls.len(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::*;
pub use diag::{Diagnostic, ParseError, Severity};
pub use parser::{parse_dtype, parse_expr, parse_program};
pub use span::{line_col, LineCol, Span};
