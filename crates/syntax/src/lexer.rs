//! Hand-rolled lexer for the DML surface language.
//!
//! Comments are SML-style `(* ... *)` and nest. Whitespace is insignificant.

use crate::diag::ParseError;
use crate::span::Span;
use crate::token::Token;

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token itself.
    pub tok: Token,
    /// Where it came from.
    pub span: Span,
}

/// Lexes `src` into a token stream terminated by a single [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated comments, malformed integer
/// literals, or characters outside the language's alphabet.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    out: Vec<Spanned>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, out: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn emit(&mut self, tok: Token, start: usize) {
        self.out.push(Spanned { tok, span: Span::new(start as u32, self.pos as u32) });
    }

    fn error(&self, msg: impl Into<String>, start: usize) -> ParseError {
        ParseError::new(msg.into(), Span::new(start as u32, self.pos.max(start + 1) as u32))
    }

    fn run(mut self) -> Result<Vec<Spanned>, ParseError> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'(' if self.peek2() == Some(b'*') => {
                    self.skip_comment(start)?;
                }
                b'(' => {
                    self.bump();
                    self.emit(Token::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.emit(Token::RParen, start);
                }
                b'[' => {
                    self.bump();
                    self.emit(Token::LBracket, start);
                }
                b']' => {
                    self.bump();
                    self.emit(Token::RBracket, start);
                }
                b'{' => {
                    self.bump();
                    self.emit(Token::LBrace, start);
                }
                b'}' => {
                    self.bump();
                    self.emit(Token::RBrace, start);
                }
                b',' => {
                    self.bump();
                    self.emit(Token::Comma, start);
                }
                b';' => {
                    self.bump();
                    self.emit(Token::Semi, start);
                }
                b'+' => {
                    self.bump();
                    self.emit(Token::Plus, start);
                }
                b'*' => {
                    self.bump();
                    self.emit(Token::Star, start);
                }
                b'/' => {
                    self.bump();
                    self.emit(Token::Slash, start);
                }
                b'~' => {
                    self.bump();
                    self.emit(Token::Tilde, start);
                }
                b'_' => {
                    self.bump();
                    // `_` followed by ident chars is an identifier like `_foo`
                    if self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                        let ident = self.take_ident(start);
                        self.emit(Token::Ident(ident), start);
                    } else {
                        self.emit(Token::Underscore, start);
                    }
                }
                b'!' => {
                    self.bump();
                    self.emit(Token::Bang, start);
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        self.emit(Token::AmpAmp, start);
                    } else {
                        return Err(self.error("expected `&&`", start));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        self.emit(Token::BarBar, start);
                    } else {
                        self.emit(Token::Bar, start);
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        self.emit(Token::Arrow, start);
                    } else {
                        self.emit(Token::Minus, start);
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        self.emit(Token::DArrow, start);
                    } else {
                        self.emit(Token::Eq, start);
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            self.emit(Token::Le, start);
                        }
                        Some(b'>') => {
                            self.bump();
                            self.emit(Token::Neq, start);
                        }
                        Some(b'|') => {
                            self.bump();
                            self.emit(Token::OfType, start);
                        }
                        _ => self.emit(Token::Lt, start),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(Token::Ge, start);
                    } else {
                        self.emit(Token::Gt, start);
                    }
                }
                b':' => {
                    self.bump();
                    match self.peek() {
                        Some(b':') => {
                            self.bump();
                            self.emit(Token::ColonColon, start);
                        }
                        Some(b'=') => {
                            self.bump();
                            self.emit(Token::Assign, start);
                        }
                        _ => self.emit(Token::Colon, start),
                    }
                }
                b'\'' => {
                    self.bump();
                    if !self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                        return Err(self.error("expected type variable after `'`", start));
                    }
                    let name_start = self.pos;
                    let name = self.take_ident(name_start);
                    self.emit(Token::TyVar(name), start);
                }
                b'0'..=b'9' => {
                    let text = self.take_while(start, |c| c.is_ascii_digit());
                    let n: i64 = text.parse().map_err(|_| {
                        self.error(format!("integer literal `{text}` out of range"), start)
                    })?;
                    self.emit(Token::Int(n), start);
                }
                c if c.is_ascii_alphabetic() => {
                    let ident = self.take_ident(start);
                    let tok = Token::keyword(&ident).unwrap_or(Token::Ident(ident));
                    self.emit(tok, start);
                }
                c => {
                    self.bump();
                    return Err(self.error(format!("unexpected character `{}`", c as char), start));
                }
            }
        }
        let end = self.pos as u32;
        self.out.push(Spanned { tok: Token::Eof, span: Span::point(end) });
        Ok(self.out)
    }

    fn take_ident(&mut self, start: usize) -> String {
        self.take_while(start, |c| c.is_ascii_alphanumeric() || c == b'_' || c == b'\'')
    }

    fn take_while(&mut self, start: usize, pred: impl Fn(u8) -> bool) -> String {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
        self.src[start..self.pos].to_string()
    }

    fn skip_comment(&mut self, start: usize) -> Result<(), ParseError> {
        // Consumes `(*`, tracks nesting depth.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match self.peek() {
                None => return Err(self.error("unterminated comment", start)),
                Some(b'(') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some(b'*') if self.peek2() == Some(b')') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lex_simple_fun() {
        assert_eq!(
            toks("fun f(x) = x + 1"),
            vec![
                Token::Fun,
                Token::Ident("f".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::RParen,
                Token::Eq,
                Token::Ident("x".into()),
                Token::Plus,
                Token::Int(1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_of_type_marker() {
        assert_eq!(
            toks("f <| {n:nat} 'a array(n) -> int(n)"),
            vec![
                Token::Ident("f".into()),
                Token::OfType,
                Token::LBrace,
                Token::Ident("n".into()),
                Token::Colon,
                Token::Ident("nat".into()),
                Token::RBrace,
                Token::TyVar("a".into()),
                Token::Ident("array".into()),
                Token::LParen,
                Token::Ident("n".into()),
                Token::RParen,
                Token::Arrow,
                Token::Ident("int".into()),
                Token::LParen,
                Token::Ident("n".into()),
                Token::RParen,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_comparison_cluster() {
        assert_eq!(
            toks("< <= <> <| > >= = =>"),
            vec![
                Token::Lt,
                Token::Le,
                Token::Neq,
                Token::OfType,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::DArrow,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_cons_and_colon() {
        assert_eq!(
            toks("x::xs : t"),
            vec![
                Token::Ident("x".into()),
                Token::ColonColon,
                Token::Ident("xs".into()),
                Token::Colon,
                Token::Ident("t".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_nested_comment() {
        assert_eq!(
            toks("a (* outer (* inner *) still *) b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn lex_tyvar_and_primes() {
        assert_eq!(
            toks("'a x'"),
            vec![Token::TyVar("a".into()), Token::Ident("x'".into()), Token::Eof]
        );
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("a # b").is_err());
        assert!(lex("' 1").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let ts = lex("ab + cd").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(3, 4));
        assert_eq!(ts[2].span, Span::new(5, 7));
    }

    #[test]
    fn underscore_variants() {
        assert_eq!(toks("_ _x"), vec![Token::Underscore, Token::Ident("_x".into()), Token::Eof]);
    }

    #[test]
    fn keywords_are_not_idents() {
        assert_eq!(toks("div mod"), vec![Token::Div, Token::Mod, Token::Eof]);
    }

    #[test]
    fn huge_int_overflow_errors() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
