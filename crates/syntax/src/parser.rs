//! Recursive-descent parser for the DML surface language.
//!
//! Grammar summary (see the paper, §2, for the concrete syntax it mirrors):
//!
//! ```text
//! program  ::= decl*
//! decl     ::= "assert" sig ("and" sig)*
//!            | "datatype" tyvars? name "=" conbind ("|" conbind)*
//!            | "typeref" tyvars? name "of" sorts "with" sig ("|" sig)*
//!            | "fun" funbody ("and" funbody)*
//!            | "val" pat (":" dtype)? "=" expr
//! sig      ::= name "<|" dtype
//! funbody  ::= typarams? ixparams? clauses ("where" name "<|" dtype)?
//! dtype    ::= "{" quants "}" dtype | "[" quants "]" dtype
//!            | product ("->" dtype)?
//! product  ::= postfix ("*" postfix)*
//! postfix  ::= atom (name ixargs?)*
//! ```
//!
//! Operator precedence in expressions, loosest first:
//! `orelse` < `andalso` < comparisons < `::` < `+ -` < `* div mod` <
//! application < atoms.

use crate::ast::*;
use crate::diag::ParseError;
use crate::lexer::{lex, Spanned};
use crate::span::Span;
use crate::token::Token;

/// Parses a complete program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let mut decls = Vec::new();
    while !p.at(&Token::Eof) {
        decls.push(p.decl()?);
    }
    Ok(Program { decls })
}

/// Parses a single expression (useful for tests and the REPL-style CLI).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let e = p.expr()?;
    p.expect(Token::Eof)?;
    Ok(e)
}

/// Parses a dependent type in isolation.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_dtype(src: &str) -> Result<DType, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let t = p.dtype()?;
    p.expect(Token::Eof)?;
    Ok(t)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Spanned {
        let s = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        s
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<Spanned, ParseError> {
        if self.at(&t) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected `{t}`, found {}", self.peek().describe())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError::new(msg, self.span())
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                let s = self.bump();
                Ok(Ident::new(name, s.span))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// A constructor-or-function name: an identifier or the `::` symbol.
    fn con_name(&mut self) -> Result<Ident, ParseError> {
        if self.at(&Token::ColonColon) {
            let s = self.bump();
            Ok(Ident::new("::", s.span))
        } else {
            self.ident()
        }
    }

    /// A signature name in `assert` declarations: an identifier, `::`, or an
    /// operator symbol (the refined standard basis declares `+`, `<=`, ...).
    fn sig_name(&mut self) -> Result<Ident, ParseError> {
        let op = match self.peek() {
            Token::Plus => Some("+"),
            Token::Minus => Some("-"),
            Token::Star => Some("*"),
            Token::Div => Some("div"),
            Token::Mod => Some("mod"),
            Token::Eq => Some("="),
            Token::Neq => Some("<>"),
            Token::Lt => Some("<"),
            Token::Le => Some("<="),
            Token::Gt => Some(">"),
            Token::Ge => Some(">="),
            Token::Not => Some("not"),
            _ => None,
        };
        if let Some(name) = op {
            let s = self.bump();
            Ok(Ident::new(name, s.span))
        } else {
            self.con_name()
        }
    }

    // -----------------------------------------------------------------
    // Declarations.
    // -----------------------------------------------------------------

    fn decl(&mut self) -> Result<Decl, ParseError> {
        match self.peek() {
            Token::Assert => self.assert_decl(),
            Token::Datatype => self.datatype_decl(),
            Token::Typeref => self.typeref_decl(),
            Token::Fun => self.fun_decl(),
            Token::Val => self.val_decl(),
            Token::Exception => {
                self.bump();
                let name = self.ident()?;
                Ok(Decl::Exception(name))
            }
            other => Err(self.err(format!(
                "expected a declaration (`fun`, `val`, `datatype`, `typeref`, `assert`,                  `exception`), found {}",
                other.describe()
            ))),
        }
    }

    fn assert_decl(&mut self) -> Result<Decl, ParseError> {
        self.expect(Token::Assert)?;
        let mut sigs = Vec::new();
        loop {
            let name = self.sig_name()?;
            self.expect(Token::OfType)?;
            let ty = self.dtype()?;
            sigs.push((name, ty));
            if !self.eat(&Token::And) {
                break;
            }
        }
        Ok(Decl::Assert(sigs))
    }

    fn tyvar_seq(&mut self) -> Result<Vec<Ident>, ParseError> {
        // 'a  |  ('a, 'b)  |  nothing
        match self.peek().clone() {
            Token::TyVar(name) => {
                let s = self.bump();
                Ok(vec![Ident::new(name, s.span)])
            }
            Token::LParen if matches!(self.peek_at(1), Token::TyVar(_)) => {
                self.bump();
                let mut vs = Vec::new();
                loop {
                    match self.peek().clone() {
                        Token::TyVar(name) => {
                            let s = self.bump();
                            vs.push(Ident::new(name, s.span));
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected type variable, found {}",
                                other.describe()
                            )))
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(Token::RParen)?;
                Ok(vs)
            }
            _ => Ok(Vec::new()),
        }
    }

    fn datatype_decl(&mut self) -> Result<Decl, ParseError> {
        self.expect(Token::Datatype)?;
        let tyvars = self.tyvar_seq()?;
        let name = self.ident()?;
        self.expect(Token::Eq)?;
        let mut cons = Vec::new();
        loop {
            let cname = self.con_name()?;
            let arg = if self.eat(&Token::Of) { Some(self.dtype()?) } else { None };
            cons.push(ConDecl { name: cname, arg });
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        Ok(Decl::Datatype(DatatypeDecl { tyvars, name, cons }))
    }

    fn typeref_decl(&mut self) -> Result<Decl, ParseError> {
        self.expect(Token::Typeref)?;
        let tyvars = self.tyvar_seq()?;
        let name = self.ident()?;
        self.expect(Token::Of)?;
        let mut sorts = vec![self.sort()?];
        while self.eat(&Token::Star) {
            sorts.push(self.sort()?);
        }
        self.expect(Token::With)?;
        let mut cons = Vec::new();
        loop {
            let cname = self.con_name()?;
            self.expect(Token::OfType)?;
            let ty = self.dtype()?;
            cons.push((cname, ty));
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        Ok(Decl::Typeref(TyperefDecl { tyvars, name, sorts, cons }))
    }

    fn fun_decl(&mut self) -> Result<Decl, ParseError> {
        self.expect(Token::Fun)?;
        let mut funs = vec![self.fun_body()?];
        while self.eat(&Token::And) {
            funs.push(self.fun_body()?);
        }
        Ok(Decl::Fun(funs))
    }

    fn fun_body(&mut self) -> Result<FunDecl, ParseError> {
        // Optional explicit type parameters `('a)` and index parameters
        // `{size:nat}`, as in `fun('a){size:nat} bsearch cmp (key, arr) = ...`.
        let tyvars = if self.at(&Token::LParen) && matches!(self.peek_at(1), Token::TyVar(_)) {
            self.tyvar_seq()?
        } else {
            Vec::new()
        };
        let mut index_params = Vec::new();
        while self.at(&Token::LBrace) {
            self.bump();
            let qs = self.quants()?;
            self.expect(Token::RBrace)?;
            index_params.extend(qs);
        }
        let name = self.ident()?;
        let mut clauses = vec![self.clause_tail()?];
        while self.at(&Token::Bar) {
            // A `|` here starts another clause of the same function.
            self.bump();
            let cname = self.ident()?;
            if cname.name != name.name {
                return Err(ParseError::new(
                    format!(
                        "clause name `{}` does not match function name `{}`",
                        cname.name, name.name
                    ),
                    cname.span,
                ));
            }
            clauses.push(self.clause_tail()?);
        }
        let where_start = self.span().start;
        let (anno, anno_span) = if self.eat(&Token::Where) {
            let aname = self.ident()?;
            if aname.name != name.name {
                return Err(ParseError::new(
                    format!(
                        "`where` annotation names `{}` but the function is `{}`",
                        aname.name, name.name
                    ),
                    aname.span,
                ));
            }
            self.expect(Token::OfType)?;
            let ty = self.dtype()?;
            let span = Span::new(where_start, self.prev_span().end);
            (Some(ty), Some(span))
        } else {
            (None, None)
        };
        Ok(FunDecl { tyvars, index_params, name, clauses, anno, anno_span })
    }

    fn clause_tail(&mut self) -> Result<Clause, ParseError> {
        let mut params = Vec::new();
        while !self.at(&Token::Eq) {
            params.push(self.atomic_pat()?);
        }
        if params.is_empty() {
            return Err(self.err("function clause needs at least one parameter".into()));
        }
        self.expect(Token::Eq)?;
        let body = self.expr()?;
        Ok(Clause { params, body })
    }

    fn val_decl(&mut self) -> Result<Decl, ParseError> {
        let start = self.span();
        self.expect(Token::Val)?;
        let mut pat = self.pat()?;
        // `val x : t = e` — the pattern parser already folded the ascription
        // into an annotated pattern; lift it into the declaration.
        let mut anno = None;
        if let Pat::Anno(inner, t, _) = pat {
            pat = *inner;
            anno = Some(t);
        }
        if anno.is_none() && self.eat(&Token::Colon) {
            anno = Some(self.dtype()?);
        }
        self.expect(Token::Eq)?;
        let expr = self.expr()?;
        let span = start.merge(expr.span());
        Ok(Decl::Val(ValDecl { pat, anno, expr, span }))
    }

    // -----------------------------------------------------------------
    // Expressions.
    // -----------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.at(&Token::Raise) {
            let start = self.bump().span;
            let name = self.ident()?;
            let span = start.merge(name.span);
            return Ok(Expr::Raise(name, span));
        }
        let mut e = self.expr_orelse()?;
        if self.eat(&Token::Colon) {
            let t = self.dtype()?;
            let span = e.span().merge(self.prev_span());
            e = Expr::Anno(Box::new(e), t, span);
        }
        while self.eat(&Token::Handle) {
            let mut arms = Vec::new();
            loop {
                let name = self.ident()?;
                self.expect(Token::DArrow)?;
                let body = self.expr()?;
                arms.push((name, body));
                if !self.eat(&Token::Bar) {
                    break;
                }
            }
            let span = e.span().merge(self.prev_span());
            e = Expr::Handle(Box::new(e), arms, span);
        }
        Ok(e)
    }

    fn expr_orelse(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_andalso()?;
        while self.eat(&Token::Orelse) {
            let rhs = self.expr_andalso()?;
            let span = e.span().merge(rhs.span());
            e = Expr::Orelse(Box::new(e), Box::new(rhs), span);
        }
        Ok(e)
    }

    fn expr_andalso(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_cmp()?;
        while self.eat(&Token::Andalso) {
            let rhs = self.expr_cmp()?;
            let span = e.span().merge(rhs.span());
            e = Expr::Andalso(Box::new(e), Box::new(rhs), span);
        }
        Ok(e)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_cons()?;
        let op = match self.peek() {
            Token::Eq => "=",
            Token::Neq => "<>",
            Token::Lt => "<",
            Token::Le => "<=",
            Token::Gt => ">",
            Token::Ge => ">=",
            _ => return Ok(e),
        };
        self.bump();
        let rhs = self.expr_cons()?;
        let span = e.span().merge(rhs.span());
        Ok(Expr::call(op, vec![e, rhs], span))
    }

    fn expr_cons(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_add()?;
        if self.at(&Token::ColonColon) {
            let s = self.bump().span;
            let rhs = self.expr_cons()?;
            let span = e.span().merge(rhs.span());
            let arg = Expr::Tuple(vec![e, rhs], span);
            Ok(Expr::App(Box::new(Expr::Var(Ident::new("::", s))), Box::new(arg), span))
        } else {
            Ok(e)
        }
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => "+",
                Token::Minus => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.expr_mul()?;
            let span = e.span().merge(rhs.span());
            e = Expr::call(op, vec![e, rhs], span);
        }
        Ok(e)
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_app()?;
        loop {
            let op = match self.peek() {
                Token::Star => "*",
                Token::Div => "div",
                Token::Mod => "mod",
                Token::Slash => {
                    return Err(
                        self.err("`/` is real division; use `div` for integer division".into())
                    )
                }
                _ => break,
            };
            self.bump();
            let rhs = self.expr_app()?;
            let span = e.span().merge(rhs.span());
            e = Expr::call(op, vec![e, rhs], span);
        }
        Ok(e)
    }

    fn expr_app(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_atom()?;
        while self.starts_atom() {
            let arg = self.expr_atom()?;
            let span = e.span().merge(arg.span());
            e = Expr::App(Box::new(e), Box::new(arg), span);
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Token::Ident(_)
                | Token::Int(_)
                | Token::True
                | Token::False
                | Token::LParen
                | Token::Tilde
                | Token::Not
                | Token::If
                | Token::Case
                | Token::Let
                | Token::Fn
        )
    }

    fn expr_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                let s = self.bump();
                Ok(Expr::Var(Ident::new(name, s.span)))
            }
            Token::Int(n) => {
                let s = self.bump();
                Ok(Expr::Int(n, s.span))
            }
            Token::True => {
                let s = self.bump();
                Ok(Expr::Bool(true, s.span))
            }
            Token::False => {
                let s = self.bump();
                Ok(Expr::Bool(false, s.span))
            }
            Token::Tilde => {
                let s = self.bump();
                let e = self.expr_atom()?;
                match e {
                    Expr::Int(n, sp) => Ok(Expr::Int(-n, s.span.merge(sp))),
                    other => {
                        let span = s.span.merge(other.span());
                        Ok(Expr::call("neg", vec![other], span))
                    }
                }
            }
            Token::Not => {
                let s = self.bump();
                let e = self.expr_atom()?;
                let span = s.span.merge(e.span());
                Ok(Expr::call("not", vec![e], span))
            }
            Token::If => self.if_expr(),
            Token::Case => self.case_expr(),
            Token::Let => self.let_expr(),
            Token::Fn => self.fn_expr(),
            Token::LParen => self.paren_expr(),
            other => Err(self.err(format!("expected an expression, found {}", other.describe()))),
        }
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(Token::If)?;
        let c = self.expr()?;
        self.expect(Token::Then)?;
        let t = self.expr()?;
        self.expect(Token::Else)?;
        let f = self.expr()?;
        let span = start.merge(f.span());
        Ok(Expr::If(Box::new(c), Box::new(t), Box::new(f), span))
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(Token::Case)?;
        let scrut = self.expr()?;
        self.expect(Token::Of)?;
        let mut arms = Vec::new();
        loop {
            let p = self.pat()?;
            self.expect(Token::DArrow)?;
            let body = self.expr()?;
            arms.push((p, body));
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        let span = start.merge(self.prev_span());
        Ok(Expr::Case(Box::new(scrut), arms, span))
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(Token::Let)?;
        let mut decls = Vec::new();
        while !self.at(&Token::In) {
            decls.push(self.decl()?);
        }
        self.expect(Token::In)?;
        let mut body = self.expr()?;
        // `let d in e1; e2 end` — sequence in the body.
        if self.at(&Token::Semi) {
            let mut es = vec![body];
            while self.eat(&Token::Semi) {
                es.push(self.expr()?);
            }
            let span = es[0].span().merge(es[es.len() - 1].span());
            body = Expr::Seq(es, span);
        }
        let end = self.expect(Token::End)?;
        let span = start.merge(end.span);
        Ok(Expr::Let(decls, Box::new(body), span))
    }

    fn fn_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(Token::Fn)?;
        let mut arms = Vec::new();
        loop {
            let p = self.pat()?;
            self.expect(Token::DArrow)?;
            let body = self.expr()?;
            arms.push((p, body));
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        let span = start.merge(self.prev_span());
        Ok(Expr::Fn(arms, span))
    }

    fn paren_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(Token::LParen)?;
        if self.at(&Token::RParen) {
            let end = self.bump().span;
            return Ok(Expr::unit(start.merge(end)));
        }
        let first = self.expr()?;
        if self.at(&Token::Comma) {
            let mut es = vec![first];
            while self.eat(&Token::Comma) {
                es.push(self.expr()?);
            }
            let end = self.expect(Token::RParen)?.span;
            Ok(Expr::Tuple(es, start.merge(end)))
        } else if self.at(&Token::Semi) {
            let mut es = vec![first];
            while self.eat(&Token::Semi) {
                es.push(self.expr()?);
            }
            let end = self.expect(Token::RParen)?.span;
            Ok(Expr::Seq(es, start.merge(end)))
        } else {
            self.expect(Token::RParen)?;
            Ok(first)
        }
    }

    // -----------------------------------------------------------------
    // Patterns.
    // -----------------------------------------------------------------

    fn pat(&mut self) -> Result<Pat, ParseError> {
        let p = self.app_pat()?;
        if self.at(&Token::ColonColon) {
            let s = self.bump().span;
            let rest = self.pat()?;
            let span = p.span().merge(rest.span());
            let arg = Pat::Tuple(vec![p, rest], span);
            Ok(Pat::Con(Ident::new("::", s), Some(Box::new(arg)), span))
        } else if self.at(&Token::Colon) {
            self.bump();
            let t = self.dtype()?;
            let span = p.span().merge(self.prev_span());
            Ok(Pat::Anno(Box::new(p), t, span))
        } else {
            Ok(p)
        }
    }

    fn app_pat(&mut self) -> Result<Pat, ParseError> {
        // `C atpat` — constructor application; otherwise an atomic pattern.
        if let Token::Ident(name) = self.peek().clone() {
            if self.starts_atomic_pat_at(1) {
                let s = self.bump().span;
                let arg = self.atomic_pat()?;
                let span = s.merge(arg.span());
                return Ok(Pat::Con(Ident::new(name, s), Some(Box::new(arg)), span));
            }
        }
        self.atomic_pat()
    }

    fn starts_atomic_pat_at(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            Token::Ident(_)
                | Token::Int(_)
                | Token::True
                | Token::False
                | Token::LParen
                | Token::Underscore
                | Token::Tilde
        )
    }

    fn atomic_pat(&mut self) -> Result<Pat, ParseError> {
        match self.peek().clone() {
            Token::Underscore => {
                let s = self.bump();
                Ok(Pat::Wild(s.span))
            }
            Token::Ident(name) => {
                let s = self.bump();
                Ok(Pat::Var(Ident::new(name, s.span)))
            }
            Token::Int(n) => {
                let s = self.bump();
                Ok(Pat::Int(n, s.span))
            }
            Token::Tilde => {
                let s = self.bump();
                match self.peek().clone() {
                    Token::Int(n) => {
                        let e = self.bump();
                        Ok(Pat::Int(-n, s.span.merge(e.span)))
                    }
                    other => Err(self.err(format!(
                        "expected integer literal after `~` in pattern, found {}",
                        other.describe()
                    ))),
                }
            }
            Token::True => {
                let s = self.bump();
                Ok(Pat::Bool(true, s.span))
            }
            Token::False => {
                let s = self.bump();
                Ok(Pat::Bool(false, s.span))
            }
            Token::LParen => {
                let start = self.bump().span;
                if self.at(&Token::RParen) {
                    let end = self.bump().span;
                    return Ok(Pat::Tuple(Vec::new(), start.merge(end)));
                }
                let first = self.pat()?;
                if self.at(&Token::Comma) {
                    let mut ps = vec![first];
                    while self.eat(&Token::Comma) {
                        ps.push(self.pat()?);
                    }
                    let end = self.expect(Token::RParen)?.span;
                    Ok(Pat::Tuple(ps, start.merge(end)))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            other => Err(self.err(format!("expected a pattern, found {}", other.describe()))),
        }
    }

    // -----------------------------------------------------------------
    // Dependent types.
    // -----------------------------------------------------------------

    fn dtype(&mut self) -> Result<DType, ParseError> {
        match self.peek() {
            Token::LBrace => {
                self.bump();
                let qs = self.quants()?;
                self.expect(Token::RBrace)?;
                let body = self.dtype()?;
                Ok(DType::Pi(qs, Box::new(body)))
            }
            Token::LBracket => {
                self.bump();
                let qs = self.quants()?;
                self.expect(Token::RBracket)?;
                let body = self.dtype()?;
                Ok(DType::Sigma(qs, Box::new(body)))
            }
            _ => {
                let lhs = self.dtype_product()?;
                if self.eat(&Token::Arrow) {
                    let rhs = self.dtype()?;
                    Ok(DType::Arrow(Box::new(lhs), Box::new(rhs)))
                } else {
                    Ok(lhs)
                }
            }
        }
    }

    fn dtype_product(&mut self) -> Result<DType, ParseError> {
        let first = self.dtype_postfix()?;
        if !self.at(&Token::Star) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&Token::Star) {
            parts.push(self.dtype_postfix()?);
        }
        Ok(DType::Product(parts))
    }

    fn dtype_postfix(&mut self) -> Result<DType, ParseError> {
        // Parse an atom, then fold postfix constructor applications:
        // `'a array(n)`, `int list`, `(int, bool) pair(k)`.
        let mut parts: Vec<DType> = Vec::new();
        let mut t = self.dtype_atom(&mut parts)?;
        while let Token::Ident(name) = self.peek().clone() {
            let s = self.bump().span;
            let ix_args = self.index_args()?;
            let ty_args = match t {
                Some(inner) => vec![inner],
                None => std::mem::take(&mut parts),
            };
            t = Some(DType::App { name: Ident::new(name, s), ty_args, ix_args });
        }
        match t {
            Some(ty) => Ok(ty),
            None => {
                // `(t1, t2)` with no following constructor is an error; a
                // single `(t)` parse returns Some.
                Err(self.err("expected a type constructor after `(ty, ty)`".into()))
            }
        }
    }

    /// Parses an atomic type. If it is a parenthesized *list* of types
    /// destined for a constructor (e.g. `('a, 'b) pair`), stores the parts in
    /// `pending` and returns `None`.
    fn dtype_atom(&mut self, pending: &mut Vec<DType>) -> Result<Option<DType>, ParseError> {
        match self.peek().clone() {
            Token::TyVar(name) => {
                let s = self.bump();
                Ok(Some(DType::Var(Ident::new(name, s.span))))
            }
            Token::Ident(name) => {
                let s = self.bump().span;
                let ix_args = self.index_args()?;
                Ok(Some(DType::App { name: Ident::new(name, s), ty_args: Vec::new(), ix_args }))
            }
            Token::LParen => {
                self.bump();
                let first = self.dtype()?;
                if self.at(&Token::Comma) {
                    let mut ts = vec![first];
                    while self.eat(&Token::Comma) {
                        ts.push(self.dtype()?);
                    }
                    self.expect(Token::RParen)?;
                    *pending = ts;
                    Ok(None)
                } else {
                    self.expect(Token::RParen)?;
                    Ok(Some(first))
                }
            }
            other => Err(self.err(format!("expected a type, found {}", other.describe()))),
        }
    }

    fn index_args(&mut self) -> Result<Vec<Index>, ParseError> {
        if !self.at(&Token::LParen) {
            return Ok(Vec::new());
        }
        self.bump();
        let mut args = Vec::new();
        loop {
            args.push(self.index()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Ok(args)
    }

    /// Parses an index argument: a boolean proposition if it syntactically
    /// must be one (literal, comparison, connective), otherwise an integer
    /// expression. A bare variable parses as an integer expression; sort
    /// checking may later reinterpret it as boolean.
    fn index(&mut self) -> Result<Index, ParseError> {
        if matches!(self.peek(), Token::True | Token::False | Token::Not) {
            return Ok(Index::Prop(self.iprop()?));
        }
        let e = self.iexpr()?;
        if self.peek_is_cmp() || self.at(&Token::AmpAmp) || self.at(&Token::BarBar) {
            let p = self.iprop_continue(e)?;
            Ok(Index::Prop(p))
        } else {
            Ok(Index::Int(e))
        }
    }

    fn peek_is_cmp(&self) -> bool {
        matches!(
            self.peek(),
            Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Neq
        )
    }

    // -----------------------------------------------------------------
    // Sorts and quantifiers.
    // -----------------------------------------------------------------

    fn sort(&mut self) -> Result<Sort, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                let s = self.bump();
                match name.as_str() {
                    "int" => Ok(Sort::Int),
                    "bool" => Ok(Sort::Bool),
                    "nat" => Ok(Sort::Nat),
                    other => Err(ParseError::new(
                        format!("unknown sort `{other}` (expected `int`, `bool`, or `nat`)"),
                        s.span,
                    )),
                }
            }
            Token::LBrace => {
                self.bump();
                let var = self.ident()?;
                self.expect(Token::Colon)?;
                let inner = self.sort()?;
                self.expect(Token::Bar)?;
                let p = self.iprop()?;
                self.expect(Token::RBrace)?;
                Ok(Sort::Subset(var, Box::new(inner), Box::new(p)))
            }
            other => Err(self.err(format!("expected a sort, found {}", other.describe()))),
        }
    }

    fn quants(&mut self) -> Result<Vec<Quant>, ParseError> {
        let mut out = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect(Token::Colon)?;
            let sort = self.sort()?;
            out.push(Quant { var, sort, guard: None });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        if self.eat(&Token::Bar) {
            let guard = self.iprop()?;
            // The guard scopes over the whole group; attach to the last
            // quantifier (all earlier variables are in scope there).
            if let Some(last) = out.last_mut() {
                last.guard = Some(guard);
            }
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Index expressions and propositions.
    // -----------------------------------------------------------------

    fn iexpr(&mut self) -> Result<IExpr, ParseError> {
        let mut e = self.imul()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.bump();
                    let rhs = self.imul()?;
                    e = IExpr::Add(Box::new(e), Box::new(rhs));
                }
                Token::Minus => {
                    self.bump();
                    let rhs = self.imul()?;
                    e = IExpr::Sub(Box::new(e), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn imul(&mut self) -> Result<IExpr, ParseError> {
        let mut e = self.iunary()?;
        loop {
            match self.peek() {
                Token::Star => {
                    self.bump();
                    let rhs = self.iunary()?;
                    e = IExpr::Mul(Box::new(e), Box::new(rhs));
                }
                Token::Div => {
                    self.bump();
                    let rhs = self.iunary()?;
                    e = IExpr::Div(Box::new(e), Box::new(rhs));
                }
                Token::Mod => {
                    self.bump();
                    let rhs = self.iunary()?;
                    e = IExpr::Mod(Box::new(e), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn iunary(&mut self) -> Result<IExpr, ParseError> {
        match self.peek() {
            Token::Tilde | Token::Minus => {
                self.bump();
                let e = self.iunary()?;
                Ok(IExpr::Neg(Box::new(e)))
            }
            _ => self.iatom(),
        }
    }

    fn iatom(&mut self) -> Result<IExpr, ParseError> {
        match self.peek().clone() {
            Token::Int(n) => {
                let s = self.bump();
                Ok(IExpr::Lit(n, s.span))
            }
            Token::Ident(name) => {
                let s = self.bump();
                // Function-style forms: min(i,j), max(i,j), abs(i), sgn(i),
                // div(i,j), mod(i,j).
                if self.at(&Token::LParen)
                    && matches!(name.as_str(), "min" | "max" | "abs" | "sgn" | "div" | "mod")
                {
                    self.bump();
                    let a = self.iexpr()?;
                    let result = match name.as_str() {
                        "abs" | "sgn" => {
                            if name == "abs" {
                                IExpr::Abs(Box::new(a))
                            } else {
                                IExpr::Sgn(Box::new(a))
                            }
                        }
                        two_arg => {
                            self.expect(Token::Comma)?;
                            let b = self.iexpr()?;
                            match two_arg {
                                "min" => IExpr::Min(Box::new(a), Box::new(b)),
                                "max" => IExpr::Max(Box::new(a), Box::new(b)),
                                "div" => IExpr::Div(Box::new(a), Box::new(b)),
                                "mod" => IExpr::Mod(Box::new(a), Box::new(b)),
                                _ => unreachable!("matched above"),
                            }
                        }
                    };
                    self.expect(Token::RParen)?;
                    Ok(result)
                } else {
                    Ok(IExpr::Var(Ident::new(name, s.span)))
                }
            }
            Token::LParen => {
                self.bump();
                let e = self.iexpr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            other => {
                Err(self.err(format!("expected an index expression, found {}", other.describe())))
            }
        }
    }

    fn iprop(&mut self) -> Result<IProp, ParseError> {
        let mut p = self.iand()?;
        while self.eat(&Token::BarBar) {
            let rhs = self.iand()?;
            p = IProp::Or(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn iand(&mut self) -> Result<IProp, ParseError> {
        let mut p = self.inot()?;
        while self.eat(&Token::AmpAmp) {
            let rhs = self.inot()?;
            p = IProp::And(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn inot(&mut self) -> Result<IProp, ParseError> {
        match self.peek().clone() {
            Token::Not => {
                self.bump();
                let p = self.inot()?;
                Ok(IProp::Not(Box::new(p)))
            }
            Token::True => {
                let s = self.bump();
                Ok(IProp::Lit(true, s.span))
            }
            Token::False => {
                let s = self.bump();
                Ok(IProp::Lit(false, s.span))
            }
            Token::LParen => {
                // Ambiguous: `(p || q)` is a parenthesized proposition,
                // `(a + b) < c` a parenthesized integer operand. Try the
                // proposition reading with backtracking; accept it only
                // when the closing paren is not followed by an operator
                // that would make the parens an integer operand.
                let save = self.pos;
                self.bump();
                if let Ok(p) = self.iprop() {
                    if self.eat(&Token::RParen)
                        && !self.peek_is_cmp()
                        && !matches!(
                            self.peek(),
                            Token::Plus | Token::Minus | Token::Star | Token::Div | Token::Mod
                        )
                    {
                        return Ok(p);
                    }
                }
                self.pos = save;
                let e = self.iexpr()?;
                self.iprop_continue(e)
            }
            _ => {
                let e = self.iexpr()?;
                self.iprop_continue(e)
            }
        }
    }

    /// Continues a proposition whose first integer operand is already
    /// parsed. Supports chained comparisons: `0 <= i < n` becomes
    /// `0 <= i && i < n`.
    fn iprop_continue(&mut self, first: IExpr) -> Result<IProp, ParseError> {
        if !self.peek_is_cmp() {
            // A bare variable can be a boolean index variable.
            if let IExpr::Var(v) = first {
                let mut p = IProp::Var(v);
                // allow `b && ...` chains after bare var
                while self.eat(&Token::AmpAmp) {
                    let rhs = self.inot()?;
                    p = IProp::And(Box::new(p), Box::new(rhs));
                }
                return Ok(p);
            }
            return Err(self
                .err(format!("expected a comparison operator, found {}", self.peek().describe())));
        }
        let mut lhs = first;
        let mut props: Vec<IProp> = Vec::new();
        while self.peek_is_cmp() {
            let op = match self.peek() {
                Token::Lt => CmpOp::Lt,
                Token::Le => CmpOp::Le,
                Token::Gt => CmpOp::Gt,
                Token::Ge => CmpOp::Ge,
                Token::Eq => CmpOp::Eq,
                Token::Neq => CmpOp::Neq,
                _ => unreachable!("peek_is_cmp"),
            };
            self.bump();
            let rhs = self.iexpr()?;
            props.push(IProp::Cmp(op, Box::new(lhs.clone()), Box::new(rhs.clone())));
            lhs = rhs;
        }
        let mut it = props.into_iter();
        let mut p = it.next().expect("at least one comparison");
        for q in it {
            p = IProp::And(Box::new(p), Box::new(q));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_fun() {
        let p = parse_program("fun id(x) = x").unwrap();
        assert_eq!(p.decls.len(), 1);
        match &p.decls[0] {
            Decl::Fun(fs) => {
                assert_eq!(fs.len(), 1);
                assert_eq!(fs[0].name.name, "id");
                assert_eq!(fs[0].clauses.len(), 1);
                assert_eq!(fs[0].clauses[0].params.len(), 1);
            }
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_where_annotation() {
        let src = "fun double(x) = x + x where double <| {n:int} int(n) -> int(n+n)";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Fun(fs) => {
                let anno = fs[0].anno.as_ref().expect("where annotation");
                assert!(matches!(anno, DType::Pi(_, _)));
            }
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_where_wrong_name_errors() {
        let src = "fun f(x) = x where g <| int -> int";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parse_multi_clause_fun() {
        let src = "fun rev(ns, ys) = ys | rev(xs, ys) = ys";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Fun(fs) => assert_eq!(fs[0].clauses.len(), 2),
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_cons_pattern_clause() {
        let src = "fun rev(nil, ys) = ys | rev(x::xs, ys) = rev(xs, x::ys)";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Fun(fs) => {
                let second = &fs[0].clauses[1].params[0];
                match second {
                    Pat::Tuple(ps, _) => {
                        assert!(matches!(&ps[0], Pat::Con(c, Some(_), _) if c.name == "::"));
                    }
                    other => panic!("expected tuple pattern, got {other:?}"),
                }
            }
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_assert_decl() {
        let src = "assert length <| {n:nat} 'a array(n) -> int(n) \
                   and sub <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Assert(sigs) => {
                assert_eq!(sigs.len(), 2);
                assert_eq!(sigs[0].0.name, "length");
                assert_eq!(sigs[1].0.name, "sub");
            }
            other => panic!("expected Assert, got {other:?}"),
        }
    }

    #[test]
    fn parse_typeref_list() {
        let src = "typeref 'a list of nat with nil <| 'a list(0) \
                   | :: <| {n:nat} 'a * 'a list(n) -> 'a list(n+1)";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Typeref(t) => {
                assert_eq!(t.name.name, "list");
                assert_eq!(t.cons.len(), 2);
                assert_eq!(t.cons[1].0.name, "::");
            }
            other => panic!("expected Typeref, got {other:?}"),
        }
    }

    #[test]
    fn parse_datatype() {
        let src = "datatype 'a option = NONE | SOME of 'a";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Datatype(d) => {
                assert_eq!(d.cons.len(), 2);
                assert!(d.cons[0].arg.is_none());
                assert!(d.cons[1].arg.is_some());
            }
            other => panic!("expected Datatype, got {other:?}"),
        }
    }

    #[test]
    fn parse_dotprod_figure1() {
        let src = r#"
assert length <| {n:nat} 'a array(n) -> int(n)
and sub <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a

fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 2);
    }

    #[test]
    fn parse_bsearch_figure3() {
        let src = r#"
fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let val m = lo + (hi - lo) div 2
          val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => SOME(m, x)
        | GREATER => look(m+1, hi)
      end
    else NONE
  where look <| {l:nat | 0 <= l && l <= size} {h:int | 0 <= h+1 && h+1 <= size}
                int(l) * int(h) -> 'a answer
in
  look (0, length arr - 1)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> 'a answer
"#;
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Fun(fs) => {
                assert_eq!(fs[0].tyvars.len(), 1);
                assert_eq!(fs[0].index_params.len(), 1);
                assert_eq!(fs[0].clauses[0].params.len(), 2, "cmp and (key, arr)");
            }
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_existential_type() {
        let t = parse_dtype("[n:nat | n <= m] 'a list(n)").unwrap();
        match t {
            DType::Sigma(qs, body) => {
                assert_eq!(qs.len(), 1);
                assert!(qs[0].guard.is_some());
                assert!(matches!(*body, DType::App { .. }));
            }
            other => panic!("expected Sigma, got {other:?}"),
        }
    }

    #[test]
    fn parse_chained_comparison_guard() {
        let t =
            parse_dtype("{size:int, i:int | 0 <= i < size} 'a array(size) * int(i) -> 'a").unwrap();
        match t {
            DType::Pi(qs, _) => {
                assert_eq!(qs.len(), 2);
                let guard = qs[1].guard.as_ref().expect("guard");
                assert!(matches!(guard, IProp::And(_, _)));
            }
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn parse_product_and_arrow_associativity() {
        let t = parse_dtype("int * int -> int -> int").unwrap();
        // (int * int) -> (int -> int)
        match t {
            DType::Arrow(lhs, rhs) => {
                assert!(matches!(*lhs, DType::Product(ref ps) if ps.len() == 2));
                assert!(matches!(*rhs, DType::Arrow(_, _)));
            }
            other => panic!("expected Arrow, got {other:?}"),
        }
    }

    #[test]
    fn parse_postfix_type_application() {
        let t = parse_dtype("int array(p)").unwrap();
        match t {
            DType::App { name, ty_args, ix_args } => {
                assert_eq!(name.name, "array");
                assert_eq!(ty_args.len(), 1);
                assert_eq!(ix_args.len(), 1);
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_multi_tyarg_application() {
        let t = parse_dtype("(int, bool) pair").unwrap();
        match t {
            DType::App { name, ty_args, .. } => {
                assert_eq!(name.name, "pair");
                assert_eq!(ty_args.len(), 2);
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_index_expressions() {
        let t = parse_dtype("int(min(a, b) + max(a, b) * 2 - abs(c))").unwrap();
        match t {
            DType::App { ix_args, .. } => {
                assert_eq!(ix_args.len(), 1);
                assert!(matches!(ix_args[0], Index::Int(IExpr::Sub(_, _))));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_div_in_index() {
        let t = parse_dtype("int(l + (h - l) div 2)").unwrap();
        match t {
            DType::App { ix_args, .. } => {
                assert!(matches!(ix_args[0], Index::Int(IExpr::Add(_, _))));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_bool_singleton() {
        let t = parse_dtype("bool(a <= b)").unwrap();
        match t {
            DType::App { name, ix_args, .. } => {
                assert_eq!(name.name, "bool");
                assert!(matches!(ix_args[0], Index::Prop(_)));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_if_and_case() {
        let e = parse_expr("if x = 0 then 1 else case y of SOME z => z | NONE => 0").unwrap();
        assert!(matches!(e, Expr::If(_, _, _, _)));
    }

    #[test]
    fn parse_let_with_seq_body() {
        let e = parse_expr("let val x = 1 in f x; g x end").unwrap();
        match e {
            Expr::Let(decls, body, _) => {
                assert_eq!(decls.len(), 1);
                assert!(matches!(*body, Expr::Seq(ref es, _) if es.len() == 2));
            }
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn parse_operator_precedence() {
        // 1 + 2 * 3 = 7  parses as  (=) ((+) 1 ((*) 2 3)) 7
        let e = parse_expr("1 + 2 * 3 = 7").unwrap();
        match e {
            Expr::App(f, _, _) => {
                assert!(matches!(*f, Expr::Var(ref i) if i.name == "="));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_cons_right_assoc() {
        let e = parse_expr("1 :: 2 :: nil").unwrap();
        // :: (1, :: (2, nil))
        match e {
            Expr::App(f, arg, _) => {
                assert!(matches!(*f, Expr::Var(ref i) if i.name == "::"));
                match *arg {
                    Expr::Tuple(ref es, _) => {
                        assert!(matches!(es[0], Expr::Int(1, _)));
                        assert!(matches!(es[1], Expr::App(_, _, _)));
                    }
                    ref other => panic!("expected tuple, got {other:?}"),
                }
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn parse_negative_literals() {
        let e = parse_expr("~1").unwrap();
        assert!(matches!(e, Expr::Int(-1, _)));
        let e = parse_expr("f(~1, 1)").unwrap();
        assert!(matches!(e, Expr::App(_, _, _)));
    }

    #[test]
    fn parse_andalso_orelse() {
        let e = parse_expr("a andalso b orelse c").unwrap();
        assert!(matches!(e, Expr::Orelse(_, _, _)));
    }

    #[test]
    fn parse_unit_and_tuple() {
        assert!(matches!(parse_expr("()").unwrap(), Expr::Tuple(ref es, _) if es.is_empty()));
        assert!(
            matches!(parse_expr("(1, 2, 3)").unwrap(), Expr::Tuple(ref es, _) if es.len() == 3)
        );
    }

    #[test]
    fn parse_fn_expr() {
        let e = parse_expr("fn x => x + 1").unwrap();
        assert!(matches!(e, Expr::Fn(ref arms, _) if arms.len() == 1));
    }

    #[test]
    fn parse_val_with_annotation() {
        let p = parse_program("val x : int = 3").unwrap();
        match &p.decls[0] {
            Decl::Val(v) => assert!(v.anno.is_some()),
            other => panic!("expected Val, got {other:?}"),
        }
    }

    #[test]
    fn parse_mutual_recursion() {
        let src = "fun even(n) = if n = 0 then true else odd(n - 1) \
                   and odd(n) = if n = 0 then false else even(n - 1)";
        let p = parse_program(src).unwrap();
        match &p.decls[0] {
            Decl::Fun(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn parse_subset_sort() {
        let t = parse_dtype("{i: {a:int | a >= 0} | i < n} int(i) -> int").unwrap();
        match t {
            DType::Pi(qs, _) => {
                assert!(matches!(qs[0].sort, Sort::Subset(_, _, _)));
            }
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn error_on_unknown_sort() {
        assert!(parse_dtype("{n:real} int").is_err());
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("fun = 3").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_dtype("->").is_err());
    }

    #[test]
    fn parse_seq_in_parens() {
        let e = parse_expr("(update(a, 0, x); loop(i+1))").unwrap();
        assert!(matches!(e, Expr::Seq(ref es, _) if es.len() == 2));
    }

    #[test]
    fn parse_annotation_expr() {
        let e = parse_expr("(x : int(3))").unwrap();
        assert!(matches!(e, Expr::Anno(_, _, _)));
    }

    #[test]
    fn parse_comments_ignored() {
        let p = parse_program("(* header *) fun f(x) = x (* trailing *)").unwrap();
        assert_eq!(p.decls.len(), 1);
    }
}
