//! Diagnostics: parse errors with spans and rendered source snippets.

use crate::span::{line_col, Span};
use std::error::Error;
use std::fmt;

/// A parse (or lex) error with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates an error with a message and the span it refers to.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// The error message, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The span the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error against its source text with a caret snippet.
    pub fn render(&self, src: &str) -> String {
        Diagnostic::error(self.message.clone(), self.span).render(src)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error; the pipeline stops.
    Error,
    /// A warning; the pipeline continues.
    Warning,
    /// Informational note (e.g. which constraints were kept as checked).
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A diagnostic message tied to a source span, renderable as a snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the diagnostic is.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. a lint code like `DML001`), if
    /// the producer assigns one.
    pub code: Option<String>,
    /// The main message.
    pub message: String,
    /// The primary span.
    pub span: Span,
    /// Optional extra notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    fn new(severity: Severity, message: impl Into<String>, span: Span) -> Self {
        Diagnostic { severity, code: None, message: message.into(), span, notes: Vec::new() }
    }

    /// An error-severity diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic::new(Severity::Error, message, span)
    }

    /// A warning-severity diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic::new(Severity::Warning, message, span)
    }

    /// A note-severity diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic::new(Severity::Note, message, span)
    }

    /// Attaches a stable code; rendered as `severity[CODE]: ...`.
    pub fn with_code(mut self, code: impl Into<String>) -> Self {
        self.code = Some(code.into());
        self
    }

    /// Appends an auxiliary note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic against `src` with a single-line caret snippet.
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        let code = self.code.as_ref().map(|c| format!("[{c}]")).unwrap_or_default();
        let mut out = format!("{}{}: {} (at {})\n", self.severity, code, self.message, lc);
        // Find the line containing the span start.
        let line_start = src[..(self.span.start as usize).min(src.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let line_end = src[line_start..].find('\n').map(|i| line_start + i).unwrap_or(src.len());
        let line = &src[line_start..line_end];
        out.push_str(&format!("  | {line}\n"));
        let col = (self.span.start as usize).saturating_sub(line_start);
        let width = ((self.span.len() as usize).max(1)).min(line.len().saturating_sub(col).max(1));
        out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(width)));
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (at {})", self.severity, self.message, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "fun f(x = x";
        let d = Diagnostic::error("expected `)`", Span::new(8, 9));
        let r = d.render(src);
        assert!(r.contains("expected `)`"), "{r}");
        assert!(r.contains("fun f(x = x"), "{r}");
        assert!(r.lines().nth(2).unwrap().contains('^'), "{r}");
    }

    #[test]
    fn render_multiline_source() {
        let src = "line one\nline two\nline three";
        let d = Diagnostic::warning("here", Span::new(14, 17));
        let r = d.render(src);
        assert!(r.contains("line two"), "{r}");
        assert!(!r.contains("line three\n  |"), "{r}");
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("boom", Span::new(1, 2));
        assert_eq!(e.to_string(), "parse error at 1..2: boom");
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn notes_are_rendered() {
        let d = Diagnostic::note("n", Span::point(0)).with_note("extra context");
        assert!(d.render("x").contains("extra context"));
    }

    #[test]
    fn codes_are_rendered() {
        let d = Diagnostic::warning("dead branch", Span::point(0)).with_code("DML001");
        let r = d.render("if x then a else b");
        assert!(r.starts_with("warning[DML001]: dead branch"), "{r}");
        assert!(Diagnostic::warning("w", Span::point(0)).render("x").starts_with("warning: "));
    }
}
