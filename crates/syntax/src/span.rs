//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for synthesized nodes.
    pub fn point(pos: u32) -> Self {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Span length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The source text this span covers.
    pub fn slice(self, src: &str) -> &str {
        &src[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Resolves a byte offset to a [`LineCol`] within `src`.
pub fn line_col(src: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, b) in src.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 2 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "x";
        assert_eq!(line_col(src, 100), LineCol { line: 1, col: 2 });
    }
}
