//! Surface abstract syntax for DML programs.
//!
//! The surface syntax mirrors the paper's concrete syntax: ML expressions and
//! declarations plus dependent type annotations. Index expressions and
//! propositions here are *surface* forms; `dml-types` converts them into the
//! semantic index language of `dml-index` during elaboration.

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name itself.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident { name: name.into(), span }
    }

    /// A synthesized identifier with a dummy span.
    pub fn synth(name: impl Into<String>) -> Self {
        Ident { name: name.into(), span: Span::default() }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A complete program: a sequence of top-level declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level declarations, in source order.
    pub decls: Vec<Decl>,
}

/// A top-level or `let`-local declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `assert f <| dtype and g <| dtype ...` — dependent signatures for
    /// primitives supplied by the runtime (e.g. `sub`, `update`, `length`).
    Assert(Vec<(Ident, DType)>),
    /// `datatype 'a list = nil | :: of 'a * 'a list`
    Datatype(DatatypeDecl),
    /// `typeref 'a list of nat with nil <| ... | :: <| ...`
    Typeref(TyperefDecl),
    /// `fun f p1 ... pn = e | f q1 ... qn = e' ... where f <| dtype`
    /// (mutual recursion via `and` between clause groups).
    Fun(Vec<FunDecl>),
    /// `val p = e`
    Val(ValDecl),
    /// `exception E` — declares a (nullary) exception constructor (§6's
    /// "immediate goal" extension; value-carrying exceptions are future
    /// work here too).
    Exception(Ident),
}

impl Decl {
    /// Source span of the whole declaration (approximate: first binder).
    pub fn span(&self) -> Span {
        match self {
            Decl::Assert(sigs) => sigs.first().map(|(i, _)| i.span).unwrap_or_default(),
            Decl::Datatype(d) => d.name.span,
            Decl::Typeref(t) => t.name.span,
            Decl::Fun(fs) => fs.first().map(|f| f.name.span).unwrap_or_default(),
            Decl::Val(v) => v.span,
            Decl::Exception(e) => e.span,
        }
    }
}

/// `datatype ('a, 'b) name = Con1 of ty | Con2 | ...`
#[derive(Debug, Clone, PartialEq)]
pub struct DatatypeDecl {
    /// Bound type variables, e.g. `['a]` for `'a list`.
    pub tyvars: Vec<Ident>,
    /// The datatype name.
    pub name: Ident,
    /// Constructors with their optional argument type.
    pub cons: Vec<ConDecl>,
}

/// One constructor of a datatype declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConDecl {
    /// Constructor name (`nil`, `::`, `SOME`, ...).
    pub name: Ident,
    /// Argument type if the constructor takes one (`of ty`).
    pub arg: Option<DType>,
}

/// `typeref 'a list of nat with nil <| 'a list(0) | :: <| {n:nat} ...`
#[derive(Debug, Clone, PartialEq)]
pub struct TyperefDecl {
    /// Type variables of the refined datatype.
    pub tyvars: Vec<Ident>,
    /// Name of the datatype being refined.
    pub name: Ident,
    /// The index sorts the datatype is refined by (usually one, e.g. `nat`).
    pub sorts: Vec<Sort>,
    /// Refined constructor signatures.
    pub cons: Vec<(Ident, DType)>,
}

/// A function declaration: one or more clauses plus an optional dependent
/// annotation from a `where` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    /// Explicitly scoped type variables: `fun('a) f ...`.
    pub tyvars: Vec<Ident>,
    /// Explicitly scoped index parameters: `fun{size:nat} f ...`.
    pub index_params: Vec<Quant>,
    /// The function name.
    pub name: Ident,
    /// Clauses; each must have the same number of curried argument patterns.
    pub clauses: Vec<Clause>,
    /// The `where f <| dtype` annotation, if present.
    pub anno: Option<DType>,
    /// Source span of the whole `where f <| dtype` clause (from the
    /// `where` keyword through the end of the type). `None` when the
    /// function has no annotation or the declaration was synthesized.
    pub anno_span: Option<Span>,
}

/// One clause of a function: `f p1 ... pn = body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Curried argument patterns.
    pub params: Vec<Pat>,
    /// Clause body.
    pub body: Expr,
}

/// `val p = e` with an optional type annotation `val p : t = e`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValDecl {
    /// The bound pattern.
    pub pat: Pat,
    /// Optional annotation.
    pub anno: Option<DType>,
    /// The bound expression.
    pub expr: Expr,
    /// Span of the declaration.
    pub span: Span,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable or nullary constructor reference.
    Var(Ident),
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Application `e1 e2` (operators are desugared to this).
    App(Box<Expr>, Box<Expr>, Span),
    /// Tuple `(e1, ..., en)`; `()` is the empty tuple (unit).
    Tuple(Vec<Expr>, Span),
    /// `if e1 then e2 else e3`
    If(Box<Expr>, Box<Expr>, Box<Expr>, Span),
    /// `case e of p1 => e1 | ... | pn => en`
    Case(Box<Expr>, Vec<(Pat, Expr)>, Span),
    /// `let decls in body end`
    Let(Vec<Decl>, Box<Expr>, Span),
    /// `fn p1 => e1 | p2 => e2` — anonymous function with clauses.
    Fn(Vec<(Pat, Expr)>, Span),
    /// `(e1; e2; ...; en)` — sequence, value of the last expression.
    Seq(Vec<Expr>, Span),
    /// `e : t` — explicit type ascription (checking-mode switch).
    Anno(Box<Expr>, DType, Span),
    /// `e1 andalso e2` — short-circuit conjunction.
    Andalso(Box<Expr>, Box<Expr>, Span),
    /// `e1 orelse e2` — short-circuit disjunction.
    Orelse(Box<Expr>, Box<Expr>, Span),
    /// `raise E` — raises exception `E`.
    Raise(Ident, Span),
    /// `e handle E => e'` — evaluates `e`; on exception `E` evaluates the
    /// handler instead. Built-in run-time failures are catchable under
    /// their SML basis names (`Subscript`, `Div`, `Size`, `Match`).
    Handle(Box<Expr>, Vec<(Ident, Expr)>, Span),
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Var(i) => i.span,
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::App(_, _, s)
            | Expr::Tuple(_, s)
            | Expr::If(_, _, _, s)
            | Expr::Case(_, _, s)
            | Expr::Let(_, _, s)
            | Expr::Fn(_, s)
            | Expr::Seq(_, s)
            | Expr::Anno(_, _, s)
            | Expr::Andalso(_, _, s)
            | Expr::Orelse(_, _, s)
            | Expr::Raise(_, s)
            | Expr::Handle(_, _, s) => *s,
        }
    }

    /// The unit value `()`.
    pub fn unit(span: Span) -> Expr {
        Expr::Tuple(Vec::new(), span)
    }

    /// Builds `f (a1, ..., an)` — application of a named function to a tuple,
    /// the calling convention used by the paper's primitives.
    pub fn call(f: &str, args: Vec<Expr>, span: Span) -> Expr {
        let arg = if args.len() == 1 {
            args.into_iter().next().expect("one element")
        } else {
            Expr::Tuple(args, span)
        };
        Expr::App(Box::new(Expr::Var(Ident::new(f, span))), Box::new(arg), span)
    }
}

/// Patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `_`
    Wild(Span),
    /// Variable binding (or a nullary constructor — disambiguated during
    /// elaboration against the constructor environment).
    Var(Ident),
    /// Integer literal pattern.
    Int(i64, Span),
    /// Boolean literal pattern.
    Bool(bool, Span),
    /// Tuple pattern `(p1, ..., pn)`; empty = unit pattern.
    Tuple(Vec<Pat>, Span),
    /// Constructor application pattern `C p` (e.g. `x :: xs`, `SOME x`).
    Con(Ident, Option<Box<Pat>>, Span),
    /// Annotated pattern `p : t`.
    Anno(Box<Pat>, DType, Span),
}

impl Pat {
    /// Source span of the pattern.
    pub fn span(&self) -> Span {
        match self {
            Pat::Wild(s) | Pat::Int(_, s) | Pat::Bool(_, s) | Pat::Tuple(_, s) => *s,
            Pat::Var(i) => i.span,
            Pat::Con(_, _, s) | Pat::Anno(_, _, s) => *s,
        }
    }

    /// All variables bound by the pattern, in left-to-right order.
    pub fn bound_vars(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a Ident>) {
        match self {
            Pat::Wild(_) | Pat::Int(_, _) | Pat::Bool(_, _) => {}
            Pat::Var(i) => out.push(i),
            Pat::Tuple(ps, _) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            Pat::Con(_, arg, _) => {
                if let Some(p) = arg {
                    p.collect_vars(out);
                }
            }
            Pat::Anno(p, _, _) => p.collect_vars(out),
        }
    }
}

// ---------------------------------------------------------------------------
// Dependent types (surface).
// ---------------------------------------------------------------------------

/// Surface index sorts: `int`, `bool`, `nat` (sugar for `{a:int | a >= 0}`),
/// and subset sorts `{a:sort | prop}`.
#[derive(Debug, Clone, PartialEq)]
pub enum Sort {
    /// The sort of integers.
    Int,
    /// The sort of booleans.
    Bool,
    /// `nat` — sugar for `{a:int | 0 <= a}`.
    Nat,
    /// Subset sort `{a : s | p}`.
    Subset(Ident, Box<Sort>, Box<IProp>),
}

/// A quantified index variable with its sort and optional guard:
/// the `i:nat | i < n` inside `{i:nat | i < n}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Quant {
    /// Bound index variable.
    pub var: Ident,
    /// Its sort.
    pub sort: Sort,
    /// Optional guard proposition (scopes over this and later variables of
    /// the same quantifier group).
    pub guard: Option<IProp>,
}

/// Surface integer index expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum IExpr {
    /// Index variable.
    Var(Ident),
    /// Integer constant.
    Lit(i64, Span),
    /// `i + j`
    Add(Box<IExpr>, Box<IExpr>),
    /// `i - j`
    Sub(Box<IExpr>, Box<IExpr>),
    /// `i * j`
    Mul(Box<IExpr>, Box<IExpr>),
    /// `i div j` (flooring division as in SML `div`).
    Div(Box<IExpr>, Box<IExpr>),
    /// `i mod j`
    Mod(Box<IExpr>, Box<IExpr>),
    /// `min(i, j)`
    Min(Box<IExpr>, Box<IExpr>),
    /// `max(i, j)`
    Max(Box<IExpr>, Box<IExpr>),
    /// `abs(i)`
    Abs(Box<IExpr>),
    /// `sgn(i)`
    Sgn(Box<IExpr>),
    /// `~i` / unary minus.
    Neg(Box<IExpr>),
}

impl IExpr {
    /// Source span (approximate: leftmost leaf).
    pub fn span(&self) -> Span {
        match self {
            IExpr::Var(i) => i.span,
            IExpr::Lit(_, s) => *s,
            IExpr::Add(a, _)
            | IExpr::Sub(a, _)
            | IExpr::Mul(a, _)
            | IExpr::Div(a, _)
            | IExpr::Mod(a, _)
            | IExpr::Min(a, _)
            | IExpr::Max(a, _) => a.span(),
            IExpr::Abs(a) | IExpr::Sgn(a) | IExpr::Neg(a) => a.span(),
        }
    }
}

/// Comparison operators in index propositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Neq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
        };
        write!(f, "{s}")
    }
}

/// Surface boolean index propositions.
#[derive(Debug, Clone, PartialEq)]
pub enum IProp {
    /// Boolean index variable.
    Var(Ident),
    /// `true` / `false`.
    Lit(bool, Span),
    /// Comparison `i op j`.
    Cmp(CmpOp, Box<IExpr>, Box<IExpr>),
    /// `not p`
    Not(Box<IProp>),
    /// `p && q` (also written `andalso` in sorts).
    And(Box<IProp>, Box<IProp>),
    /// `p || q`
    Or(Box<IProp>, Box<IProp>),
}

/// Surface dependent types.
#[derive(Debug, Clone, PartialEq)]
pub enum DType {
    /// Type variable `'a`.
    Var(Ident),
    /// A base family applied to type arguments and index arguments:
    /// `int(n)`, `bool`, `'a array(n)`, `('k, 'v) tree(h)`, `unit`.
    App {
        /// Family name (`int`, `array`, `list`, user datatypes, ...).
        name: Ident,
        /// Type arguments (`'a` in `'a array(n)`).
        ty_args: Vec<DType>,
        /// Index arguments (`n` in `'a array(n)`). May be integer or
        /// boolean expressions; booleans are wrapped via [`Index::Prop`].
        ix_args: Vec<Index>,
    },
    /// Product `t1 * ... * tn` (n >= 2); `unit` is `App` with name "unit".
    Product(Vec<DType>),
    /// Function `t1 -> t2`.
    Arrow(Box<DType>, Box<DType>),
    /// Universal quantification `{a1:s1, ..., an:sn | guard} t` (Π).
    Pi(Vec<Quant>, Box<DType>),
    /// Existential quantification `[a1:s1, ..., an:sn | guard] t` (Σ).
    Sigma(Vec<Quant>, Box<DType>),
}

/// An index argument: either an integer expression or a boolean proposition
/// (for boolean-indexed families such as `bool(b)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    /// Integer index expression.
    Int(IExpr),
    /// Boolean index proposition.
    Prop(IProp),
}

impl DType {
    /// The `unit` type.
    pub fn unit() -> DType {
        DType::App { name: Ident::synth("unit"), ty_args: Vec::new(), ix_args: Vec::new() }
    }

    /// An unindexed base type like `int` (existential interpretation happens
    /// during elaboration).
    pub fn base(name: &str) -> DType {
        DType::App { name: Ident::synth(name), ty_args: Vec::new(), ix_args: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vars_in_order() {
        let p = Pat::Tuple(
            vec![
                Pat::Var(Ident::synth("x")),
                Pat::Con(
                    Ident::synth("::"),
                    Some(Box::new(Pat::Tuple(
                        vec![Pat::Var(Ident::synth("y")), Pat::Wild(Span::default())],
                        Span::default(),
                    ))),
                    Span::default(),
                ),
            ],
            Span::default(),
        );
        let vars: Vec<&str> = p.bound_vars().iter().map(|i| i.name.as_str()).collect();
        assert_eq!(vars, vec!["x", "y"]);
    }

    #[test]
    fn expr_call_builds_tuple_application() {
        let e = Expr::call(
            "sub",
            vec![Expr::Int(1, Span::default()), Expr::Int(2, Span::default())],
            Span::default(),
        );
        match e {
            Expr::App(f, arg, _) => {
                assert!(matches!(*f, Expr::Var(ref i) if i.name == "sub"));
                assert!(matches!(*arg, Expr::Tuple(ref es, _) if es.len() == 2));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn expr_call_single_arg_no_tuple() {
        let e = Expr::call("length", vec![Expr::Var(Ident::synth("v"))], Span::default());
        match e {
            Expr::App(_, arg, _) => assert!(matches!(*arg, Expr::Var(_))),
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn dtype_helpers() {
        assert!(matches!(DType::unit(), DType::App { ref name, .. } if name.name == "unit"));
        assert!(matches!(DType::base("int"), DType::App { ref name, .. } if name.name == "int"));
    }
}
