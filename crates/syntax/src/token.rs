//! Tokens produced by the [lexer](crate::lexer).

use std::fmt;

/// A lexical token of the DML surface language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Alphanumeric identifier beginning with a letter: `foo`, `loop'`.
    Ident(String),
    /// Type variable: `'a`, `'key`.
    TyVar(String),
    /// Integer literal (always non-negative at the lexical level; unary
    /// minus is applied by the parser).
    Int(i64),

    // Keywords.
    And,
    Andalso,
    Assert,
    Case,
    Datatype,
    Div,
    Else,
    End,
    False,
    Fn,
    Fun,
    If,
    In,
    Let,
    Mod,
    Not,
    Of,
    Orelse,
    Then,
    True,
    Typeref,
    Val,
    Where,
    With,
    /// `exception`
    Exception,
    /// `raise`
    Raise,
    /// `handle`
    Handle,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `|`
    Bar,
    /// `=>`
    DArrow,
    /// `->`
    Arrow,
    /// `<|` — the paper's "has dependent type" annotation marker.
    OfType,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&&`
    AmpAmp,
    /// `||`
    BarBar,
    /// `~` — SML unary negation.
    Tilde,
    /// `_`
    Underscore,
    /// `!` — dereference (unused by the core fragment, reserved).
    Bang,
    /// `:=` — assignment (unused by the core fragment, reserved).
    Assign,
    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "and" => Token::And,
            "andalso" => Token::Andalso,
            "assert" => Token::Assert,
            "case" => Token::Case,
            "datatype" => Token::Datatype,
            "div" => Token::Div,
            "else" => Token::Else,
            "end" => Token::End,
            "false" => Token::False,
            "fn" => Token::Fn,
            "fun" => Token::Fun,
            "if" => Token::If,
            "in" => Token::In,
            "let" => Token::Let,
            "mod" => Token::Mod,
            "not" => Token::Not,
            "of" => Token::Of,
            "orelse" => Token::Orelse,
            "then" => Token::Then,
            "true" => Token::True,
            "typeref" => Token::Typeref,
            "val" => Token::Val,
            "where" => Token::Where,
            "with" => Token::With,
            "exception" => Token::Exception,
            "raise" => Token::Raise,
            "handle" => Token::Handle,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::TyVar(s) => format!("type variable `'{s}`"),
            Token::Int(n) => format!("integer `{n}`"),
            Token::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Token::Ident(s) => return write!(f, "{s}"),
            Token::TyVar(s) => return write!(f, "'{s}"),
            Token::Int(n) => return write!(f, "{n}"),
            Token::And => "and",
            Token::Andalso => "andalso",
            Token::Assert => "assert",
            Token::Case => "case",
            Token::Datatype => "datatype",
            Token::Div => "div",
            Token::Else => "else",
            Token::End => "end",
            Token::False => "false",
            Token::Fn => "fn",
            Token::Fun => "fun",
            Token::If => "if",
            Token::In => "in",
            Token::Let => "let",
            Token::Mod => "mod",
            Token::Not => "not",
            Token::Of => "of",
            Token::Orelse => "orelse",
            Token::Then => "then",
            Token::True => "true",
            Token::Typeref => "typeref",
            Token::Val => "val",
            Token::Where => "where",
            Token::With => "with",
            Token::Exception => "exception",
            Token::Raise => "raise",
            Token::Handle => "handle",
            Token::LParen => "(",
            Token::RParen => ")",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::Comma => ",",
            Token::Semi => ";",
            Token::Colon => ":",
            Token::ColonColon => "::",
            Token::Bar => "|",
            Token::DArrow => "=>",
            Token::Arrow => "->",
            Token::OfType => "<|",
            Token::Eq => "=",
            Token::Neq => "<>",
            Token::Lt => "<",
            Token::Le => "<=",
            Token::Gt => ">",
            Token::Ge => ">=",
            Token::Plus => "+",
            Token::Minus => "-",
            Token::Star => "*",
            Token::Slash => "/",
            Token::AmpAmp => "&&",
            Token::BarBar => "||",
            Token::Tilde => "~",
            Token::Underscore => "_",
            Token::Bang => "!",
            Token::Assign => ":=",
            Token::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Token::keyword("fun"), Some(Token::Fun));
        assert_eq!(Token::keyword("typeref"), Some(Token::Typeref));
        assert_eq!(Token::keyword("frobnicate"), None);
    }

    #[test]
    fn display_round_trip_punct() {
        assert_eq!(Token::OfType.to_string(), "<|");
        assert_eq!(Token::ColonColon.to_string(), "::");
        assert_eq!(Token::DArrow.to_string(), "=>");
    }

    #[test]
    fn describe_is_never_empty() {
        for t in [Token::Ident("x".into()), Token::Int(3), Token::Eof, Token::Plus] {
            assert!(!t.describe().is_empty());
        }
    }
}
