//! Throughput suite over the generated scale corpus: program size ×
//! jobs × {session cache, disk cache}, reporting goals/sec, wall time,
//! peak RSS, and cache hit-rate trajectories to `BENCH_scale.json`.
//!
//! Flags (after `--`):
//! * `--smoke` — small corpus sizes and one iteration (CI smoke mode);
//! * `--json`  — additionally write `BENCH_scale.json` at the repo root.
//!
//! Per corpus size (total obligations across a multi-file corpus; the
//! corpus generator is `dml_oracle::scale`, seeded and stamped with
//! expected verdict counts that are asserted here — a throughput number
//! from a miscompiled corpus would be worthless):
//!
//! * `cold_jobs1` — fresh session solver, cleared gen memo, sequential.
//!   Measured file-by-file, which also yields the cumulative cache
//!   hit-rate *trajectory*: cross-file goal sharing ramps the session
//!   hit rate up as the batch proceeds.
//! * `cold_jobs_auto` — fresh session, same corpus fanned across one
//!   worker thread per core via `dml::check_batch`.
//! * `warm_shared` — the same session re-checks the whole corpus: gen
//!   memo hot, every cacheable goal served from the session cache. The
//!   steady state of a `dmlc serve` check farm.
//! * `disk_cold_session` — a *fresh* session whose goal cache starts
//!   empty but has the persistent disk store attached (pre-populated by
//!   a flushed priming session): every canonical goal is served from
//!   the disk tier, the cross-process warm-start story.
//!
//! Peak RSS is the `/proc/self/status` VmHWM high-water mark, reset
//! between configs where the kernel allows (`rss_reset_supported` in
//! the report; without the reset the readings are monotone across
//! configs and only the largest is meaningful).

use dml::{check_batch, BatchEntry, Compiler};
use dml_bench::json::Json;
use dml_bench::rss;
use dml_oracle::scale::{gen_scale_corpus, verify_scale_case, ScaleConfig};
use std::time::{Duration, Instant};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
const SEED: u64 = 20260808;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Goals/sec over a wall time (0 when the clock read as zero).
fn rate(goals: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        goals as f64 / secs
    }
}

struct ConfigRow {
    name: &'static str,
    jobs: String,
    wall: Duration,
    goals: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_disk_hits: u64,
    peak_rss: Option<u64>,
}

impl ConfigRow {
    fn hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("jobs", Json::Str(self.jobs.clone())),
            ("wall_ms", Json::Num(ms(self.wall))),
            ("goals", Json::Int(self.goals as i64)),
            ("goals_per_sec", Json::Num(rate(self.goals, self.wall))),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("cache_misses", Json::Int(self.cache_misses as i64)),
            ("cache_disk_hits", Json::Int(self.cache_disk_hits as i64)),
            ("cache_hit_rate", Json::Num(self.hit_rate())),
            (
                // Non-finite Num renders as JSON null (no /proc platform).
                "peak_rss_bytes",
                self.peak_rss.map_or(Json::Num(f64::NAN), |b| Json::Int(b as i64)),
            ),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");
    // Corpus sizes in total obligations. The full sweep tops out past
    // 10k obligations (the acceptance bar for the committed report);
    // smoke keeps CI wall time in seconds.
    let sizes: &[usize] = if smoke { &[150, 400, 800] } else { &[1_000, 3_000, 10_000] };
    let iters = if smoke { 1 } else { 2 };
    let auto_jobs = std::thread::available_parallelism().map_or(1, |n| n.get());

    let pool_helpers = dml_solver::pool::prewarm();
    let rss_reset = rss::reset_peak();
    println!(
        "scale_suite: sizes {sizes:?}, jobs auto={auto_jobs}, pool helpers {pool_helpers}, \
         rss reset {}",
        if rss_reset { "supported" } else { "UNSUPPORTED (peaks are monotone)" }
    );

    let mut size_rows = Vec::new();
    let mut top = None;
    for &target in sizes {
        let row = run_size(target, iters, auto_jobs, rss_reset);
        top = Some((target, row.cold_rate, row.warm_rate));
        size_rows.push(row.json);
    }

    let (top_obligations, cold_rate, warm_rate) = top.expect("at least one size");
    let warm_speedup = if cold_rate > 0.0 { warm_rate / cold_rate } else { 0.0 };
    println!(
        "scale_suite/totals: top size {top_obligations} obligations, \
         cold {cold_rate:.0} goals/s, warm {warm_rate:.0} goals/s ({warm_speedup:.1}x)"
    );

    if write_json {
        let report = Json::obj([
            ("suite", Json::Str("scale_suite".to_string())),
            ("smoke", Json::Bool(smoke)),
            ("seed", Json::Int(SEED as i64)),
            ("pool_helpers", Json::Int(pool_helpers as i64)),
            ("jobs_auto", Json::Int(auto_jobs as i64)),
            ("rss_reset_supported", Json::Bool(rss_reset)),
            ("sizes", Json::Array(size_rows)),
            (
                "totals",
                Json::obj([
                    ("top_obligations", Json::Int(top_obligations as i64)),
                    ("goals_per_sec_cold", Json::Num(cold_rate)),
                    ("goals_per_sec_warm", Json::Num(warm_rate)),
                    ("warm_speedup", Json::Num(warm_speedup)),
                ]),
            ),
        ]);
        std::fs::write(REPORT_PATH, report.render() + "\n").expect("write BENCH_scale.json");
        println!("wrote {REPORT_PATH}");
    }
}

struct SizeResult {
    json: Json,
    cold_rate: f64,
    warm_rate: f64,
}

fn run_size(target: usize, iters: usize, auto_jobs: usize, rss_reset: bool) -> SizeResult {
    // Spread the corpus so no single file crosses into the superlinear
    // generation regime (see EXPERIMENTS.md); floor of 2 files keeps the
    // jobs axis meaningful even in smoke mode.
    let files = (target / 600).clamp(2, 32);
    let cfg = ScaleConfig::new(SEED, target).files(files);
    let corpus = gen_scale_corpus(&cfg);
    let entries: Vec<BatchEntry> = corpus
        .cases
        .iter()
        .map(|c| BatchEntry { name: format!("{}.dml", c.name), source: c.source.clone() })
        .collect();
    println!(
        "scale_suite/{target}: {} file(s), {} obligations, expected {}",
        entries.len(),
        corpus.obligations,
        corpus.expected
    );

    // cold_jobs1, measured file-by-file for the hit-rate trajectory.
    // The stamped verdict counts are asserted on the first iteration:
    // the corpus doubles as a correctness oracle.
    let mut best_cold = None::<(Duration, usize, u64, u64, Vec<f64>)>;
    for iter in 0..iters {
        dml::clear_gen_memo();
        let compiler = Compiler::new();
        let cache = compiler.solver().cache();
        let mut trajectory = Vec::with_capacity(corpus.cases.len());
        let mut goals = 0usize;
        if rss_reset {
            rss::reset_peak();
        }
        let t0 = Instant::now();
        for case in &corpus.cases {
            let compiled = compiler.compile(&case.source).expect("scale case compiles");
            goals += compiled.stats().goals;
            let probes = cache.hits() + cache.misses();
            trajectory.push(if probes == 0 { 0.0 } else { cache.hits() as f64 / probes as f64 });
            if iter == 0 {
                verify_scale_case(&compiled, &case.expected)
                    .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            }
        }
        let wall = t0.elapsed();
        if best_cold.as_ref().is_none_or(|(w, ..)| wall < *w) {
            best_cold = Some((wall, goals, cache.hits(), cache.misses(), trajectory));
        }
    }
    let (cold_wall, cold_goals, cold_hits, cold_misses, trajectory) = best_cold.expect("cold run");
    let cold_rss = rss::peak_bytes();
    let cold = ConfigRow {
        name: "cold_jobs1",
        jobs: "1".into(),
        wall: cold_wall,
        goals: cold_goals,
        cache_hits: cold_hits,
        cache_misses: cold_misses,
        cache_disk_hits: 0,
        peak_rss: cold_rss,
    };

    // cold_jobs_auto + warm_shared share one session: the second batch
    // over the same handle is the warm steady state.
    let mut cold_auto = None::<ConfigRow>;
    let mut warm = None::<ConfigRow>;
    for _ in 0..iters {
        dml::clear_gen_memo();
        let compiler = Compiler::new();
        if rss_reset {
            rss::reset_peak();
        }
        let t0 = Instant::now();
        let out = check_batch(&compiler, &entries, auto_jobs);
        let wall = t0.elapsed();
        assert!(out.ok(), "parallel batch failed");
        let row = ConfigRow {
            name: "cold_jobs_auto",
            jobs: auto_jobs.to_string(),
            wall,
            goals: out.summary.goals,
            cache_hits: out.summary.cache_hits,
            cache_misses: out.summary.cache_misses,
            cache_disk_hits: out.summary.cache_disk_hits,
            peak_rss: rss::peak_bytes(),
        };
        if cold_auto.as_ref().is_none_or(|b| row.wall < b.wall) {
            cold_auto = Some(row);
        }

        if rss_reset {
            rss::reset_peak();
        }
        let t0 = Instant::now();
        let out = check_batch(&compiler, &entries, auto_jobs);
        let wall = t0.elapsed();
        assert!(out.ok(), "warm batch failed");
        let row = ConfigRow {
            name: "warm_shared",
            jobs: auto_jobs.to_string(),
            wall,
            goals: out.summary.goals,
            cache_hits: out.summary.cache_hits,
            cache_misses: out.summary.cache_misses,
            cache_disk_hits: out.summary.cache_disk_hits,
            peak_rss: rss::peak_bytes(),
        };
        if warm.as_ref().is_none_or(|b| row.wall < b.wall) {
            warm = Some(row);
        }
    }
    let cold_auto = cold_auto.expect("cold auto run");
    let warm = warm.expect("warm run");

    // disk_cold_session: prime a throwaway session with the disk store
    // attached, flush it, then measure a fresh session that can only be
    // warm through the disk tier.
    let dir = std::env::temp_dir().join(format!("dml-scale-suite-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let store = dir.join(format!("verdicts-{target}.store"));
    {
        let primer = Compiler::new().disk_cache(&store);
        let out = check_batch(&primer, &entries, auto_jobs);
        assert!(out.ok(), "disk priming batch failed");
        primer.flush_disk().expect("flush disk store").expect("store attached");
    }
    let mut disk = None::<ConfigRow>;
    for _ in 0..iters {
        dml::clear_gen_memo();
        let compiler = Compiler::new().disk_cache(&store);
        if rss_reset {
            rss::reset_peak();
        }
        let t0 = Instant::now();
        let out = check_batch(&compiler, &entries, auto_jobs);
        let wall = t0.elapsed();
        assert!(out.ok(), "disk-backed batch failed");
        let row = ConfigRow {
            name: "disk_cold_session",
            jobs: auto_jobs.to_string(),
            wall,
            goals: out.summary.goals,
            cache_hits: out.summary.cache_hits,
            cache_misses: out.summary.cache_misses,
            cache_disk_hits: out.summary.cache_disk_hits,
            peak_rss: rss::peak_bytes(),
        };
        if disk.as_ref().is_none_or(|b| row.wall < b.wall) {
            disk = Some(row);
        }
    }
    let disk = disk.expect("disk run");
    assert!(disk.cache_disk_hits > 0, "disk-backed session served no verdicts from the disk tier");
    let _ = std::fs::remove_dir_all(&dir);

    for row in [&cold, &cold_auto, &warm, &disk] {
        println!(
            "scale_suite/{target}/{}: {:.1} ms, {:.0} goals/s, hit rate {:.2}, \
             {} disk hit(s), peak RSS {}",
            row.name,
            ms(row.wall),
            rate(row.goals, row.wall),
            row.hit_rate(),
            row.cache_disk_hits,
            row.peak_rss.map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / 1048576.0))
        );
    }

    let cold_rate = rate(cold.goals, cold.wall);
    let warm_rate = rate(warm.goals, warm.wall);
    let json = Json::obj([
        ("target_obligations", Json::Int(target as i64)),
        ("obligations", Json::Int(corpus.obligations as i64)),
        ("files", Json::Int(entries.len() as i64)),
        (
            "expected",
            Json::obj([
                ("check_sites", Json::Int(corpus.expected.check_sites as i64)),
                ("proven_sites", Json::Int(corpus.expected.proven_sites as i64)),
                ("residual_sites", Json::Int(corpus.expected.residual_sites as i64)),
                ("nonlinear_sites", Json::Int(corpus.expected.nonlinear_sites as i64)),
            ]),
        ),
        ("hit_rate_trajectory", Json::Array(trajectory.into_iter().map(Json::Num).collect())),
        (
            "configs",
            Json::Array(vec![cold.to_json(), cold_auto.to_json(), warm.to_json(), disk.to_json()]),
        ),
    ]);
    SizeResult { json, cold_rate, warm_rate }
}
