//! Cold- vs warm-cache solve times over the paper benchmarks, a
//! {workers} × {cache} ablation, and a machine-readable `BENCH_solver.json`
//! report.
//!
//! Flags (after `--`):
//! * `--smoke` — one iteration per measurement (CI smoke mode);
//! * `--json`  — additionally write `BENCH_solver.json` at the repo root.
//!
//! "Cold" compiles each benchmark with a fresh solver (empty verdict
//! cache); "warm" compiles against a solver that already solved the same
//! program, so every cacheable goal is answered from the cache. The lint
//! section runs the lint pass twice on the compile's own solver and reports
//! the second pass's hit rate (its entailment queries repeat exactly).

use dml::experiments::{bench_source, benchmarks};
use dml::Compiler;
use dml_bench::bench_timed;
use dml_bench::json::Json;
use dml_solver::{Solver, SolverOptions};
use std::time::Duration;

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");
    let (warmup, iters) = if smoke { (0, 1) } else { (1, 5) };

    let mut rows = Vec::new();
    let mut total_cold = Duration::ZERO;
    let mut total_warm = Duration::ZERO;

    for b in benchmarks() {
        let name = b.program.name;
        let src = bench_source(&b.program);

        // Cold: fresh solver (and empty cache) every compile.
        let mut cold = None::<dml::CompileStats>;
        bench_timed("solver_cache", &format!("{name}/cold"), warmup, iters, || {
            let c = Compiler::new().compile(&src).expect("compiles");
            let s = c.stats().clone();
            if cold.as_ref().is_none_or(|best| s.solve_time < best.solve_time) {
                cold = Some(s);
            }
        });
        let cold = cold.expect("at least one cold run");

        // Warm: a shared solver primed by one untimed compile.
        let shared = Solver::new(SolverOptions::default());
        Compiler::new().with_solver(&shared).compile(&src).expect("compiles");
        let mut warm = None::<dml::CompileStats>;
        bench_timed("solver_cache", &format!("{name}/warm"), warmup, iters, || {
            let c = Compiler::new().with_solver(&shared).compile(&src).expect("compiles");
            let s = c.stats().clone();
            if warm.as_ref().is_none_or(|best| s.solve_time < best.solve_time) {
                warm = Some(s);
            }
        });
        let warm = warm.expect("at least one warm run");

        total_cold += cold.solve_time;
        total_warm += warm.solve_time;
        let looked_up = warm.solver.cache_hits + warm.solver.cache_misses;
        let warm_rate =
            if looked_up == 0 { 0.0 } else { warm.solver.cache_hits as f64 / looked_up as f64 };
        rows.push(Json::obj([
            ("name", Json::Str(name.to_string())),
            ("constraints", Json::Int(cold.constraints as i64)),
            ("goals", Json::Int(cold.goals as i64)),
            ("gen_ms", Json::Num(ms(cold.generation_time))),
            ("solve_cold_ms", Json::Num(ms(cold.solve_time))),
            ("solve_warm_ms", Json::Num(ms(warm.solve_time))),
            ("fm_combinations", Json::Int(cold.solver.fm_combinations as i64)),
            ("warm_cache_hit_rate", Json::Num(warm_rate)),
        ]));
    }

    // Ablation: {workers 1 / auto} × {cache on / off}, total solve time
    // across the whole suite with one fresh solver per config+benchmark.
    let mut ablation = Vec::new();
    for (workers, label) in [(Some(1), "1"), (None, "auto")] {
        for cache in [true, false] {
            let opts = SolverOptions::default().with_workers(workers).with_cache(cache);
            let mut total = Duration::ZERO;
            bench_timed(
                "solver_cache",
                &format!("ablation/workers={label},cache={cache}"),
                warmup,
                iters,
                || {
                    total = Duration::ZERO;
                    for b in benchmarks() {
                        let src = bench_source(&b.program);
                        let c =
                            Compiler::new().solver_options(opts).compile(&src).expect("compiles");
                        total += c.stats().solve_time;
                    }
                },
            );
            ablation.push(Json::obj([
                ("workers", Json::Str(label.to_string())),
                ("cache", Json::Bool(cache)),
                ("solve_ms", Json::Num(ms(total))),
            ]));
        }
    }

    // Lint pass: the second run's entailment queries repeat the first's,
    // so with the compile's own solver they hit the shared cache.
    let (mut lint_hits, mut lint_misses) = (0u64, 0u64);
    for b in benchmarks() {
        let src = bench_source(&b.program);
        let c = Compiler::new().compile(&src).expect("compiles");
        let _ = c.lints(); // first pass warms lint-only entries
        let (h0, m0) = (c.solver().cache().hits(), c.solver().cache().misses());
        let _ = c.lints();
        lint_hits += c.solver().cache().hits() - h0;
        lint_misses += c.solver().cache().misses() - m0;
    }
    let lint_rate = if lint_hits + lint_misses == 0 {
        0.0
    } else {
        lint_hits as f64 / (lint_hits + lint_misses) as f64
    };
    println!(
        "solver_cache/lint: {} hits, {} misses ({:.0}% hit rate) on the repeated lint pass",
        lint_hits,
        lint_misses,
        lint_rate * 100.0
    );

    let warm_strictly_faster = total_warm < total_cold;
    println!(
        "solver_cache/totals: cold {:.3} ms, warm {:.3} ms ({})",
        ms(total_cold),
        ms(total_warm),
        if warm_strictly_faster { "warm < cold" } else { "WARM NOT FASTER" }
    );

    if write_json {
        let report = Json::obj([
            ("suite", Json::Str("solver_cache".to_string())),
            ("smoke", Json::Bool(smoke)),
            ("benchmarks", Json::Array(rows)),
            (
                "totals",
                Json::obj([
                    ("solve_cold_ms", Json::Num(ms(total_cold))),
                    ("solve_warm_ms", Json::Num(ms(total_warm))),
                    ("warm_strictly_faster", Json::Bool(warm_strictly_faster)),
                ]),
            ),
            ("ablation", Json::Array(ablation)),
            (
                "lint",
                Json::obj([
                    ("hits", Json::Int(lint_hits as i64)),
                    ("misses", Json::Int(lint_misses as i64)),
                    ("hit_rate", Json::Num(lint_rate)),
                ]),
            ),
        ]);
        std::fs::write(REPORT_PATH, report.render() + "\n").expect("write BENCH_solver.json");
        println!("wrote {REPORT_PATH}");
    }
}
