//! Cold- vs warm-cache solve times over the paper benchmarks, a
//! {workers} × {cache} ablation, and a machine-readable `BENCH_solver.json`
//! report.
//!
//! Flags (after `--`):
//! * `--smoke` — one iteration per measurement (CI smoke mode);
//! * `--json`  — additionally write `BENCH_solver.json` at the repo root;
//! * `--assert-ablation` — exit nonzero if the `workers=auto, cache=true`
//!   ablation row regresses against `workers=1, cache=true` (the CI guard
//!   that keeps the parallel solver a net win). "Regresses" means *not
//!   strictly faster* where the machine has parallelism to exploit; on a
//!   single-core runner — where `workers=auto` resolves to the sequential
//!   path and a strict win is physically meaningless — it means more than
//!   5% slower (the parallel plumbing must cost nothing).
//!
//! "Cold" compiles each benchmark with a fresh solver (empty verdict
//! cache) *and* a cleared gen-phase memo, so it measures a genuinely cold
//! compile; "warm" compiles against a solver that already solved the same
//! program with the gen memo populated, so elaboration is hash-consed and
//! every cacheable goal is answered from the verdict cache. The solver's
//! persistent worker pool is prewarmed up front — its one-time thread
//! spawn is process state, not per-compile cost (`pool_helpers` in the
//! report records the helper count). The lint section runs the lint pass
//! twice on the compile's own solver and reports the second pass's hit
//! rate (its entailment queries repeat exactly).
//!
//! The daemon section compares a fresh `dmlc check` process per compile
//! against one warm `dmlc serve` daemon answering the same checks over
//! its stdio protocol (`daemon_speedup` in the report; target ≥5x). It
//! needs the release `dmlc` binary and is skipped with a log line when
//! the binary isn't built.

use dml::experiments::{bench_source, benchmarks};
use dml::Compiler;
use dml_bench::bench_timed;
use dml_bench::json::Json;
use dml_solver::{Solver, SolverOptions};
use std::time::Duration;

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");
    let assert_ablation = args.iter().any(|a| a == "--assert-ablation");
    let (warmup, iters) = if smoke { (0, 1) } else { (1, 5) };

    // The worker pool is process state: spawn it once up front so no
    // single measurement eats the one-time thread-spawn cost.
    let pool_helpers = dml_solver::pool::prewarm();

    let mut rows = Vec::new();
    let mut total_gen_cold = Duration::ZERO;
    let mut total_gen_warm = Duration::ZERO;
    let mut total_cold = Duration::ZERO;
    let mut total_warm = Duration::ZERO;

    for b in benchmarks() {
        let name = b.program.name;
        let src = bench_source(&b.program);

        // Cold: fresh solver (empty verdict cache) and cleared gen memo
        // every compile.
        let mut cold = None::<dml::CompileStats>;
        bench_timed("solver_cache", &format!("{name}/cold"), warmup, iters, || {
            dml::clear_gen_memo();
            let c = Compiler::new().compile(&src).expect("compiles");
            let s = c.stats().clone();
            if cold.as_ref().is_none_or(|best| s.solve_time < best.solve_time) {
                cold = Some(s);
            }
        });
        let cold = cold.expect("at least one cold run");

        // Warm: a shared solver primed by one untimed compile (which also
        // re-populates the gen memo for this source).
        let shared = Solver::new(SolverOptions::default());
        Compiler::new().with_solver(&shared).compile(&src).expect("compiles");
        let mut warm = None::<dml::CompileStats>;
        bench_timed("solver_cache", &format!("{name}/warm"), warmup, iters, || {
            let c = Compiler::new().with_solver(&shared).compile(&src).expect("compiles");
            let s = c.stats().clone();
            if warm.as_ref().is_none_or(|best| s.solve_time < best.solve_time) {
                warm = Some(s);
            }
        });
        let warm = warm.expect("at least one warm run");

        total_gen_cold += cold.generation_time;
        total_gen_warm += warm.generation_time;
        total_cold += cold.solve_time;
        total_warm += warm.solve_time;
        let looked_up = warm.solver.cache_hits + warm.solver.cache_misses;
        let warm_rate =
            if looked_up == 0 { 0.0 } else { warm.solver.cache_hits as f64 / looked_up as f64 };
        rows.push(Json::obj([
            ("name", Json::Str(name.to_string())),
            ("constraints", Json::Int(cold.constraints as i64)),
            ("goals", Json::Int(cold.goals as i64)),
            ("gen_ms", Json::Num(ms(cold.generation_time))),
            ("gen_warm_ms", Json::Num(ms(warm.generation_time))),
            ("solve_cold_ms", Json::Num(ms(cold.solve_time))),
            ("solve_warm_ms", Json::Num(ms(warm.solve_time))),
            ("fm_combinations", Json::Int(cold.solver.fm_combinations as i64)),
            ("warm_cache_hit_rate", Json::Num(warm_rate)),
        ]));
    }

    // Ablation: {workers 1 / auto} × {cache on / off}, total solve time
    // across the whole suite with one fresh solver per config+benchmark.
    // Configs are measured *interleaved* (every round times all four
    // back-to-back) so slow drift — thermal throttling, noisy container
    // neighbours — hits each config equally instead of biasing whichever
    // ran last; each config reports its best (minimum) round.
    let configs: [(Option<usize>, &str, bool); 4] =
        [(Some(1), "1", true), (Some(1), "1", false), (None, "auto", true), (None, "auto", false)];
    let run_config = |workers: Option<usize>, cache: bool| {
        let opts = SolverOptions::default().with_workers(workers).with_cache(cache);
        let mut total = Duration::ZERO;
        for b in benchmarks() {
            let src = bench_source(&b.program);
            let c = Compiler::new().solver_options(opts).compile(&src).expect("compiles");
            total += c.stats().solve_time;
        }
        total
    };
    let mut best = [Duration::MAX; 4];
    for round in 0..(warmup + iters) {
        for (i, &(workers, _, cache)) in configs.iter().enumerate() {
            let total = run_config(workers, cache);
            if round >= warmup && total < best[i] {
                best[i] = total;
            }
        }
    }
    let mut ablation = Vec::new();
    let mut ablation_solve = std::collections::HashMap::new();
    for (i, &(_, label, cache)) in configs.iter().enumerate() {
        println!(
            "solver_cache/ablation/workers={label},cache={cache}: min {:.3} ms ({iters} iters, interleaved)",
            ms(best[i])
        );
        ablation_solve.insert((label, cache), best[i]);
        ablation.push(Json::obj([
            ("workers", Json::Str(label.to_string())),
            ("cache", Json::Bool(cache)),
            ("solve_ms", Json::Num(ms(best[i]))),
        ]));
    }
    // The flip this PR exists for: parallel solving must be a net win over
    // sequential on the very suite the paper reports. On a machine with no
    // parallelism to exploit (`pool_helpers == 0`, i.e. one core),
    // `workers=auto` resolves to the sequential path, so a *strict* win is
    // physically meaningless there; the row instead asserts the parallel
    // plumbing costs nothing (within a 5% noise allowance of sequential).
    let parallelism_available = pool_helpers > 0;
    let parallel_solve = ablation_solve[&("auto", true)];
    let sequential_solve = ablation_solve[&("1", true)];
    let parallel_strictly_faster = if parallelism_available {
        parallel_solve < sequential_solve
    } else {
        parallel_solve <= sequential_solve.mul_f64(1.05)
    };
    println!(
        "solver_cache/ablation: workers=auto {:.3} ms vs workers=1 {:.3} ms ({})",
        ms(parallel_solve),
        ms(sequential_solve),
        match (parallelism_available, parallel_strictly_faster) {
            (true, true) => "parallel < sequential",
            (false, true) => "single core: parallel plumbing within noise of sequential",
            (_, false) => "PARALLEL REGRESSION",
        }
    );

    // Lint pass: the second run's entailment queries repeat the first's,
    // so with the compile's own solver they hit the shared cache.
    let (mut lint_hits, mut lint_misses) = (0u64, 0u64);
    for b in benchmarks() {
        let src = bench_source(&b.program);
        let c = Compiler::new().compile(&src).expect("compiles");
        let _ = c.lints(); // first pass warms lint-only entries
        let (h0, m0) = (c.solver().cache().hits(), c.solver().cache().misses());
        let _ = c.lints();
        lint_hits += c.solver().cache().hits() - h0;
        lint_misses += c.solver().cache().misses() - m0;
    }
    let lint_rate = if lint_hits + lint_misses == 0 {
        0.0
    } else {
        lint_hits as f64 / (lint_hits + lint_misses) as f64
    };
    println!(
        "solver_cache/lint: {} hits, {} misses ({:.0}% hit rate) on the repeated lint pass",
        lint_hits,
        lint_misses,
        lint_rate * 100.0
    );

    // Daemon: a fresh `dmlc check` process per compile (cold) vs one warm
    // `dmlc serve` answering the same checks over its wire protocol. This
    // is the number `dmlc serve` exists for: the daemon amortises process
    // startup, the goal cache, the gen memo, and per-file incremental
    // state across requests.
    let daemon = match find_dmlc() {
        Some(dmlc) => bench_daemon(&dmlc, warmup, iters),
        None => {
            println!(
                "solver_cache/daemon: skipped (dmlc binary not found near the bench \
                 executable; run `cargo build --release -p dml-cli` first)"
            );
            Json::obj([("available", Json::Bool(false))])
        }
    };

    let warm_strictly_faster = total_warm < total_cold;
    println!(
        "solver_cache/totals: gen cold {:.3} ms (warm {:.3} ms), \
         solve cold {:.3} ms, solve warm {:.3} ms ({})",
        ms(total_gen_cold),
        ms(total_gen_warm),
        ms(total_cold),
        ms(total_warm),
        if warm_strictly_faster { "warm < cold" } else { "WARM NOT FASTER" }
    );

    if write_json {
        let report = Json::obj([
            ("suite", Json::Str("solver_cache".to_string())),
            ("smoke", Json::Bool(smoke)),
            ("pool_helpers", Json::Int(pool_helpers as i64)),
            ("parallelism_available", Json::Bool(parallelism_available)),
            ("benchmarks", Json::Array(rows)),
            (
                "totals",
                Json::obj([
                    ("gen_ms", Json::Num(ms(total_gen_cold))),
                    ("gen_warm_ms", Json::Num(ms(total_gen_warm))),
                    ("solve_cold_ms", Json::Num(ms(total_cold))),
                    ("solve_warm_ms", Json::Num(ms(total_warm))),
                    ("warm_strictly_faster", Json::Bool(warm_strictly_faster)),
                    ("parallel_strictly_faster", Json::Bool(parallel_strictly_faster)),
                ]),
            ),
            ("ablation", Json::Array(ablation)),
            ("daemon", daemon),
            (
                "lint",
                Json::obj([
                    ("hits", Json::Int(lint_hits as i64)),
                    ("misses", Json::Int(lint_misses as i64)),
                    ("hit_rate", Json::Num(lint_rate)),
                ]),
            ),
        ]);
        std::fs::write(REPORT_PATH, report.render() + "\n").expect("write BENCH_solver.json");
        println!("wrote {REPORT_PATH}");
    }

    if assert_ablation && !parallel_strictly_faster {
        report_ablation_failure(parallel_solve, sequential_solve);
    }
}

fn report_ablation_failure(parallel_solve: Duration, sequential_solve: Duration) {
    eprintln!(
        "solver_cache: ablation regression — workers=auto ({:.3} ms) is not \
         strictly faster than workers=1 ({:.3} ms) with the cache on",
        ms(parallel_solve),
        ms(sequential_solve)
    );
    std::process::exit(1);
}

/// Locates the release `dmlc` binary by walking up from the bench
/// executable (`target/<profile>/deps/solver_cache-*` → `target/<profile>/dmlc`).
fn find_dmlc() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors().skip(1).find_map(|dir| {
        let candidate = dir.join("dmlc");
        candidate.is_file().then_some(candidate)
    })
}

/// Cold process-per-check vs warm-daemon wall times over the paper suite.
/// "Cold" spawns a fresh `dmlc check` per compile; "warm" drives one
/// `dmlc serve` daemon over stdio, after a priming round, so requests land
/// on a hot goal cache, gen memo, worker pool, and per-file incremental
/// state. Both sides include full request round-trip time.
fn bench_daemon(dmlc: &std::path::Path, warmup: usize, iters: usize) -> Json {
    use dml::serve::protocol::{request_line, Json as WireJson, Value};
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::process::{Command, Stdio};
    use std::time::Instant;

    let dir = std::env::temp_dir().join(format!("dml-bench-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let files: Vec<(&str, std::path::PathBuf, String)> = benchmarks()
        .into_iter()
        .map(|b| {
            let src = bench_source(&b.program);
            let path = dir.join(format!("{}.dml", b.program.name));
            std::fs::write(&path, &src).expect("write bench program");
            (b.program.name, path, src)
        })
        .collect();
    let rounds = (warmup + iters).max(1);

    // Cold: every check pays process startup + a from-scratch compile.
    let mut cold_best = vec![Duration::MAX; files.len()];
    let mut cold_total = Duration::MAX;
    for round in 0..rounds {
        let mut total = Duration::ZERO;
        for (i, (name, path, _)) in files.iter().enumerate() {
            let t0 = Instant::now();
            let out = Command::new(dmlc).arg("check").arg(path).output().expect("dmlc runs");
            let took = t0.elapsed();
            assert!(
                out.status.success(),
                "dmlc check {name} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            total += took;
            if round >= warmup.min(rounds - 1) && took < cold_best[i] {
                cold_best[i] = took;
            }
        }
        if round >= warmup.min(rounds - 1) && total < cold_total {
            cold_total = total;
        }
    }

    // Warm: one daemon, all requests over its stdio protocol.
    let mut child = Command::new(dmlc)
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("dmlc serve spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut next_id: i64 = 0;
    let mut ask = |method: &str, params: Vec<(&str, WireJson)>| -> (Duration, Value) {
        next_id += 1;
        let line = request_line(next_id, method, params);
        let t0 = Instant::now();
        stdin.write_all(line.as_bytes()).expect("write request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        let took = t0.elapsed();
        let parsed = Value::parse(response.trim()).expect("daemon speaks JSON");
        assert!(parsed.get("error").is_none(), "daemon error: {response}");
        (took, parsed)
    };
    let check_params = |name: &str, src: &str| {
        vec![("source", WireJson::Str(src.to_string())), ("path", WireJson::Str(name.to_string()))]
    };
    // Priming round: pays the daemon's own cold compiles, untimed — the
    // steady state being measured is "editor re-checks against a warm
    // service", not daemon boot.
    for (name, _, src) in &files {
        let _ = ask("check", check_params(name, src));
    }
    let mut warm_best = vec![Duration::MAX; files.len()];
    let mut warm_total = Duration::MAX;
    for _ in 0..rounds {
        let mut total = Duration::ZERO;
        for (i, (name, _, src)) in files.iter().enumerate() {
            let (took, response) = ask("check", check_params(name, src));
            let incremental =
                response.get("result").and_then(|r| r.get("incremental")).and_then(Value::as_bool);
            assert_eq!(incremental, Some(true), "warm {name} re-check reuses verdicts");
            total += took;
            if took < warm_best[i] {
                warm_best[i] = took;
            }
        }
        if total < warm_total {
            warm_total = total;
        }
    }
    let (_, _) = ask("shutdown", Vec::new());
    drop(stdin);
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let mut rows = Vec::new();
    for (i, (name, _, _)) in files.iter().enumerate() {
        println!(
            "solver_cache/daemon/{name}: cold process {:.3} ms, warm daemon {:.3} ms",
            ms(cold_best[i]),
            ms(warm_best[i])
        );
        rows.push(Json::obj([
            ("name", Json::Str(name.to_string())),
            ("cold_process_ms", Json::Num(ms(cold_best[i]))),
            ("warm_daemon_ms", Json::Num(ms(warm_best[i]))),
        ]));
    }
    let speedup =
        if warm_total.is_zero() { f64::INFINITY } else { ms(cold_total) / ms(warm_total) };
    println!(
        "solver_cache/daemon totals: cold process {:.3} ms, warm daemon {:.3} ms \
         ({speedup:.1}x speedup; target >= 5x)",
        ms(cold_total),
        ms(warm_total)
    );
    Json::obj([
        ("available", Json::Bool(true)),
        ("benchmarks", Json::Array(rows)),
        ("cold_process_ms", Json::Num(ms(cold_total))),
        ("warm_daemon_ms", Json::Num(ms(warm_total))),
        ("daemon_speedup", Json::Num(speedup)),
    ])
}
