//! Solver micro-benchmarks: Fourier–Motzkin refutation on the paper's
//! Figure-4-style constraints and on synthetic systems of varying size.

use dml_bench::bench;
use dml_index::{Constraint, IExp, Prop, Sort, VarGen};
use dml_solver::{Solver, SolverOptions};
use std::hint::black_box;

/// Builds the binary-search midpoint constraint (Figure 4's key goal):
/// ∀h,l,size. (0 ≤ h+1 ≤ size ∧ 0 ≤ l ≤ size ∧ h ≥ l)
/// ⊃ 0 ≤ l + (h−l) div 2 < size.
fn bsearch_constraint(gen: &mut VarGen) -> Constraint {
    let h = gen.fresh("h");
    let l = gen.fresh("l");
    let size = gen.fresh("size");
    let hyp = Prop::le(IExp::lit(0), IExp::var(h.clone()) + IExp::lit(1))
        .and(Prop::le(IExp::var(h.clone()) + IExp::lit(1), IExp::var(size.clone())))
        .and(Prop::le(IExp::lit(0), IExp::var(l.clone())))
        .and(Prop::le(IExp::var(l.clone()), IExp::var(size.clone())))
        .and(Prop::cmp(dml_index::Cmp::Ge, IExp::var(h.clone()), IExp::var(l.clone())));
    let mid =
        IExp::var(l.clone()) + (IExp::var(h.clone()) - IExp::var(l.clone())).div(IExp::lit(2));
    let concl = Prop::le(IExp::lit(0), mid.clone()).and(Prop::lt(mid, IExp::var(size.clone())));
    Constraint::Forall(
        h,
        Sort::Int,
        Box::new(Constraint::Forall(
            l,
            Sort::Int,
            Box::new(Constraint::Forall(
                size,
                Sort::Int,
                Box::new(Constraint::Implies(hyp, Box::new(Constraint::Prop(concl)))),
            )),
        )),
    )
}

/// A chain-transitivity constraint with `n` universally quantified links:
/// ∀x₀..xₙ. (x₀ ≤ x₁ ∧ ... ∧ xₙ₋₁ ≤ xₙ) ⊃ x₀ ≤ xₙ.
fn chain_constraint(gen: &mut VarGen, n: usize) -> Constraint {
    let vars: Vec<_> = (0..=n).map(|i| gen.fresh(&format!("x{i}"))).collect();
    let mut hyp = Prop::True;
    for w in vars.windows(2) {
        hyp = hyp.and(Prop::le(IExp::var(w[0].clone()), IExp::var(w[1].clone())));
    }
    let concl = Prop::le(IExp::var(vars[0].clone()), IExp::var(vars[n].clone()));
    let mut c = Constraint::Implies(hyp, Box::new(Constraint::Prop(concl)));
    for v in vars.into_iter().rev() {
        c = Constraint::Forall(v, Sort::Int, Box::new(c));
    }
    c
}

fn main() {
    {
        let mut gen = VarGen::new();
        let constraint = bsearch_constraint(&mut gen);
        let solver = Solver::new(SolverOptions::default());
        bench("solver", "bsearch_midpoint", 5, 50, || {
            let outcome = solver.prove(black_box(&constraint), &mut gen);
            assert!(outcome.all_proven());
            outcome.stats.fm_combinations
        });
    }

    for n in [4usize, 8, 16, 32] {
        let mut gen = VarGen::new();
        let constraint = chain_constraint(&mut gen, n);
        let solver = Solver::new(SolverOptions::default());
        bench("solver", &format!("transitivity_chain/{n}"), 3, 20, || {
            let outcome = solver.prove(black_box(&constraint), &mut gen);
            assert!(outcome.all_proven());
            outcome.stats.fm_combinations
        });
    }
}
