//! Tables 2 and 3 — run time with checks vs. without, per benchmark.
//!
//! Each benchmark runs under Criterion twice: in `Checked` mode (every
//! bound/tag check executes) and in `Eliminated` mode (checks at proven
//! sites are skipped). Two per-check cost models reproduce the two
//! platforms of the paper; the summary rows (gain %, checks eliminated) are
//! printed once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml::experiments::{benchmarks, compile_bench, table2, table3, table_rendered};
use dml::{CheckConfig, Mode};
use std::hint::black_box;

const FACTOR: u32 = 1;

fn print_summaries() {
    println!("\n=== Table 2 (low per-check cost model, factor {FACTOR}) ===");
    print!("{}", table_rendered(&table2(FACTOR)));
    println!("\n=== Table 3 (high per-check cost model, factor {FACTOR}) ===");
    print!("{}", table_rendered(&table3(FACTOR)));
}

fn bench_modes(c: &mut Criterion) {
    print_summaries();
    let mut group = c.benchmark_group("table2_3_runtime");
    group.sample_size(10);
    for b in benchmarks() {
        let compiled = compile_bench(&b);
        for (label, mode) in [("checked", Mode::Checked), ("eliminated", Mode::Eliminated)] {
            group.bench_with_input(
                BenchmarkId::new(b.program.name, label),
                &mode,
                |bencher, mode| {
                    bencher.iter(|| {
                        let mut machine = compiled.machine_with(
                            match mode {
                                Mode::Checked => CheckConfig::checked(),
                                Mode::Eliminated => {
                                    CheckConfig::eliminated(Default::default())
                                }
                            }
                            .with_check_cost(4),
                        );
                        black_box((b.run)(&mut machine, FACTOR))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
