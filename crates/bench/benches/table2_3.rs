//! Tables 2 and 3 — run time with checks vs. without, per benchmark.
//!
//! Each benchmark runs twice: in `Checked` mode (every bound/tag check
//! executes) and in `Eliminated` mode (checks at proven sites are skipped).
//! Two per-check cost models reproduce the two platforms of the paper; the
//! summary rows (gain %, checks eliminated) are printed once at startup.

use dml::experiments::{benchmarks, compile_bench, table2, table3, table_rendered};
use dml::{CheckConfig, Mode};
use dml_bench::bench;
use std::hint::black_box;

const FACTOR: u32 = 1;

fn print_summaries() {
    println!("\n=== Table 2 (low per-check cost model, factor {FACTOR}) ===");
    print!("{}", table_rendered(&table2(FACTOR)));
    println!("\n=== Table 3 (high per-check cost model, factor {FACTOR}) ===");
    print!("{}", table_rendered(&table3(FACTOR)));
}

fn main() {
    print_summaries();
    for b in benchmarks() {
        let compiled = compile_bench(&b);
        for (label, mode) in [("checked", Mode::Checked), ("eliminated", Mode::Eliminated)] {
            bench("table2_3_runtime", &format!("{}/{label}", b.program.name), 1, 10, || {
                let mut machine = compiled.machine_with(
                    match mode {
                        Mode::Checked => CheckConfig::checked(),
                        Mode::Eliminated => CheckConfig::eliminated(Default::default()),
                    }
                    .with_check_cost(4),
                );
                black_box((b.run)(&mut machine, FACTOR))
            });
        }
    }
}
