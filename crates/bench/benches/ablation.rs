//! Ablation: Fourier–Motzkin **with vs. without integer tightening**
//! (§3.2's extension of Fourier's method).
//!
//! The summary printed at startup shows, per program, how many goals each
//! variant proves: `bcopy` *requires* tightening (its tail-loop bound
//! `0 ≤ 4·(n div 4)` is only integer-valid), reproducing the paper's remark
//! that the tightening transformation "is used in type-checking an
//! optimized byte copy function".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml::experiments::{bench_source, benchmarks};
use dml::pipeline::compile_with_options;
use dml_solver::system::FourierOptions;
use dml_solver::SolverOptions;
use std::hint::black_box;

fn options(tighten: bool) -> SolverOptions {
    SolverOptions {
        fourier: FourierOptions { tighten, ..FourierOptions::default() },
        ..SolverOptions::default()
    }
}

fn print_summary() {
    println!("\n=== Ablation: integer tightening on/off ===");
    println!("{:<14} {:>14} {:>14}", "program", "verified+T", "verified-T");
    for b in benchmarks() {
        let src = bench_source(&b.program);
        let with = compile_with_options(&src, options(true)).expect("compiles");
        let without = compile_with_options(&src, options(false)).expect("compiles");
        println!(
            "{:<14} {:>14} {:>14}",
            b.program.name,
            if with.fully_verified() { "yes" } else { "NO" },
            if without.fully_verified() { "yes" } else { "NO" },
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    print_summary();
    let mut group = c.benchmark_group("ablation_tightening");
    group.sample_size(10);
    for b in benchmarks() {
        let src = bench_source(&b.program);
        for (label, tighten) in [("with", true), ("without", false)] {
            group.bench_with_input(
                BenchmarkId::new(b.program.name, label),
                &tighten,
                |bencher, &tighten| {
                    bencher.iter(|| {
                        let compiled =
                            compile_with_options(black_box(&src), options(tighten))
                                .expect("compiles");
                        black_box(compiled.stats().solver.fm_combinations)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
