//! Ablation: Fourier–Motzkin **with vs. without integer tightening**
//! (§3.2's extension of Fourier's method).
//!
//! The summary printed at startup shows, per program, how many goals each
//! variant proves: `bcopy` *requires* tightening (its tail-loop bound
//! `0 ≤ 4·(n div 4)` is only integer-valid), reproducing the paper's remark
//! that the tightening transformation "is used in type-checking an
//! optimized byte copy function".

use dml::experiments::{bench_source, benchmarks};
use dml::Compiler;
use dml_bench::bench;
use dml_solver::system::FourierOptions;
use dml_solver::SolverOptions;
use std::hint::black_box;

fn options(tighten: bool) -> SolverOptions {
    SolverOptions::default().with_fourier(FourierOptions { tighten, ..FourierOptions::default() })
}

fn print_summary() {
    println!("\n=== Ablation: integer tightening on/off ===");
    println!("{:<14} {:>14} {:>14}", "program", "verified+T", "verified-T");
    for b in benchmarks() {
        let src = bench_source(&b.program);
        let with = Compiler::new().solver_options(options(true)).compile(&src).expect("compiles");
        let without =
            Compiler::new().solver_options(options(false)).compile(&src).expect("compiles");
        println!(
            "{:<14} {:>14} {:>14}",
            b.program.name,
            if with.fully_verified() { "yes" } else { "NO" },
            if without.fully_verified() { "yes" } else { "NO" },
        );
    }
}

fn main() {
    print_summary();
    for b in benchmarks() {
        let src = bench_source(&b.program);
        for (label, tighten) in [("with", true), ("without", false)] {
            bench("ablation_tightening", &format!("{}/{label}", b.program.name), 1, 10, || {
                let compiled = Compiler::new()
                    .solver_options(options(tighten))
                    .compile(black_box(&src))
                    .expect("compiles");
                compiled.stats().solver.fm_combinations
            });
        }
    }
}
