//! Tables 2–3 on real hardware: native code with checks vs. without.
//!
//! Where `table2_3.rs` reproduces the paper's numbers under the
//! interpreter's per-check *cost model*, this harness measures the real
//! thing: each seed benchmark is compiled twice with `dml-emit` — once
//! all-checked, once with proven sites unchecked — built with
//! `cargo build --release`, and timed on the machine the harness runs on.
//! Both binaries are driven with identical argv (same sizes, same RNG
//! seed), their stdout is diffed byte-for-byte (the differential safety
//! check), and the inner-loop `time_ns` each binary reports on stderr is
//! compared best-of-N.
//!
//! Flags:
//!
//! * `--smoke` — tiny sizes, one run per binary (CI smoke mode);
//! * `--json`  — additionally write `BENCH_native.json` at the repo root.
//!
//! The emitted crates land under `target/native_tables/`; they are
//! dependency-free, so the builds work offline.

use dml::pipeline::Compiler;
use dml_bench::json::Json;
use dml_emit::{emit_program, EmitOptions, Variant};
use dml_types::infer::infer_program;
use std::path::{Path, PathBuf};
use std::process::Command;

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_native.json");
const EMIT_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/native_tables");

/// Per-program workload: (name, full size, full iters, smoke size, smoke
/// iters). Sizes follow the shape of the paper's workloads scaled to
/// modern hardware; quicksort runs one iteration because re-sorting its
/// own (now sorted) output every iteration is the Lomuto worst case.
const WORKLOADS: &[(&str, i64, i64, i64, i64)] = &[
    ("dotprod", 1_000_000, 20, 64, 2),
    ("bcopy", 1_000_000, 20, 64, 2),
    ("binary search", 1_048_576, 100_000, 64, 50),
    ("bubble sort", 2_048, 10, 64, 2),
    ("matrix mult", 200, 2, 8, 1),
    ("queen", 9, 2, 6, 1),
    ("quick sort", 524_288, 1, 64, 1),
    ("hanoi towers", 16, 50, 8, 2),
    ("list access", 1_048_576, 2, 64, 1),
];

const SEED: u64 = 0xDA7A5EED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write_json = args.iter().any(|a| a == "--json");
    let runs = if smoke { 1 } else { 3 };

    let emit_root = PathBuf::from(EMIT_DIR);
    let target_dir = emit_root.join("target");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    let mut programs: Vec<dml_programs::BenchProgram> = vec![dml_programs::dotprod::PROGRAM];
    programs.extend(dml_programs::table_programs());

    let mut rows = Vec::new();
    for p in &programs {
        let Some(&(_, full_size, full_iters, smoke_size, smoke_iters)) =
            WORKLOADS.iter().find(|w| w.0 == p.name)
        else {
            eprintln!("skipping {}: no workload entry", p.name);
            continue;
        };
        let (size, iters) = if smoke { (smoke_size, smoke_iters) } else { (full_size, full_iters) };

        // Compile once; emit both variants from the same verdicts.
        let compiled = Compiler::new()
            .compile(p.source)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", p.name));
        let schemes = infer_program(compiled.program(), compiled.env())
            .unwrap_or_else(|e| panic!("{}: re-inference failed: {e:?}", p.name))
            .schemes;
        let sites = compiled.site_verdicts();
        let proven = sites.iter().filter(|s| s.proven).count();

        let mut times = [u128::MAX, u128::MAX]; // [checked, unchecked]
        let mut outputs: [Option<String>; 2] = [None, None];
        for (vi, variant) in [Variant::Checked, Variant::UncheckedProven].iter().enumerate() {
            let tag = if vi == 0 { "checked" } else { "unchecked" };
            let crate_name = format!("{}_{tag}", dml_emit::sanitize_crate_name(p.name));
            let opts = EmitOptions { variant: *variant, crate_name: crate_name.clone() };
            let emitted = emit_program(compiled.program(), compiled.env(), &schemes, &sites, &opts)
                .unwrap_or_else(|e| panic!("{}: emission failed: {e}", p.name));
            assert!(
                emitted.driver_fallback.is_none(),
                "{}: no benchmark driver: {:?}",
                p.name,
                emitted.driver_fallback
            );
            let dir = emit_root.join(&crate_name);
            dml_emit::write_crate(&emitted, &dir).expect("write emitted crate");
            build_release(&cargo, &dir, &target_dir, p.name);
            let bin = target_dir.join("release").join(&crate_name);
            for _ in 0..runs {
                let (stdout, time_ns) = run_once(&bin, size, iters, p.name);
                match &outputs[vi] {
                    None => outputs[vi] = Some(stdout),
                    Some(prev) => {
                        assert_eq!(prev, &stdout, "{}: nondeterministic output across runs", p.name)
                    }
                }
                times[vi] = times[vi].min(time_ns);
            }
        }
        // The differential check: byte-identical stdout across variants.
        assert_eq!(
            outputs[0], outputs[1],
            "{}: checked and proven-unchecked outputs differ",
            p.name
        );

        let (c, u) = (times[0], times[1]);
        let speedup = if c > 0 { (c as f64 - u as f64) / c as f64 * 100.0 } else { 0.0 };
        println!(
            "native_tables/{}: checked {:.3} ms, unchecked {:.3} ms, gain {:+.1}%  ({} of {} sites proven)",
            p.name,
            c as f64 / 1e6,
            u as f64 / 1e6,
            speedup,
            proven,
            sites.len()
        );
        rows.push(Json::obj([
            ("name", Json::Str(p.name.to_string())),
            ("size", Json::Int(size)),
            ("iters", Json::Int(iters)),
            ("sites_total", Json::Int(sites.len() as i64)),
            ("sites_proven", Json::Int(proven as i64)),
            ("checked_ns", Json::Int(c as i64)),
            ("unchecked_ns", Json::Int(u as i64)),
            ("gain_pct", Json::Num((speedup * 10.0).round() / 10.0)),
        ]));
    }

    if write_json {
        let report = Json::obj([
            ("bench", Json::Str("native_tables".to_string())),
            ("smoke", Json::Bool(smoke)),
            ("runs_per_variant", Json::Int(runs as i64)),
            ("seed", Json::Int(SEED as i64)),
            ("programs", Json::Array(rows)),
        ]);
        std::fs::write(REPORT_PATH, report.render() + "\n").expect("write BENCH_native.json");
        println!("wrote {REPORT_PATH}");
    }
}

fn build_release(cargo: &str, dir: &Path, target_dir: &Path, name: &str) {
    let out = Command::new(cargo)
        .args(["build", "--release", "--quiet"])
        .current_dir(dir)
        .env("CARGO_TARGET_DIR", target_dir)
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "{name}: release build failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs one emitted binary; returns (stdout, inner-loop nanoseconds).
fn run_once(bin: &Path, size: i64, iters: i64, name: &str) -> (String, u128) {
    let out = Command::new(bin)
        .args([size.to_string(), iters.to_string(), SEED.to_string()])
        .output()
        .unwrap_or_else(|e| panic!("{name}: cannot run {}: {e}", bin.display()));
    assert!(
        out.status.success(),
        "{name}: emitted binary failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let time_ns = stderr
        .lines()
        .find_map(|l| l.strip_prefix("time_ns "))
        .and_then(|v| v.trim().parse::<u128>().ok())
        .unwrap_or_else(|| panic!("{name}: no time_ns on stderr:\n{stderr}"));
    (String::from_utf8_lossy(&out.stdout).into_owned(), time_ns)
}
