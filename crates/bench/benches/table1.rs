//! Table 1 — constraint generation and solving statistics.
//!
//! For each benchmark program, measures the full front-end (parse, ML
//! inference, dependent elaboration, constraint solving), the quantities in
//! the paper's Table 1. The rendered table is printed once at startup.

use dml::experiments::{bench_source, benchmarks, table1_rendered};
use dml_bench::bench;
use std::hint::black_box;

fn main() {
    println!("\n=== Table 1 (paper: constraints / gen+solve time / annotations / size) ===");
    print!("{}", table1_rendered());

    for b in benchmarks() {
        let src = bench_source(&b.program);
        bench("table1_typecheck", b.program.name, 2, 10, || {
            let compiled = dml::Compiler::new().compile(black_box(&src)).expect("compiles");
            assert!(compiled.fully_verified());
            compiled.stats().constraints
        });
    }
}
