//! Table 1 — constraint generation and solving statistics.
//!
//! For each benchmark program, measures the full front-end (parse, ML
//! inference, dependent elaboration, constraint solving), the quantities in
//! the paper's Table 1. The rendered table is printed once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml::experiments::{bench_source, benchmarks, table1_rendered};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    println!("\n=== Table 1 (paper: constraints / gen+solve time / annotations / size) ===");
    print!("{}", table1_rendered());

    let mut group = c.benchmark_group("table1_typecheck");
    group.sample_size(10);
    for b in benchmarks() {
        let src = bench_source(&b.program);
        group.bench_with_input(
            BenchmarkId::from_parameter(b.program.name),
            &src,
            |bencher, src| {
                bencher.iter(|| {
                    let compiled = dml::compile(black_box(src)).expect("compiles");
                    assert!(compiled.fully_verified());
                    black_box(compiled.stats().constraints)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
