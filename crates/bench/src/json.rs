//! A minimal JSON value builder for machine-readable bench reports.
//!
//! The workspace takes no third-party dependencies, so `BENCH_solver.json`
//! is assembled with this hand-rolled builder instead of serde. It covers
//! exactly what bench reports need: objects (insertion-ordered), arrays,
//! strings, numbers, and booleans.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string (escaped on render).
    Str(String),
    /// A float rendered with enough precision for millisecond timings.
    Num(f64),
    /// An integer (kept separate so counters render without a decimal).
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Num(n) => {
                if n.is_finite() {
                    // Enough digits for sub-microsecond timings in ms.
                    let _ = write!(out, "{n:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj([
            ("name", Json::Str("bcopy".into())),
            ("solve_ms", Json::Num(0.25)),
            ("goals", Json::Int(26)),
            ("ok", Json::Bool(true)),
            ("runs", Json::Array(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"bcopy","solve_ms":0.250000,"goals":26,"ok":true,"runs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
