//! Shared helpers for the Criterion benchmark harness; the benches live in
//! `benches/` and regenerate the paper's tables and figures. See
//! `EXPERIMENTS.md` at the repository root.
