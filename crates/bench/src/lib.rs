//! Shared helpers for the benchmark harness; the benches live in
//! `benches/` and regenerate the paper's tables and figures. See
//! `EXPERIMENTS.md` at the repository root.
//!
//! The harness is self-contained (no external benchmarking crates): each
//! benchmark runs a warm-up pass, then a fixed number of timed iterations,
//! and reports min/mean/max wall-clock time per iteration.

pub mod json;
pub mod rss;

use std::time::{Duration, Instant};

/// Timing summary of one benchmark: per-iteration wall-clock statistics.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Timed iterations measured.
    pub iters: usize,
}

/// Measures `f` and prints a one-line summary under `group/name`.
///
/// Runs `warmup` untimed iterations followed by `iters` timed ones. The
/// closure's return value is consumed with [`std::hint::black_box`] so the
/// optimiser cannot elide the work.
pub fn bench<T>(group: &str, name: &str, warmup: usize, iters: usize, f: impl FnMut() -> T) {
    bench_timed(group, name, warmup, iters, f);
}

/// Like [`bench()`], but also returns the [`Summary`] so machine-readable
/// reports (e.g. `BENCH_solver.json`) can be assembled from the same run
/// that produced the human-readable line.
pub fn bench_timed<T>(
    group: &str,
    name: &str,
    warmup: usize,
    iters: usize,
    mut f: impl FnMut() -> T,
) -> Summary {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{name}: mean {}  min {}  max {}  ({} iters)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
    Summary { mean, min, max, iters: samples.len() }
}

/// Renders a duration with an adaptive unit.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut count = 0u32;
        bench("test", "counter", 1, 3, || {
            count += 1;
            count
        });
        assert_eq!(count, 4, "1 warmup + 3 timed iterations");
    }

    #[test]
    fn bench_timed_reports_samples() {
        let s = bench_timed("test", "timed", 0, 5, || std::hint::black_box(2 + 2));
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn duration_units() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(11)).ends_with(" s"));
    }
}
