//! Peak-RSS measurement for the throughput benches (Linux `/proc`).
//!
//! `VmHWM` in `/proc/self/status` is the process's resident-set
//! high-water mark. It is monotone for the life of the process, but the
//! kernel lets a sufficiently privileged process reset it by writing `5`
//! to `/proc/self/clear_refs` — which is what lets one bench process
//! attribute a peak to each measured configuration. When the reset is
//! unavailable (non-Linux, or insufficient privilege), readings are
//! still returned but stay monotone across configs; reports flag this
//! via [`reset_peak`]'s return value so consumers don't over-interpret
//! per-config numbers.

/// Current peak RSS in bytes, or `None` where `/proc` is unavailable.
pub fn peak_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Attempts to reset the peak-RSS watermark; `true` when the write
/// succeeded (subsequent [`peak_bytes`] readings are per-interval).
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_readable_on_proc_systems() {
        // On Linux the reading must exist and be sane; elsewhere `None`
        // is the contract.
        if let Some(bytes) = peak_bytes() {
            assert!(bytes > 1024 * 1024, "peak RSS {bytes} implausibly small");
        }
    }

    #[test]
    fn reset_then_touch_still_reports_something() {
        let _ = reset_peak();
        // Touch a few MB so the watermark is re-established post-reset.
        let v = vec![1u8; 4 << 20];
        std::hint::black_box(&v);
        if peak_bytes().is_none() {
            // Non-/proc platform: nothing further to assert.
            return;
        }
        assert!(peak_bytes().unwrap() > 0);
    }
}
