//! The interval abstract domain with symbolic [`Lin`] bounds.
//!
//! Values are `[lo, hi]` with bounds drawn from `Lin ∪ {−∞, +∞}`. The
//! domain is non-relational, so joins and arithmetic lose relations
//! between variables; the midpoint special cases in `absint` recover the
//! one relational fact binary search needs. Where a comparison between
//! bounds is undecidable the operations pick the conservative answer
//! (wider intervals, fewer narrowings) — imprecision here only costs
//! inference coverage, never soundness, because the solver re-proves
//! every candidate.

use crate::lin::{Lin, SymTable};

/// One end of an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// −∞ (as a lower bound) — no information.
    NegInf,
    /// A finite symbolic bound.
    Fin(Lin),
    /// +∞ (as an upper bound) — no information.
    PosInf,
}

impl Bound {
    /// The finite bound, if any.
    pub fn fin(&self) -> Option<&Lin> {
        match self {
            Bound::Fin(l) => Some(l),
            _ => None,
        }
    }
}

/// An interval `[lo, hi]`. Empty intervals are not represented — the
/// analysis snaps to `top()` instead of tracking unreachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound.
    pub hi: Bound,
}

impl Interval {
    /// The unconstrained interval `[−∞, +∞]`.
    pub fn top() -> Interval {
        Interval { lo: Bound::NegInf, hi: Bound::PosInf }
    }

    /// The exact singleton `[e, e]`.
    pub fn exact(e: Lin) -> Interval {
        Interval { lo: Bound::Fin(e.clone()), hi: Bound::Fin(e) }
    }

    /// The constant singleton.
    pub fn lit(k: i64) -> Interval {
        Interval::exact(Lin::lit(k))
    }

    /// `[lo, hi]` from optional finite ends.
    pub fn of(lo: Option<Lin>, hi: Option<Lin>) -> Interval {
        Interval {
            lo: lo.map_or(Bound::NegInf, Bound::Fin),
            hi: hi.map_or(Bound::PosInf, Bound::Fin),
        }
    }

    /// The exact value when `lo = hi`.
    pub fn as_exact(&self) -> Option<&Lin> {
        match (&self.lo, &self.hi) {
            (Bound::Fin(a), Bound::Fin(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Join (convex hull). Bounds that cannot be compared syntactically
    /// widen to ±∞.
    pub fn join(&self, o: &Interval, syms: &SymTable) -> Interval {
        let lo = match (&self.lo, &o.lo) {
            (Bound::Fin(a), Bound::Fin(b)) => match (a.le(b, syms), b.le(a, syms)) {
                (Some(true), _) => Bound::Fin(a.clone()),
                (_, Some(true)) => Bound::Fin(b.clone()),
                _ => Bound::NegInf,
            },
            _ => Bound::NegInf,
        };
        let hi = match (&self.hi, &o.hi) {
            (Bound::Fin(a), Bound::Fin(b)) => match (a.le(b, syms), b.le(a, syms)) {
                (_, Some(true)) => Bound::Fin(a.clone()),
                (Some(true), _) => Bound::Fin(b.clone()),
                _ => Bound::PosInf,
            },
            _ => Bound::PosInf,
        };
        Interval { lo, hi }
    }

    /// Syntactic inclusion `self ⊑ o` — `false` when undecidable.
    pub fn subsumed_by(&self, o: &Interval, syms: &SymTable) -> bool {
        let lo_ok = match (&o.lo, &self.lo) {
            (Bound::NegInf, _) => true,
            (Bound::Fin(ol), Bound::Fin(sl)) => ol.le(sl, syms) == Some(true),
            _ => false,
        };
        let hi_ok = match (&o.hi, &self.hi) {
            (Bound::PosInf, _) => true,
            (Bound::Fin(oh), Bound::Fin(sh)) => sh.le(oh, syms) == Some(true),
            _ => false,
        };
        lo_ok && hi_ok
    }

    /// Pointwise addition.
    pub fn add(&self, o: &Interval) -> Interval {
        let lo = match (&self.lo, &o.lo) {
            (Bound::Fin(a), Bound::Fin(b)) => a.add(b).map_or(Bound::NegInf, Bound::Fin),
            _ => Bound::NegInf,
        };
        let hi = match (&self.hi, &o.hi) {
            (Bound::Fin(a), Bound::Fin(b)) => a.add(b).map_or(Bound::PosInf, Bound::Fin),
            _ => Bound::PosInf,
        };
        Interval { lo, hi }
    }

    /// Pointwise subtraction (`self - o` flips `o`'s ends).
    pub fn sub(&self, o: &Interval) -> Interval {
        let lo = match (&self.lo, &o.hi) {
            (Bound::Fin(a), Bound::Fin(b)) => a.sub(b).map_or(Bound::NegInf, Bound::Fin),
            _ => Bound::NegInf,
        };
        let hi = match (&self.hi, &o.lo) {
            (Bound::Fin(a), Bound::Fin(b)) => a.sub(b).map_or(Bound::PosInf, Bound::Fin),
            _ => Bound::PosInf,
        };
        Interval { lo, hi }
    }

    /// Multiplication by a constant.
    pub fn scale(&self, c: i64) -> Interval {
        if c == 0 {
            return Interval::lit(0);
        }
        let scale_bound = |b: &Bound| match b {
            Bound::Fin(l) => l.scale(c).map(Bound::Fin),
            _ => None,
        };
        let (a, b) = (scale_bound(&self.lo), scale_bound(&self.hi));
        if c > 0 {
            Interval { lo: a.unwrap_or(Bound::NegInf), hi: b.unwrap_or(Bound::PosInf) }
        } else {
            Interval { lo: b.unwrap_or(Bound::NegInf), hi: a.unwrap_or(Bound::PosInf) }
        }
    }

    /// Flooring division by a positive constant `d`.
    ///
    /// Exact when both ends divide evenly; otherwise each end falls back
    /// to the best *decidable* approximation: a constant `c` with
    /// `c·d <= e` for the lower end (sound: `floor(e/d) >= c`), and the
    /// numerator itself for the upper end when it is decidably
    /// nonnegative (`floor(e/d) <= e` for `e >= 0`, `d >= 1`).
    pub fn fdiv(&self, d: i64, syms: &SymTable) -> Interval {
        if d <= 0 {
            return Interval::top();
        }
        let lo = match &self.lo {
            Bound::Fin(e) => match e.div_exact(d) {
                Some(q) => Bound::Fin(q),
                None => match e.as_const() {
                    Some(k) => Bound::Fin(Lin::lit(k.div_euclid(d))),
                    // Largest constant c with c*d <= e decidable; try a
                    // couple of small candidates (0 and -1 cover the
                    // `n div 4`-style numerators the corpus produces).
                    None => [0i64, -1]
                        .iter()
                        .find(|c| Lin::lit(*c * d).le(e, syms) == Some(true))
                        .map_or(Bound::NegInf, |c| Bound::Fin(Lin::lit(*c))),
                },
            },
            _ => Bound::NegInf,
        };
        let hi = match &self.hi {
            Bound::Fin(e) => match e.div_exact(d) {
                Some(q) => Bound::Fin(q),
                None => match e.as_const() {
                    Some(k) => Bound::Fin(Lin::lit(k.div_euclid(d))),
                    None => {
                        if e.nonneg(syms) == Some(true) {
                            Bound::Fin(e.clone())
                        } else {
                            Bound::PosInf
                        }
                    }
                },
            },
            _ => Bound::PosInf,
        };
        Interval { lo, hi }
    }

    /// Meet with `x <= e`: tightens the upper bound when decidable.
    pub fn clamp_hi(&self, e: &Lin, syms: &SymTable) -> Interval {
        let hi = match &self.hi {
            Bound::Fin(h) if h.le(e, syms) == Some(true) => Bound::Fin(h.clone()),
            _ => Bound::Fin(e.clone()),
        };
        Interval { lo: self.lo.clone(), hi }
    }

    /// Meet with `x >= e`: tightens the lower bound when decidable.
    pub fn clamp_lo(&self, e: &Lin, syms: &SymTable) -> Interval {
        let lo = match &self.lo {
            Bound::Fin(l) if e.le(l, syms) == Some(true) => Bound::Fin(l.clone()),
            _ => Bound::Fin(e.clone()),
        };
        Interval { lo, hi: self.hi.clone() }
    }

    /// Occurrence-style narrowing for `x ≠ e` (the `if i = n … else …`
    /// loop-exit shape): when an end of the interval is *exactly* `e` the
    /// disequality shaves it by one.
    pub fn shave_ne(&self, e: &Lin) -> Interval {
        let mut out = self.clone();
        if let Bound::Fin(h) = &out.hi {
            if h == e {
                out.hi = h.sub(&Lin::lit(1)).map_or(Bound::PosInf, Bound::Fin);
            }
        }
        if let Bound::Fin(l) = &out.lo {
            if l == e {
                out.lo = l.add(&Lin::lit(1)).map_or(Bound::NegInf, Bound::Fin);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_widens_incomparable_bounds() {
        let mut t = SymTable::new();
        let n = t.fresh("n", true);
        let a = Interval::lit(1);
        let b = Interval::exact(Lin::sym(n));
        let j = a.join(&b, &t);
        // lo: min(1, n) undecidable -> -inf is wrong only for precision;
        // but 0 <= n and 0 <= 1 are not the bounds here: 1 vs n is
        // undecidable both ways, so lo widens.
        assert_eq!(j.lo, Bound::NegInf);
        assert_eq!(j.hi, Bound::PosInf);
        // 0 vs n: decidable (n nonneg).
        let z = Interval::lit(0);
        let j2 = z.join(&b, &t);
        assert_eq!(j2.lo, Bound::Fin(Lin::lit(0)));
        assert_eq!(j2.hi, Bound::Fin(Lin::sym(n)));
    }

    #[test]
    fn shave_ne_trims_exact_end() {
        let mut t = SymTable::new();
        let n = t.fresh("n", true);
        let i = Interval::of(Some(Lin::lit(0)), Some(Lin::sym(n)));
        let shaved = i.shave_ne(&Lin::sym(n));
        assert_eq!(shaved.hi, Bound::Fin(Lin::sym(n).sub(&Lin::lit(1)).unwrap()));
        assert_eq!(shaved.lo, Bound::Fin(Lin::lit(0)));
    }

    #[test]
    fn fdiv_exact_and_fallback() {
        let mut t = SymTable::new();
        let n = t.fresh("n", true);
        let two_n = Interval::exact(Lin::sym(n).scale(2).unwrap());
        let q = two_n.fdiv(2, &t);
        assert_eq!(q.as_exact(), Some(&Lin::sym(n)));
        // n div 4: inexact; lower end falls back to 0 (n >= 0), upper to n.
        let nn = Interval::exact(Lin::sym(n));
        let q4 = nn.fdiv(4, &t);
        assert_eq!(q4.lo, Bound::Fin(Lin::lit(0)));
        assert_eq!(q4.hi, Bound::Fin(Lin::sym(n)));
    }
}
