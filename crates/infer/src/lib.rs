//! `dml-infer` — interval abstract interpretation that synthesizes and
//! solver-verifies range refinements for DML programs.
//!
//! The paper's workflow asks the programmer to write `where`-clauses; in
//! practice most of them follow mechanically from the code. This crate
//! closes the loop:
//!
//! 1. [`absint`] runs a flow-sensitive interval analysis over each
//!    top-level function: parameters become symbols, branch conditions
//!    narrow occurrence-style, and recursive local functions iterate to a
//!    fixpoint with threshold widening.
//! 2. [`synth`] turns the fixpoint entry states into candidate
//!    annotations — facts-only singleton types for the outer function,
//!    guarded quantifiers for the locals.
//! 3. [`verify`] applies the candidates to a clone of the AST and re-runs
//!    the production elaborate + solve pipeline: a candidate group
//!    survives only when the refined program still type-checks and
//!    strictly fewer bound checks remain.
//!
//! The abstract domain is deliberately *untrusted*: a bug here can cost
//! coverage (a rejected candidate), never soundness, because every
//! refinement that reaches the user was proved by the same solver that
//! gates check elimination. Sites the domain cannot handle — the
//! nonlinear `i*j` index in `examples/residual.dml`, preconditions the
//! callee cannot know — are left untouched and reported honestly.

#![deny(missing_docs)]

pub mod absint;
pub mod interval;
pub mod lin;
pub mod synth;
pub mod verify;

use dml_index::VarGen;
use dml_solver::Solver;
use dml_syntax::ast::{self as sast};
use dml_syntax::Span;
use dml_types::builtins::base_env;
use std::collections::BTreeMap;

pub use absint::{analyze_decl, DeclAnalysis, Namer};
pub use synth::{synthesize, Candidate, DeclCandidates};
pub use verify::{apply_candidates, check_program, strip_annotations, MiniCheck};

/// One accepted, solver-verified annotation.
#[derive(Debug, Clone)]
pub struct AcceptedAnno {
    /// Function name.
    pub fun: String,
    /// The annotation type, pretty-printed.
    pub rendered: String,
    /// Full fix-it text (`where f <| …`, preceded by a newline).
    pub fixit: String,
    /// Byte offset where the fix-it inserts.
    pub insert_at: u32,
    /// Span of the function's name identifier.
    pub name_span: Span,
}

/// A candidate the verifier rejected, with the reason.
#[derive(Debug, Clone)]
pub struct RejectedAnno {
    /// Function name.
    pub fun: String,
    /// The candidate annotation, pretty-printed.
    pub rendered: String,
    /// Why it was dropped.
    pub reason: String,
}

/// The outcome of inference over a whole program.
#[derive(Debug)]
pub struct InferReport {
    /// Residual check sites before inference.
    pub before: usize,
    /// Residual check sites after applying the accepted annotations.
    pub after: usize,
    /// Accepted (solver-verified) annotations, in program order.
    pub accepted: Vec<AcceptedAnno>,
    /// Rejected candidates with reasons.
    pub rejected: Vec<RejectedAnno>,
    /// Residual sites remaining after inference, with a human description
    /// of why each check stays (e.g. a nonlinear index).
    pub residual_sites: Vec<(Span, String)>,
    /// Top-level declarations whose fixpoint hit the round budget.
    pub nonconverged: Vec<String>,
}

/// [`InferReport`] plus the refined AST it describes.
#[derive(Debug)]
pub struct InferOutcome {
    /// The report.
    pub report: InferReport,
    /// The program with accepted annotations attached (spans unchanged).
    pub refined: sast::Program,
    /// The accepted candidates themselves.
    pub accepted: Vec<Candidate>,
}

/// Runs the full propose–verify loop on a parsed program.
///
/// Returns an error only when the *unrefined* program fails phase 1 or
/// elaboration — inference needs a well-typed baseline to compare
/// against. Solver failures on candidates are not errors; they turn into
/// rejections.
pub fn infer_refinements(program: &sast::Program, solver: &Solver) -> Result<InferOutcome, String> {
    // Phase-1 schemes for every function (top-level and local).
    let mut gen = VarGen::new();
    let mut env = base_env(&mut gen);
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => {
                env.add_datatype(dd, &mut gen).map_err(|e| e.message)?;
            }
            sast::Decl::Typeref(tr) => {
                env.add_typeref(tr, &mut gen).map_err(|e| e.message)?;
            }
            sast::Decl::Assert(sigs) => {
                env.add_assert(sigs, &dml_types::builtins::check_kind, &mut gen)
                    .map_err(|e| e.message)?;
            }
            _ => {}
        }
    }
    let phase1 = dml_types::infer_program(program, &env).map_err(|e| e.message)?;
    let schemes: BTreeMap<Span, dml_types::MlScheme> =
        phase1.schemes.iter().map(|(s, sc)| (*s, sc.clone())).collect();

    let baseline = check_program(program, solver)?;
    let before = baseline.residual_sites.len();

    // Propose per top-level declaration.
    let mut namer = Namer::new(program);
    let mut groups: Vec<DeclCandidates> = Vec::new();
    for d in &program.decls {
        let sast::Decl::Fun(group) = d else { continue };
        if group.len() != 1 {
            continue;
        }
        if let Some(analysis) = analyze_decl(&group[0], &schemes, &mut namer) {
            let cands = synthesize(&analysis, &mut namer);
            if !cands.candidates.is_empty() || !cands.converged {
                groups.push(cands);
            }
        }
    }

    // Verify greedily, one declaration group at a time.
    let mut working = program.clone();
    let mut working_residuals = baseline.residual_sites.clone();
    let mut working_detail = baseline.residual_detail.clone();
    let mut accepted: Vec<Candidate> = Vec::new();
    let mut accepted_report = Vec::new();
    let mut rejected = Vec::new();
    let mut nonconverged = Vec::new();
    for group in groups {
        if !group.converged {
            nonconverged.push(group.decl_name.clone());
        }
        let mut live = group.candidates;
        let mut dropped: Vec<RejectedAnno> = Vec::new();
        let verified = loop {
            if live.is_empty() {
                break None;
            }
            let mut trial = working.clone();
            apply_candidates(&mut trial, &live);
            match check_program(&trial, solver) {
                Err(e) => {
                    // Elaboration rejected the annotations outright
                    // (e.g. ill-scoped index variable). Drop the group.
                    for c in live.drain(..) {
                        dropped.push(RejectedAnno {
                            fun: c.fun_name,
                            rendered: c.rendered,
                            reason: format!("refined program failed to elaborate: {e}"),
                        });
                    }
                }
                Ok(check) if !check.non_check_ok => {
                    // Drop candidates for the failing functions and retry
                    // with the rest. If none of the failing functions has
                    // a candidate the group as a whole is unprovable.
                    let mut any = false;
                    live.retain(|c| {
                        let failing = check.failing_funs.contains(&c.fun_name);
                        if failing {
                            any = true;
                            dropped.push(RejectedAnno {
                                fun: c.fun_name.clone(),
                                rendered: c.rendered.clone(),
                                reason: format!(
                                    "solver could not verify the refinement (non-check \
                                     obligation failed in `{}`)",
                                    c.fun_name
                                ),
                            });
                        }
                        !failing
                    });
                    if !any {
                        for c in live.drain(..) {
                            dropped.push(RejectedAnno {
                                fun: c.fun_name,
                                rendered: c.rendered,
                                reason: "solver could not verify the refined program".to_string(),
                            });
                        }
                    }
                }
                Ok(check) => {
                    let subset = check.residual_sites.is_subset(&working_residuals);
                    let fewer = check.residual_sites.len() < working_residuals.len();
                    if subset && fewer {
                        break Some(check);
                    }
                    let reason = if subset {
                        "verified but did not eliminate any residual bound check"
                    } else {
                        "would regress a previously proven bound check"
                    };
                    for c in live.drain(..) {
                        dropped.push(RejectedAnno {
                            fun: c.fun_name,
                            rendered: c.rendered,
                            reason: reason.to_string(),
                        });
                    }
                }
            }
        };
        if let Some(check) = verified {
            apply_candidates(&mut working, &live);
            working_residuals = check.residual_sites;
            working_detail = check.residual_detail;
            for c in &live {
                accepted_report.push(AcceptedAnno {
                    fun: c.fun_name.clone(),
                    rendered: c.rendered.clone(),
                    fixit: c.fixit_text(),
                    insert_at: c.insert_at,
                    name_span: c.name_span,
                });
            }
            accepted.extend(live);
        }
        rejected.extend(dropped);
    }

    let residual_sites: Vec<(Span, String)> = working_residuals
        .iter()
        .map(|s| {
            let d = working_detail.get(s).cloned().unwrap_or_default();
            (*s, d)
        })
        .collect();
    let report = InferReport {
        before,
        after: working_residuals.len(),
        accepted: accepted_report,
        rejected,
        residual_sites,
        nonconverged,
    };
    Ok(InferOutcome { report, refined: working, accepted })
}

impl InferReport {
    /// Human-readable rendering, with `line:col` positions resolved
    /// against `src`.
    pub fn render_human(&self, src: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "inference: {} residual check{} before, {} after",
            self.before,
            if self.before == 1 { "" } else { "s" },
            self.after
        );
        if self.accepted.is_empty() {
            let _ = writeln!(out, "no annotations inferred");
        }
        for a in &self.accepted {
            let _ = writeln!(out, "inferred  where {} <| {}", a.fun, a.rendered);
        }
        for r in &self.rejected {
            let _ = writeln!(out, "rejected  {} <| {}", r.fun, r.rendered);
            let _ = writeln!(out, "          ({})", r.reason);
        }
        for (span, why) in &self.residual_sites {
            let _ =
                writeln!(out, "residual  at {}: {}", dml_syntax::line_col(src, span.start), why);
        }
        for n in &self.nonconverged {
            let _ = writeln!(out, "note      fixpoint for `{n}` hit the round budget");
        }
        out
    }

    /// Machine-readable JSON rendering (stable key order, no external
    /// dependencies).
    pub fn render_json(&self, src: &str) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"before\":{},\"after\":{},", self.before, self.after));
        out.push_str("\"accepted\":[");
        for (i, a) in self.accepted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fun\":{},\"anno\":{},\"insert_at\":{}}}",
                json_str(&a.fun),
                json_str(&a.rendered),
                a.insert_at
            ));
        }
        out.push_str("],\"rejected\":[");
        for (i, r) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fun\":{},\"anno\":{},\"reason\":{}}}",
                json_str(&r.fun),
                json_str(&r.rendered),
                json_str(&r.reason)
            ));
        }
        out.push_str("],\"residuals\":[");
        for (i, (span, why)) in self.residual_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at\":{},\"why\":{}}}",
                json_str(&dml_syntax::line_col(src, span.start).to_string()),
                json_str(why)
            ));
        }
        out.push_str("],\"nonconverged\":[");
        for (i, n) in self.nonconverged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> Solver {
        Solver::new(dml_solver::SolverOptions::default())
    }

    const ASUM_BARE: &str = r#"
fun asum v =
  let
    fun loop (i, n, s) =
      if i = n then s
      else loop (i + 1, n, s + sub(v, i))
  in
    loop (0, length v, 0)
  end
"#;

    #[test]
    fn infers_loop_invariant_for_asum() {
        let program = dml_syntax::parse_program(ASUM_BARE).unwrap();
        let out = infer_refinements(&program, &solver()).unwrap();
        assert!(out.report.before > 0, "bare asum must start with residuals");
        assert_eq!(
            out.report.after,
            0,
            "asum should reach zero residuals; report:\n{}",
            out.report.render_human(ASUM_BARE)
        );
        assert!(out.report.accepted.iter().any(|a| a.fun == "loop"));
    }

    #[test]
    fn strip_roundtrip_reparses() {
        let src = "fun f(v) = sub(v, 0)\nwhere f <| {n:nat | n > 0} int array(n) -> int\n";
        let stripped = strip_annotations(src).unwrap();
        assert!(!stripped.contains("where"), "{stripped}");
        dml_syntax::parse_program(&stripped).unwrap();
    }

    #[test]
    fn report_json_is_wellformed() {
        let program = dml_syntax::parse_program(ASUM_BARE).unwrap();
        let out = infer_refinements(&program, &solver()).unwrap();
        let json = out.report.render_json(ASUM_BARE);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"accepted\""));
    }
}
