//! Symbolic linear expressions — the bound language of the interval
//! domain.
//!
//! A [`Lin`] is `k + Σ cᵢ·sᵢ` over a table of *symbols*: unknowns that
//! stand for the sizes of array parameters and the values of integer
//! parameters of the function group under analysis. Bounds stay exact
//! only while they remain linear in these symbols; everything else falls
//! out of the representable fragment and widens to ±∞ — which is fine,
//! because the abstract domain is never trusted: every synthesized
//! refinement is re-proved by the production solver before it is applied.
//!
//! Comparisons between two `Lin`s are *syntactically decidable* only when
//! their difference is a constant, or when it is a nonnegative combination
//! of symbols known to be nonnegative (array sizes). Everything else is
//! "unknown", which the interval operations treat conservatively.

use std::collections::BTreeMap;
use std::fmt;

/// A symbol identifier: an index into [`SymTable`].
pub type SymId = u32;

/// What a symbol stands for, and how to render it in a synthesized
/// annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Surface index-variable name this symbol renders as (either an
    /// existing annotation variable or a freshly synthesized one).
    pub name: String,
    /// Whether the symbol is known nonnegative (array sizes, `nat`-sorted
    /// annotation variables).
    pub nonneg: bool,
}

/// The symbol table of one analysis run. Symbols are append-only so
/// `SymId`s stay stable.
#[derive(Debug, Clone, Default)]
pub struct SymTable {
    syms: Vec<Symbol>,
}

impl SymTable {
    /// Creates an empty table.
    pub fn new() -> SymTable {
        SymTable::default()
    }

    /// Interns a new symbol and returns its id.
    pub fn fresh(&mut self, name: impl Into<String>, nonneg: bool) -> SymId {
        let id = self.syms.len() as SymId;
        self.syms.push(Symbol { name: name.into(), nonneg });
        id
    }

    /// Looks a symbol up.
    pub fn get(&self, id: SymId) -> &Symbol {
        &self.syms[id as usize]
    }

    /// Iterates over all symbols in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, &Symbol)> {
        self.syms.iter().enumerate().map(|(i, s)| (i as SymId, s))
    }
}

/// A linear expression `k + Σ cᵢ·sᵢ` (no zero coefficients stored).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lin {
    /// Constant term.
    pub k: i64,
    /// Coefficient per symbol, zero coefficients removed.
    pub terms: BTreeMap<SymId, i64>,
}

impl Lin {
    /// The constant `k`.
    pub fn lit(k: i64) -> Lin {
        Lin { k, terms: BTreeMap::new() }
    }

    /// The symbol `s` with coefficient 1.
    pub fn sym(s: SymId) -> Lin {
        Lin { k: 0, terms: BTreeMap::from([(s, 1)]) }
    }

    /// Whether the expression is a plain constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.k)
    }

    /// `self + o`, `None` on overflow.
    pub fn add(&self, o: &Lin) -> Option<Lin> {
        let k = self.k.checked_add(o.k)?;
        let mut terms = self.terms.clone();
        for (s, c) in &o.terms {
            let e = terms.entry(*s).or_insert(0);
            *e = e.checked_add(*c)?;
            if *e == 0 {
                terms.remove(s);
            }
        }
        Some(Lin { k, terms })
    }

    /// `self - o`, `None` on overflow.
    pub fn sub(&self, o: &Lin) -> Option<Lin> {
        self.add(&o.scale(-1)?)
    }

    /// `self * c` (may be zero or negative); `None` on overflow.
    pub fn scale(&self, c: i64) -> Option<Lin> {
        if c == 0 {
            return Some(Lin::lit(0));
        }
        let k = self.k.checked_mul(c)?;
        let mut terms = BTreeMap::new();
        for (s, coef) in &self.terms {
            terms.insert(*s, coef.checked_mul(c)?);
        }
        Some(Lin { k, terms })
    }

    /// Exact division by a positive constant, only when every coefficient
    /// and the constant are divisible.
    pub fn div_exact(&self, d: i64) -> Option<Lin> {
        if d <= 0 || self.k % d != 0 || self.terms.values().any(|c| c % d != 0) {
            return None;
        }
        Some(Lin { k: self.k / d, terms: self.terms.iter().map(|(s, c)| (*s, c / d)).collect() })
    }

    /// Decides `self >= 0` syntactically: true when the constant is
    /// nonnegative and every term is a nonnegative coefficient on a
    /// known-nonnegative symbol. Returns `None` when undecidable.
    pub fn nonneg(&self, syms: &SymTable) -> Option<bool> {
        if self.k >= 0 && self.terms.iter().all(|(s, c)| *c >= 0 && syms.get(*s).nonneg) {
            return Some(true);
        }
        // Decidably negative: constant < 0 and every term nonpositive on a
        // nonnegative symbol can still be >= 0 only if symbols conspire —
        // but with all coefficients <= 0 and k < 0 the value is < 0 ... no:
        // nonneg symbols with nonpositive coefficients only decrease the
        // value, so k < 0 forces the total below zero.
        if self.k < 0 && self.terms.iter().all(|(s, c)| *c <= 0 && syms.get(*s).nonneg) {
            return Some(false);
        }
        None
    }

    /// Decides `self <= o`: `Some(true)`/`Some(false)` when syntactically
    /// certain, `None` otherwise.
    pub fn le(&self, o: &Lin, syms: &SymTable) -> Option<bool> {
        o.sub(self)?.nonneg(syms)
    }

    /// Renders the expression over the symbol table's surface names, in
    /// concrete DML index syntax (e.g. `n1 - 1`, `2 * n1 + i1`).
    pub fn render(&self, syms: &SymTable) -> String {
        let mut out = String::new();
        for (s, c) in &self.terms {
            let name = &syms.get(*s).name;
            let (sign, mag) = if *c < 0 { ("-", -c) } else { ("+", *c) };
            if out.is_empty() {
                if sign == "-" {
                    out.push('~');
                }
            } else {
                out.push_str(if sign == "-" { " - " } else { " + " });
            }
            if mag == 1 {
                out.push_str(name);
            } else {
                out.push_str(&format!("{mag} * {name}"));
            }
        }
        if out.is_empty() {
            return format!("{}", self.k).replace('-', "~");
        }
        match self.k.cmp(&0) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Greater => out.push_str(&format!(" + {}", self.k)),
            std::cmp::Ordering::Less => out.push_str(&format!(" - {}", -self.k)),
        }
        out
    }
}

impl fmt::Display for Lin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.k)?;
        for (s, c) in &self.terms {
            write!(f, " + {c}*s{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_comparison() {
        let mut t = SymTable::new();
        let n = t.fresh("n1", true);
        let ln = Lin::sym(n);
        let one = Lin::lit(1);
        assert_eq!(ln.sub(&ln).unwrap(), Lin::lit(0));
        // 0 <= n is decidable (n nonneg), 1 <= n is not.
        assert_eq!(Lin::lit(0).le(&ln, &t), Some(true));
        assert_eq!(one.le(&ln, &t), None);
        // n - 1 <= n decidable.
        assert_eq!(ln.sub(&one).unwrap().le(&ln, &t), Some(true));
        // n + 1 <= n decidably false.
        assert_eq!(ln.add(&one).unwrap().le(&ln, &t), Some(false));
    }

    #[test]
    fn rendering() {
        let mut t = SymTable::new();
        let n = t.fresh("n1", true);
        assert_eq!(Lin::sym(n).render(&t), "n1");
        assert_eq!(Lin::sym(n).sub(&Lin::lit(1)).unwrap().render(&t), "n1 - 1");
        assert_eq!(Lin::lit(-2).render(&t), "~2");
        assert_eq!(
            Lin::sym(n).scale(2).unwrap().add(&Lin::lit(3)).unwrap().render(&t),
            "2 * n1 + 3"
        );
    }

    #[test]
    fn exact_division() {
        let mut t = SymTable::new();
        let n = t.fresh("n", true);
        let e = Lin::sym(n).scale(2).unwrap().sub(&Lin::lit(2)).unwrap();
        assert_eq!(e.div_exact(2).unwrap(), Lin::sym(n).sub(&Lin::lit(1)).unwrap());
        assert_eq!(Lin::sym(n).div_exact(2), None);
    }
}
