//! Solver verification of synthesized candidates: inference proposes,
//! the solver disposes.
//!
//! A candidate group (one top-level declaration's outer annotation plus
//! its local refinements) is applied to a *clone* of the program AST and
//! pushed through the same phase-1 → elaborate → solve pipeline the
//! compiler uses. The group is kept only when
//!
//! 1. every non-check obligation of the refined program proves (the
//!    program still dependently type-checks),
//! 2. the residual check sites are a subset of the unrefined program's
//!    residual sites (no regression anywhere, including other decls), and
//! 3. at least one residual check was eliminated (strict progress).
//!
//! On a non-check failure the candidates for the failing functions are
//! dropped and the remainder retried, so one over-eager local refinement
//! cannot sink the whole group. Annotations are attached to the AST
//! in-place (the `anno` field), never by re-parsing patched source, so
//! every expression span — and therefore every check site — stays
//! identical to the original program.

use crate::synth::Candidate;
use dml_index::VarGen;
use dml_solver::{prove_all, Solver, Verdict};
use dml_syntax::ast::{self as sast};
use dml_syntax::Span;
use dml_types::builtins::{base_env, check_kind};
use dml_types::infer_program;
use std::collections::{BTreeMap, BTreeSet};

/// Result of pushing one (possibly refined) program through the
/// verification pipeline.
#[derive(Debug)]
pub struct MiniCheck {
    /// Whether every non-check obligation proved.
    pub non_check_ok: bool,
    /// Check sites whose obligations did not all prove. When
    /// `non_check_ok` is false every check site is residual (the
    /// compiler's fail-safe: nothing is eliminated).
    pub residual_sites: BTreeSet<Span>,
    /// Human description per residual site (obligation kind + verdict).
    pub residual_detail: BTreeMap<Span, String>,
    /// Functions owning failing non-check obligations.
    pub failing_funs: BTreeSet<String>,
}

/// Runs phase 1 + elaboration + solving on `program`, mirroring the
/// compiler pipeline's verdict collapse and fail-safe gating.
pub fn check_program(program: &sast::Program, solver: &Solver) -> Result<MiniCheck, String> {
    let mut gen = VarGen::new();
    let mut env = base_env(&mut gen);
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => {
                env.add_datatype(dd, &mut gen).map_err(|e| e.message)?;
            }
            sast::Decl::Typeref(tr) => {
                env.add_typeref(tr, &mut gen).map_err(|e| e.message)?;
            }
            sast::Decl::Assert(sigs) => {
                env.add_assert(sigs, &check_kind, &mut gen).map_err(|e| e.message)?;
            }
            _ => {}
        }
    }
    let phase1 = infer_program(program, &env).map_err(|e| e.message)?;
    let out = dml_elab::elaborate(program, &env, &phase1, gen).map_err(|e| e.message)?;
    let mut gen = out.gen;
    let outcomes = {
        let constraints: Vec<_> = out.obligations.iter().map(|ob| &ob.constraint).collect();
        prove_all(solver, &constraints, &mut gen)
    };

    let mut non_check_ok = true;
    let mut failing_funs = BTreeSet::new();
    let mut site_ok: BTreeMap<Span, (bool, String)> = BTreeMap::new();
    let mut all_check_sites = BTreeSet::new();
    for (ob, outcome) in out.obligations.iter().zip(&outcomes) {
        let verdict = collapse(outcome);
        if ob.kind.is_check() {
            all_check_sites.insert(ob.site);
            let e = site_ok.entry(ob.site).or_insert_with(|| (true, String::new()));
            if !verdict.is_proven() {
                e.0 = false;
                e.1 = format!("{}: {}", ob.kind, verdict_desc(&verdict));
            }
        } else if !matches!(ob.kind, dml_elab::ObKind::Unreachable { .. }) && !verdict.is_proven() {
            non_check_ok = false;
            failing_funs.insert(ob.in_fun.clone());
        }
    }
    let (residual_sites, residual_detail) = if non_check_ok {
        let sites: BTreeSet<Span> =
            site_ok.iter().filter(|(_, (ok, _))| !ok).map(|(s, _)| *s).collect();
        let detail =
            site_ok.into_iter().filter(|(_, (ok, _))| !ok).map(|(s, (_, d))| (s, d)).collect();
        (sites, detail)
    } else {
        let detail = all_check_sites
            .iter()
            .map(|s| (*s, "blocked: a non-check obligation failed".to_string()))
            .collect();
        (all_check_sites, detail)
    };
    Ok(MiniCheck { non_check_ok, residual_sites, residual_detail, failing_funs })
}

fn collapse(outcome: &dml_solver::Outcome) -> Verdict {
    let mut collapsed = Verdict::Proven;
    for (_, r) in &outcome.results {
        match r {
            Verdict::Proven => {}
            Verdict::Refuted => return Verdict::Refuted,
            other => {
                if collapsed.is_proven() {
                    collapsed = other.clone();
                }
            }
        }
    }
    collapsed
}

fn verdict_desc(v: &Verdict) -> String {
    match v {
        Verdict::Proven => "proven".to_string(),
        Verdict::Refuted => "refuted".to_string(),
        Verdict::Unknown(r) => format!("unknown ({r})"),
        _ => "undecided".to_string(),
    }
}

/// Applies candidate annotations to the matching `FunDecl`s in place
/// (matched by the span of the function's name identifier).
pub fn apply_candidates(program: &mut sast::Program, cands: &[Candidate]) {
    let by_span: BTreeMap<Span, &Candidate> = cands.iter().map(|c| (c.name_span, c)).collect();
    for_each_fundecl_mut(program, &mut |f| {
        if let Some(c) = by_span.get(&f.name.span) {
            f.anno = Some(c.anno.clone());
        }
    });
}

/// Visits every `FunDecl` in the program, including `let`-local ones,
/// mutably.
pub fn for_each_fundecl_mut(program: &mut sast::Program, f: &mut impl FnMut(&mut sast::FunDecl)) {
    fn walk_expr(e: &mut sast::Expr, f: &mut impl FnMut(&mut sast::FunDecl)) {
        use sast::Expr::*;
        match e {
            Var(_) | Int(..) | Bool(..) | Raise(..) => {}
            App(a, b, _) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            Tuple(es, _) | Seq(es, _) => es.iter_mut().for_each(|e| walk_expr(e, f)),
            If(c, t, e2, _) => {
                walk_expr(c, f);
                walk_expr(t, f);
                walk_expr(e2, f);
            }
            Case(s, arms, _) => {
                walk_expr(s, f);
                arms.iter_mut().for_each(|(_, b)| walk_expr(b, f));
            }
            Let(ds, b, _) => {
                ds.iter_mut().for_each(|d| walk_decl(d, f));
                walk_expr(b, f);
            }
            Fn(arms, _) => arms.iter_mut().for_each(|(_, b)| walk_expr(b, f)),
            Anno(e2, _, _) => walk_expr(e2, f),
            Andalso(a, b, _) | Orelse(a, b, _) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            Handle(b, arms, _) => {
                walk_expr(b, f);
                arms.iter_mut().for_each(|(_, h)| walk_expr(h, f));
            }
        }
    }
    fn walk_decl(d: &mut sast::Decl, f: &mut impl FnMut(&mut sast::FunDecl)) {
        match d {
            sast::Decl::Fun(group) => {
                for fd in group.iter_mut() {
                    f(fd);
                    for c in &mut fd.clauses {
                        walk_expr(&mut c.body, f);
                    }
                }
            }
            sast::Decl::Val(v) => walk_expr(&mut v.expr, f),
            _ => {}
        }
    }
    program.decls.iter_mut().for_each(|d| walk_decl(d, f));
}

/// Immutable variant of [`for_each_fundecl_mut`].
pub fn for_each_fundecl(program: &sast::Program, f: &mut impl FnMut(&sast::FunDecl)) {
    fn walk_expr(e: &sast::Expr, f: &mut impl FnMut(&sast::FunDecl)) {
        use sast::Expr::*;
        match e {
            Var(_) | Int(..) | Bool(..) | Raise(..) => {}
            App(a, b, _) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            Tuple(es, _) | Seq(es, _) => es.iter().for_each(|e| walk_expr(e, f)),
            If(c, t, e2, _) => {
                walk_expr(c, f);
                walk_expr(t, f);
                walk_expr(e2, f);
            }
            Case(s, arms, _) => {
                walk_expr(s, f);
                arms.iter().for_each(|(_, b)| walk_expr(b, f));
            }
            Let(ds, b, _) => {
                ds.iter().for_each(|d| walk_decl(d, f));
                walk_expr(b, f);
            }
            Fn(arms, _) => arms.iter().for_each(|(_, b)| walk_expr(b, f)),
            Anno(e2, _, _) => walk_expr(e2, f),
            Andalso(a, b, _) | Orelse(a, b, _) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            Handle(b, arms, _) => {
                walk_expr(b, f);
                arms.iter().for_each(|(_, h)| walk_expr(h, f));
            }
        }
    }
    fn walk_decl(d: &sast::Decl, f: &mut impl FnMut(&sast::FunDecl)) {
        match d {
            sast::Decl::Fun(group) => {
                for fd in group {
                    f(fd);
                    for c in &fd.clauses {
                        walk_expr(&c.body, f);
                    }
                }
            }
            sast::Decl::Val(v) => walk_expr(&v.expr, f),
            _ => {}
        }
    }
    program.decls.iter().for_each(|d| walk_decl(d, f));
}

/// Removes every `where`-clause from `src`, returning the stripped
/// source. The removed ranges are extended backward over horizontal and
/// vertical whitespace so no blank lines are left behind.
pub fn strip_annotations(src: &str) -> Result<String, String> {
    let program = dml_syntax::parse_program(src).map_err(|e| e.to_string())?;
    let mut spans: Vec<Span> = Vec::new();
    let mut collect = |f: &sast::FunDecl| {
        if let Some(s) = f.anno_span {
            spans.push(s);
        }
    };
    let mut p = program;
    for_each_fundecl_mut(&mut p, &mut |f| collect(f));
    spans.sort();
    spans.dedup();
    let bytes = src.as_bytes();
    let mut out = src.to_string();
    for s in spans.iter().rev() {
        let mut start = s.start as usize;
        while start > 0 && (bytes[start - 1] as char).is_whitespace() {
            start -= 1;
        }
        out.replace_range(start..s.end as usize, "");
    }
    Ok(out)
}
