//! Candidate `where`-clause synthesis from fixpoint entry states.
//!
//! `absint` delivers, per top-level declaration, the symbol-seeded outer
//! parameter shape and an interval abstraction for every reached local
//! function's entry. This module turns those into concrete [`DType`]
//! annotations:
//!
//! * the **outer** function gets a *facts-only* annotation that names its
//!   parameters' indices (`{n1:nat} int array(n1) -> int`) without
//!   restricting callers — singleton types record what is true of any
//!   argument, they do not impose preconditions;
//! * each **local** function gets a full refinement: exact entries become
//!   singleton indices (`int(n1 - 1)`), proper intervals become fresh
//!   guarded quantifiers (`{a1:nat | a1 <= n1} int(a1)`).
//!
//! Every quantifier gets its own `{…}` group so each variable's guard
//! survives pretty-printing, and guards only ever mention the variable
//! itself plus outer symbols — the scoping DML's `where`-clauses support.
//!
//! Nothing here is trusted: `verify` re-elaborates the program with the
//! candidates applied and keeps only what the solver proves.

use crate::absint::{AbsVal, DeclAnalysis, Namer};
use crate::interval::Interval;
use crate::lin::{Lin, SymTable};
use dml_syntax::ast::{self as sast, CmpOp, DType, IExpr, IProp, Ident, Pat, Quant, Sort};
use dml_syntax::{pretty, Span};
use dml_types::ml::MlTy;

/// One synthesized annotation for one function.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Function name (for reports and fix-it text).
    pub fun_name: String,
    /// Span of the function's name identifier — the patch key.
    pub name_span: Span,
    /// The synthesized annotation type.
    pub anno: DType,
    /// `pretty::dtype(anno)` — stable rendering for reports and fix-its.
    pub rendered: String,
    /// Byte offset (end of the last clause body) where a `where`-clause
    /// would be inserted by a fix-it.
    pub insert_at: u32,
    /// Whether this is the enclosing top-level function (applied first;
    /// local candidates may reference its index variables).
    pub is_outer: bool,
}

impl Candidate {
    /// The full fix-it text, e.g. `where f <| {n1:nat} int array(n1) -> int`.
    pub fn fixit_text(&self) -> String {
        format!("\nwhere {} <| {}", self.fun_name, self.rendered)
    }
}

/// All candidates for one top-level declaration, outer first.
#[derive(Debug)]
pub struct DeclCandidates {
    /// Name of the top-level function.
    pub decl_name: String,
    /// Candidates in application order (outer annotation, then locals).
    pub candidates: Vec<Candidate>,
    /// Whether the fixpoint converged (diagnostics only).
    pub converged: bool,
}

/// Synthesizes candidates from one declaration's analysis.
pub fn synthesize(analysis: &DeclAnalysis<'_>, namer: &mut Namer) -> DeclCandidates {
    let mut candidates = Vec::new();
    let syms = &analysis.syms;

    // Outer facts-only annotation: only when parameters introduced
    // symbols. Polymorphic schemes are fine — their quantified variables
    // appear as `Rigid` names, rendered `'a`, which the elaborator scopes
    // over the whole `where`-clause.
    if syms.iter().next().is_some() {
        if let Some(anno) = outer_anno(analysis) {
            candidates.push(make_candidate(analysis.outer, anno, true));
        }
    }

    for (decl, scheme, entry) in &analysis.locals {
        if let Some(anno) = local_anno(decl, &scheme.ty, entry, syms, namer) {
            candidates.push(make_candidate(decl, anno, false));
        }
    }

    DeclCandidates {
        decl_name: analysis.outer.name.name.clone(),
        candidates,
        converged: analysis.converged,
    }
}

fn make_candidate(decl: &sast::FunDecl, anno: DType, is_outer: bool) -> Candidate {
    let insert_at = decl.clauses.last().map(|c| c.body.span().end).unwrap_or(decl.name.span.end);
    Candidate {
        fun_name: decl.name.name.clone(),
        name_span: decl.name.span,
        rendered: pretty::dtype(&anno),
        anno,
        insert_at,
        is_outer,
    }
}

/// The outer annotation: nested single-quant Pi groups for every seeded
/// symbol (guard-free — facts, not preconditions), singleton parameter
/// types, existential (unindexed) result.
fn outer_anno(analysis: &DeclAnalysis<'_>) -> Option<DType> {
    let clause = &analysis.outer.clauses[0];
    let syms = &analysis.syms;
    let mut ty = &analysis.outer_scheme.ty;
    let mut doms = Vec::new();
    for (pat, seed) in clause.params.iter().zip(&analysis.outer_seed) {
        let MlTy::Arrow(d, r) = ty else { return None };
        doms.push(seeded_dtype(pat, d, seed, syms)?);
        ty = r;
    }
    let mut out = ml_to_dtype(ty)?;
    for d in doms.into_iter().rev() {
        out = DType::Arrow(Box::new(d), Box::new(out));
    }
    for (_, sym) in syms.iter().collect::<Vec<_>>().into_iter().rev() {
        let sort = if sym.nonneg { Sort::Nat } else { Sort::Int };
        let q = Quant { var: Ident::synth(&sym.name), sort, guard: None };
        out = DType::Pi(vec![q], Box::new(out));
    }
    Some(out)
}

/// Rebuilds a parameter type from its symbol-seeded abstraction.
fn seeded_dtype(pat: &Pat, mlty: &MlTy, seed: &AbsVal, syms: &SymTable) -> Option<DType> {
    match (pat, seed) {
        (Pat::Anno(p, _, _), s) => seeded_dtype(p, mlty, s, syms),
        (_, AbsVal::Int(iv)) => match iv.as_exact() {
            Some(e) => Some(singleton("int", Vec::new(), e, syms)),
            None => ml_to_dtype(mlty),
        },
        (_, AbsVal::Arr(len)) => {
            let MlTy::Con(c, args) = mlty else { return None };
            if c != "array" || args.len() != 1 {
                return None;
            }
            let elem = ml_to_dtype(&args[0])?;
            match len.as_exact() {
                Some(e) => Some(singleton("array", vec![elem], e, syms)),
                None => ml_to_dtype(mlty),
            }
        }
        (Pat::Tuple(ps, _), AbsVal::Tup(vs)) if ps.len() == vs.len() => {
            let MlTy::Tuple(ts) = mlty else { return None };
            if ts.len() != ps.len() {
                return None;
            }
            let parts: Option<Vec<_>> =
                ps.iter().zip(ts).zip(vs).map(|((p, t), v)| seeded_dtype(p, t, v, syms)).collect();
            Some(DType::Product(parts?))
        }
        _ => ml_to_dtype(mlty),
    }
}

/// The local annotation: exact entries become singletons, proper
/// intervals fresh guarded quantifiers.
fn local_anno(
    decl: &sast::FunDecl,
    scheme_ty: &MlTy,
    entry: &[AbsVal],
    syms: &SymTable,
    namer: &mut Namer,
) -> Option<DType> {
    let clause = &decl.clauses[0];
    let mut ty = scheme_ty;
    let mut doms = Vec::new();
    let mut quants: Vec<Quant> = Vec::new();
    let mut informative = false;
    for (_pat, v) in clause.params.iter().zip(entry) {
        let MlTy::Arrow(d, r) = ty else { return None };
        doms.push(entry_dtype(d, v, syms, namer, &mut quants, &mut informative)?);
        ty = r;
    }
    if !informative {
        return None;
    }
    let mut out = ml_to_dtype(ty)?;
    for d in doms.into_iter().rev() {
        out = DType::Arrow(Box::new(d), Box::new(out));
    }
    for q in quants.into_iter().rev() {
        out = DType::Pi(vec![q], Box::new(out));
    }
    Some(out)
}

/// Converts one entry slot to a parameter type, accumulating fresh
/// quantifiers for proper intervals.
fn entry_dtype(
    mlty: &MlTy,
    v: &AbsVal,
    syms: &SymTable,
    namer: &mut Namer,
    quants: &mut Vec<Quant>,
    informative: &mut bool,
) -> Option<DType> {
    match v {
        AbsVal::Int(iv) => match iv.as_exact() {
            Some(e) => {
                *informative = true;
                Some(singleton("int", Vec::new(), e, syms))
            }
            None => match interval_quant(iv, "a", false, syms, namer) {
                Some((q, var)) => {
                    quants.push(q);
                    *informative = true;
                    Some(DType::App {
                        name: Ident::synth("int"),
                        ty_args: Vec::new(),
                        ix_args: vec![sast::Index::Int(IExpr::Var(var))],
                    })
                }
                None => ml_to_dtype(mlty),
            },
        },
        AbsVal::Arr(len) => {
            let MlTy::Con(c, args) = mlty else { return ml_to_dtype(mlty) };
            if c != "array" || args.len() != 1 {
                return ml_to_dtype(mlty);
            }
            let elem = ml_to_dtype(&args[0])?;
            match len.as_exact() {
                Some(e) => {
                    *informative = true;
                    Some(singleton("array", vec![elem], e, syms))
                }
                None => match interval_quant(len, "n", true, syms, namer) {
                    Some((q, var)) => {
                        quants.push(q);
                        *informative = true;
                        Some(DType::App {
                            name: Ident::synth("array"),
                            ty_args: vec![elem],
                            ix_args: vec![sast::Index::Int(IExpr::Var(var))],
                        })
                    }
                    None => ml_to_dtype(mlty),
                },
            }
        }
        AbsVal::Tup(vs) => {
            let MlTy::Tuple(ts) = mlty else { return ml_to_dtype(mlty) };
            if ts.len() != vs.len() {
                return ml_to_dtype(mlty);
            }
            let parts: Option<Vec<_>> = ts
                .iter()
                .zip(vs)
                .map(|(t, v)| entry_dtype(t, v, syms, namer, quants, informative))
                .collect();
            Some(DType::Product(parts?))
        }
        _ => ml_to_dtype(mlty),
    }
}

/// Builds a fresh quantifier `{x:sort | lo <= x && x <= hi}` for a proper
/// interval. Returns `None` when the interval carries no information (or
/// `always_nat` is false and neither end is finite).
fn interval_quant(
    iv: &Interval,
    prefix: &'static str,
    always_nat: bool,
    syms: &SymTable,
    namer: &mut Namer,
) -> Option<(Quant, Ident)> {
    let lo = iv.lo.fin();
    let hi = iv.hi.fin();
    if lo.is_none() && hi.is_none() && !always_nat {
        return None;
    }
    let name = namer.fresh(prefix);
    let var = Ident::synth(&name);
    let nat = always_nat || lo.is_some_and(|l| l.nonneg(syms) == Some(true));
    let mut guard: Option<IProp> = None;
    let push = |p: IProp, guard: &mut Option<IProp>| {
        *guard = Some(match guard.take() {
            None => p,
            Some(g) => IProp::And(Box::new(g), Box::new(p)),
        });
    };
    if let Some(l) = lo {
        // `0 <= x` is already implied by `nat`.
        if !(nat && l.as_const() == Some(0)) {
            push(
                IProp::Cmp(
                    CmpOp::Le,
                    Box::new(lin_to_iexpr(l, syms)),
                    Box::new(IExpr::Var(var.clone())),
                ),
                &mut guard,
            );
        }
    }
    if let Some(h) = hi {
        push(
            IProp::Cmp(
                CmpOp::Le,
                Box::new(IExpr::Var(var.clone())),
                Box::new(lin_to_iexpr(h, syms)),
            ),
            &mut guard,
        );
    }
    let sort = if nat { Sort::Nat } else { Sort::Int };
    if guard.is_none() && !nat {
        return None;
    }
    Some((Quant { var: var.clone(), sort, guard }, var))
}

fn singleton(family: &str, ty_args: Vec<DType>, e: &Lin, syms: &SymTable) -> DType {
    DType::App {
        name: Ident::synth(family),
        ty_args,
        ix_args: vec![sast::Index::Int(lin_to_iexpr(e, syms))],
    }
}

/// Renders a [`Lin`] as a surface index expression over symbol names.
pub fn lin_to_iexpr(l: &Lin, syms: &SymTable) -> IExpr {
    let mut acc: Option<IExpr> = None;
    for (s, c) in &l.terms {
        let var = IExpr::Var(Ident::synth(&syms.get(*s).name));
        let mag = c.unsigned_abs() as i64;
        let term = if mag == 1 {
            var
        } else {
            IExpr::Mul(Box::new(IExpr::Lit(mag, Span::point(0))), Box::new(var))
        };
        acc = Some(match (acc, *c >= 0) {
            (None, true) => term,
            (None, false) => IExpr::Neg(Box::new(term)),
            (Some(a), true) => IExpr::Add(Box::new(a), Box::new(term)),
            (Some(a), false) => IExpr::Sub(Box::new(a), Box::new(term)),
        });
    }
    match acc {
        None => IExpr::Lit(l.k, Span::point(0)),
        Some(a) if l.k > 0 => IExpr::Add(Box::new(a), Box::new(IExpr::Lit(l.k, Span::point(0)))),
        Some(a) if l.k < 0 => IExpr::Sub(Box::new(a), Box::new(IExpr::Lit(-l.k, Span::point(0)))),
        Some(a) => a,
    }
}

/// Converts a phase-1 ML type back to an (unindexed) surface type.
/// Unindexed families elaborate existentially, so this is always sound.
/// Returns `None` on unsolved unification variables.
pub fn ml_to_dtype(t: &MlTy) -> Option<DType> {
    match t {
        MlTy::UVar(_) => None,
        MlTy::Rigid(name) => Some(DType::Var(Ident::synth(name))),
        MlTy::Con(name, args) => {
            let ty_args: Option<Vec<_>> = args.iter().map(ml_to_dtype).collect();
            Some(DType::App { name: Ident::synth(name), ty_args: ty_args?, ix_args: Vec::new() })
        }
        MlTy::Tuple(ts) => {
            let parts: Option<Vec<_>> = ts.iter().map(ml_to_dtype).collect();
            Some(DType::Product(parts?))
        }
        MlTy::Arrow(a, b) => {
            Some(DType::Arrow(Box::new(ml_to_dtype(a)?), Box::new(ml_to_dtype(b)?)))
        }
    }
}
