//! Flow-sensitive interval abstract interpretation over the surface AST.
//!
//! One top-level `fun` declaration is analyzed at a time. Its parameters
//! are seeded with fresh *symbols* (array sizes, integer parameter
//! values); `let`-local functions are analyzed call-site-driven: every
//! call joins its argument abstraction into the callee's entry state, and
//! the whole declaration iterates to a fixpoint with threshold widening
//! (thresholds are harvested from comparison operands, so a loop counter
//! tested against `n` is widened to `n` rather than to +∞).
//!
//! Branch conditions narrow occurrence-style: `if i = n then … else …`
//! shaves `n` off `i`'s interval in the else branch when `i`'s upper
//! bound is exactly `n` — the paper's canonical loop-exit shape.
//!
//! The result — entry intervals per local function parameter — is *not*
//! trusted anywhere: `synth` turns it into candidate `where`-clauses and
//! `verify` keeps only what the production solver re-proves.

use crate::interval::{Bound, Interval};
use crate::lin::{Lin, SymTable};
use dml_syntax::ast::{self as sast, CmpOp, Expr, Pat};
use dml_syntax::Span;
use dml_types::ml::{MlScheme, MlTy};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum fixpoint rounds per top-level declaration before bailing.
const MAX_ROUNDS: usize = 40;
/// Precise join steps per interval end before threshold widening starts.
const GROW_LIMIT: u32 = 2;

/// An abstract value.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// An integer with a symbolic interval.
    Int(Interval),
    /// An array whose *length* has the given interval.
    Arr(Interval),
    /// A tuple, element-wise.
    Tup(Vec<AbsVal>),
    /// A reference to a registered local function (index into the
    /// analyzer's table).
    LocalFun(usize),
    /// Anything else (booleans, lists, closures, unknown ints…).
    Other,
}

impl AbsVal {
    fn int(&self) -> Option<&Interval> {
        match self {
            AbsVal::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Pointwise join; mismatched shapes collapse to `Other`.
    fn join(&self, o: &AbsVal, syms: &SymTable) -> AbsVal {
        match (self, o) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b, syms)),
            (AbsVal::Arr(a), AbsVal::Arr(b)) => AbsVal::Arr(a.join(b, syms)),
            (AbsVal::Tup(a), AbsVal::Tup(b)) if a.len() == b.len() => {
                AbsVal::Tup(a.iter().zip(b).map(|(x, y)| x.join(y, syms)).collect())
            }
            (AbsVal::LocalFun(a), AbsVal::LocalFun(b)) if a == b => AbsVal::LocalFun(*a),
            _ => AbsVal::Other,
        }
    }
}

/// Per-interval-end widening memory.
#[derive(Debug, Clone, Default)]
struct WidenState {
    grows: u32,
    tried_hi: BTreeSet<Lin>,
    tried_lo: BTreeSet<Lin>,
}

/// A `let`-local function registered for call-site-driven analysis.
#[derive(Debug)]
pub struct LocalFun<'p> {
    /// The (unannotated, single-clause) declaration.
    pub decl: &'p sast::FunDecl,
    /// Environment captured at the declaration site (refreshed every
    /// round; includes the self-binding).
    captured: AEnv,
    /// Entry abstraction per curried parameter; `None` until the first
    /// call is seen.
    pub entry: Option<Vec<AbsVal>>,
}

type AEnv = BTreeMap<String, AbsVal>;

/// The outcome of analyzing one top-level declaration.
#[derive(Debug)]
pub struct DeclAnalysis<'p> {
    /// The top-level function.
    pub outer: &'p sast::FunDecl,
    /// Its phase-1 ML scheme.
    pub outer_scheme: MlScheme,
    /// Symbol-seeded abstraction per curried parameter (shape mirrors the
    /// first clause's patterns).
    pub outer_seed: Vec<AbsVal>,
    /// Local functions that were reached, with their fixpoint entries.
    pub locals: Vec<(&'p sast::FunDecl, MlScheme, Vec<AbsVal>)>,
    /// The symbol table the intervals speak about.
    pub syms: SymTable,
    /// Whether the fixpoint converged within the round budget.
    pub converged: bool,
}

/// Deterministic fresh-name source that avoids every identifier already
/// appearing in the program.
pub struct Namer {
    used: BTreeSet<String>,
    next: BTreeMap<&'static str, u32>,
}

impl Namer {
    /// Harvests all identifiers of `program` as reserved names.
    pub fn new(program: &sast::Program) -> Namer {
        let mut used = BTreeSet::new();
        collect_idents(program, &mut used);
        Namer { used, next: BTreeMap::new() }
    }

    /// Next unused `<prefix><k>` name.
    pub fn fresh(&mut self, prefix: &'static str) -> String {
        let counter = self.next.entry(prefix).or_insert(1);
        loop {
            let name = format!("{prefix}{counter}");
            *counter += 1;
            if self.used.insert(name.clone()) {
                return name;
            }
        }
    }
}

fn collect_idents(program: &sast::Program, out: &mut BTreeSet<String>) {
    fn expr(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Var(i) => {
                out.insert(i.name.clone());
            }
            Expr::Int(..) | Expr::Bool(..) | Expr::Raise(..) => {}
            Expr::App(f, a, _) => {
                expr(f, out);
                expr(a, out);
            }
            Expr::Tuple(es, _) | Expr::Seq(es, _) => es.iter().for_each(|e| expr(e, out)),
            Expr::If(c, t, f, _) => {
                expr(c, out);
                expr(t, out);
                expr(f, out);
            }
            Expr::Case(s, arms, _) => {
                expr(s, out);
                for (p, e) in arms {
                    pat(p, out);
                    expr(e, out);
                }
            }
            Expr::Let(ds, b, _) => {
                ds.iter().for_each(|d| decl(d, out));
                expr(b, out);
            }
            Expr::Fn(arms, _) => {
                for (p, e) in arms {
                    pat(p, out);
                    expr(e, out);
                }
            }
            Expr::Anno(e, _, _) => expr(e, out),
            Expr::Andalso(a, b, _) | Expr::Orelse(a, b, _) => {
                expr(a, out);
                expr(b, out);
            }
            Expr::Handle(e, arms, _) => {
                expr(e, out);
                arms.iter().for_each(|(_, h)| expr(h, out));
            }
        }
    }
    fn pat(p: &Pat, out: &mut BTreeSet<String>) {
        for v in p.bound_vars() {
            out.insert(v.name.clone());
        }
    }
    fn decl(d: &sast::Decl, out: &mut BTreeSet<String>) {
        match d {
            sast::Decl::Fun(fs) => {
                for f in fs {
                    out.insert(f.name.name.clone());
                    for q in &f.index_params {
                        out.insert(q.var.name.clone());
                    }
                    if let Some(a) = &f.anno {
                        dtype_idents(a, out);
                    }
                    for c in &f.clauses {
                        c.params.iter().for_each(|p| pat(p, out));
                        expr(&c.body, out);
                    }
                }
            }
            sast::Decl::Val(v) => {
                pat(&v.pat, out);
                expr(&v.expr, out);
            }
            _ => {}
        }
    }
    fn dtype_idents(t: &sast::DType, out: &mut BTreeSet<String>) {
        match t {
            sast::DType::Var(_) => {}
            sast::DType::App { ty_args, .. } => ty_args.iter().for_each(|t| dtype_idents(t, out)),
            sast::DType::Product(ts) => ts.iter().for_each(|t| dtype_idents(t, out)),
            sast::DType::Arrow(a, b) => {
                dtype_idents(a, out);
                dtype_idents(b, out);
            }
            sast::DType::Pi(qs, b) | sast::DType::Sigma(qs, b) => {
                for q in qs {
                    out.insert(q.var.name.clone());
                }
                dtype_idents(b, out);
            }
        }
    }
    program.decls.iter().for_each(|d| decl(d, out));
}

/// The analyzer for one top-level declaration.
pub struct Analyzer<'p> {
    syms: SymTable,
    funs: Vec<LocalFun<'p>>,
    fun_ids: BTreeMap<Span, usize>,
    pending: Vec<Option<Vec<AbsVal>>>,
    thresholds: BTreeSet<Lin>,
    widen: BTreeMap<(usize, Vec<usize>), WidenState>,
    schemes: BTreeMap<Span, MlScheme>,
}

/// Analyzes one top-level `fun` declaration. Returns `None` when the
/// declaration is out of scope for inference (multi-clause, mutual
/// recursion, explicit index parameters, already annotated, or no ML
/// scheme available).
pub fn analyze_decl<'p>(
    fun: &'p sast::FunDecl,
    schemes: &BTreeMap<Span, MlScheme>,
    namer: &mut Namer,
) -> Option<DeclAnalysis<'p>> {
    if fun.anno.is_some()
        || fun.clauses.len() != 1
        || !fun.index_params.is_empty()
        || !fun.tyvars.is_empty()
    {
        return None;
    }
    let scheme = schemes.get(&fun.name.span)?.clone();
    let mut az = Analyzer {
        syms: SymTable::new(),
        funs: Vec::new(),
        fun_ids: BTreeMap::new(),
        pending: Vec::new(),
        thresholds: BTreeSet::new(),
        widen: BTreeMap::new(),
        schemes: schemes.clone(),
    };

    // Seed the outer parameters with fresh symbols.
    let clause = &fun.clauses[0];
    let mut param_tys = Vec::new();
    let mut ty = &scheme.ty;
    for _ in 0..clause.params.len() {
        match ty {
            MlTy::Arrow(d, r) => {
                param_tys.push(d.as_ref());
                ty = r;
            }
            _ => return None,
        }
    }
    let mut env: AEnv = AEnv::new();
    let mut seed = Vec::new();
    for (pat, mlty) in clause.params.iter().zip(&param_tys) {
        seed.push(az.seed_pattern(pat, mlty, namer, &mut env));
    }

    // Iterate to a fixpoint.
    let mut converged = false;
    for _round in 0..MAX_ROUNDS {
        az.pending = vec![None; az.funs.len()];
        let mut round_env = env.clone();
        az.eval(&clause.body, &mut round_env);
        // Evaluate every reachable local function under its current entry.
        for k in 0..az.funs.len() {
            let Some(entry) = az.funs[k].entry.clone() else { continue };
            let decl = az.funs[k].decl;
            let mut fenv = az.funs[k].captured.clone();
            for (pat, v) in decl.clauses[0].params.iter().zip(&entry) {
                az.bind_pattern(pat, v.clone(), &mut fenv);
            }
            az.eval(&decl.clauses[0].body, &mut fenv);
        }
        // Merge pending call joins into entries, widening as needed.
        let mut changed = false;
        for k in 0..az.funs.len() {
            let incoming = az.pending.get(k).cloned().flatten();
            let Some(incoming) = incoming else { continue };
            let next = match az.funs[k].entry.clone() {
                None => incoming,
                Some(old) => {
                    let mut out = Vec::new();
                    for (i, (o, n)) in old.iter().zip(&incoming).enumerate() {
                        out.push(az.widen_val(k, &mut vec![i], o, n));
                    }
                    out
                }
            };
            if az.funs[k].entry.as_ref() != Some(&next) {
                az.funs[k].entry = Some(next);
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    let locals = az
        .funs
        .iter()
        .filter_map(|f| {
            let entry = f.entry.clone()?;
            let scheme = az.schemes.get(&f.decl.name.span)?.clone();
            Some((f.decl, scheme, entry))
        })
        .collect();
    Some(DeclAnalysis {
        outer: fun,
        outer_scheme: scheme,
        outer_seed: seed,
        locals,
        syms: az.syms,
        converged,
    })
}

impl<'p> Analyzer<'p> {
    /// Binds a top-level parameter pattern to symbol-seeded values.
    fn seed_pattern(
        &mut self,
        pat: &Pat,
        mlty: &MlTy,
        namer: &mut Namer,
        env: &mut AEnv,
    ) -> AbsVal {
        match (pat, mlty) {
            (Pat::Anno(p, _, _), t) => self.seed_pattern(p, t, namer, env),
            (Pat::Var(x), MlTy::Con(c, _)) if c == "int" => {
                let s = self.syms.fresh(namer.fresh("i"), false);
                let v = AbsVal::Int(Interval::exact(Lin::sym(s)));
                env.insert(x.name.clone(), v.clone());
                v
            }
            (Pat::Var(x), MlTy::Con(c, _)) if c == "array" => {
                let s = self.syms.fresh(namer.fresh("n"), true);
                let v = AbsVal::Arr(Interval::exact(Lin::sym(s)));
                env.insert(x.name.clone(), v.clone());
                v
            }
            (Pat::Tuple(ps, _), MlTy::Tuple(ts)) if ps.len() == ts.len() => AbsVal::Tup(
                ps.iter().zip(ts).map(|(p, t)| self.seed_pattern(p, t, namer, env)).collect(),
            ),
            (p, _) => {
                for v in p.bound_vars() {
                    env.insert(v.name.clone(), AbsVal::Other);
                }
                AbsVal::Other
            }
        }
    }

    /// Binds a pattern to an abstract value inside a function body.
    fn bind_pattern(&mut self, pat: &Pat, val: AbsVal, env: &mut AEnv) {
        match (pat, val) {
            (Pat::Var(x), v) => {
                env.insert(x.name.clone(), v);
            }
            (Pat::Anno(p, _, _), v) => self.bind_pattern(p, v, env),
            (Pat::Tuple(ps, _), AbsVal::Tup(vs)) if ps.len() == vs.len() => {
                for (p, v) in ps.iter().zip(vs) {
                    self.bind_pattern(p, v, env);
                }
            }
            (p, _) => {
                for v in p.bound_vars() {
                    env.insert(v.name.clone(), AbsVal::Other);
                }
            }
        }
    }

    /// Registers the local functions of a `let` group (or re-captures
    /// their environment on later rounds).
    fn register_funs(&mut self, group: &'p [sast::FunDecl], env: &mut AEnv) {
        // Only simple bare singletons participate; everything else is
        // bound opaquely (mutual recursion and annotated locals are out
        // of scope for inference — honestly reported by verify).
        if group.len() == 1
            && group[0].anno.is_none()
            && group[0].clauses.len() == 1
            && group[0].index_params.is_empty()
            && group[0].tyvars.is_empty()
            && self.schemes.contains_key(&group[0].name.span)
        {
            let f = &group[0];
            let id = match self.fun_ids.get(&f.name.span) {
                Some(id) => *id,
                None => {
                    let id = self.funs.len();
                    self.fun_ids.insert(f.name.span, id);
                    self.funs.push(LocalFun { decl: f, captured: AEnv::new(), entry: None });
                    self.pending.push(None);
                    id
                }
            };
            env.insert(f.name.name.clone(), AbsVal::LocalFun(id));
            let mut captured = env.clone();
            captured.insert(f.name.name.clone(), AbsVal::LocalFun(id));
            self.funs[id].captured = captured;
        } else {
            for f in group {
                env.insert(f.name.name.clone(), AbsVal::Other);
            }
        }
    }

    /// Records a call to local function `id` with argument abstractions.
    fn record_call(&mut self, id: usize, args: Vec<AbsVal>) {
        let arity = self.funs[id].decl.clauses[0].params.len();
        if args.len() != arity {
            return;
        }
        let slot = &mut self.pending[id];
        let joined = match slot.take() {
            None => args,
            Some(prev) => prev.iter().zip(&args).map(|(a, b)| a.join(b, &self.syms)).collect(),
        };
        *slot = Some(joined);
    }

    /// Widens one entry slot: precise joins for the first couple of
    /// growth steps, then jumps to harvested thresholds, then to ±∞.
    fn widen_val(
        &mut self,
        fun: usize,
        path: &mut Vec<usize>,
        old: &AbsVal,
        incoming: &AbsVal,
    ) -> AbsVal {
        match (old, incoming) {
            (AbsVal::Int(o), AbsVal::Int(n)) => {
                AbsVal::Int(self.widen_interval(fun, path.clone(), o, n))
            }
            (AbsVal::Arr(o), AbsVal::Arr(n)) => {
                AbsVal::Arr(self.widen_interval(fun, path.clone(), o, n))
            }
            (AbsVal::Tup(os), AbsVal::Tup(ns)) if os.len() == ns.len() => {
                let mut out = Vec::new();
                for (i, (o, n)) in os.iter().zip(ns).enumerate() {
                    path.push(i);
                    out.push(self.widen_val(fun, path, o, n));
                    path.pop();
                }
                AbsVal::Tup(out)
            }
            _ => old.join(incoming, &self.syms),
        }
    }

    fn widen_interval(
        &mut self,
        fun: usize,
        path: Vec<usize>,
        old: &Interval,
        incoming: &Interval,
    ) -> Interval {
        let joined = old.join(incoming, &self.syms);
        if joined.subsumed_by(old, &self.syms) {
            return old.clone();
        }
        let st = self.widen.entry((fun, path)).or_default();
        st.grows += 1;
        if st.grows <= GROW_LIMIT {
            return joined;
        }
        let mut out = joined.clone();
        if joined.hi != old.hi {
            let next = self.thresholds.iter().find(|t| !st.tried_hi.contains(*t)).cloned();
            out.hi = match next {
                Some(t) => {
                    st.tried_hi.insert(t.clone());
                    Bound::Fin(t)
                }
                None => Bound::PosInf,
            };
        }
        if joined.lo != old.lo {
            let next = self.thresholds.iter().rev().find(|t| !st.tried_lo.contains(*t)).cloned();
            out.lo = match next {
                Some(t) => {
                    st.tried_lo.insert(t.clone());
                    Bound::Fin(t)
                }
                None => Bound::NegInf,
            };
        }
        out
    }

    /// Abstract evaluation of an expression.
    fn eval(&mut self, e: &'p Expr, env: &mut AEnv) -> AbsVal {
        match e {
            Expr::Int(k, _) => AbsVal::Int(Interval::lit(*k)),
            Expr::Bool(..) | Expr::Raise(..) | Expr::Fn(..) => AbsVal::Other,
            Expr::Var(x) => env.get(&x.name).cloned().unwrap_or(AbsVal::Other),
            Expr::Tuple(es, _) => AbsVal::Tup(es.iter().map(|e| self.eval(e, env)).collect()),
            Expr::Anno(e, _, _) => self.eval(e, env),
            Expr::Seq(es, _) => {
                let mut last = AbsVal::Other;
                for e in es {
                    last = self.eval(e, env);
                }
                last
            }
            Expr::Andalso(a, b, _) | Expr::Orelse(a, b, _) => {
                self.eval(a, env);
                self.eval(b, env);
                AbsVal::Other
            }
            Expr::Handle(body, arms, _) => {
                let mut v = self.eval(body, env);
                for (_, h) in arms {
                    let hv = self.eval(h, &mut env.clone());
                    v = v.join(&hv, &self.syms);
                }
                v
            }
            Expr::Let(decls, body, _) => {
                for d in decls {
                    match d {
                        sast::Decl::Fun(group) => self.register_funs(group, env),
                        sast::Decl::Val(v) => {
                            let val = self.eval(&v.expr, env);
                            self.bind_pattern(&v.pat, val, env);
                        }
                        _ => {}
                    }
                }
                self.eval(body, env)
            }
            Expr::If(cond, then, els, _) => {
                self.eval(cond, env);
                let mut tenv = env.clone();
                self.narrow(cond, true, &mut tenv);
                let tv = self.eval(then, &mut tenv);
                let mut eenv = env.clone();
                self.narrow(cond, false, &mut eenv);
                let ev = self.eval(els, &mut eenv);
                tv.join(&ev, &self.syms)
            }
            Expr::Case(scrut, arms, _) => {
                self.eval(scrut, env);
                let mut out: Option<AbsVal> = None;
                for (p, body) in arms {
                    let mut aenv = env.clone();
                    self.bind_pattern(p, AbsVal::Other, &mut aenv);
                    let v = self.eval(body, &mut aenv);
                    out = Some(match out {
                        None => v,
                        Some(prev) => prev.join(&v, &self.syms),
                    });
                }
                out.unwrap_or(AbsVal::Other)
            }
            Expr::App(f, arg, _) => self.eval_app(f, arg, env),
        }
    }

    fn eval_app(&mut self, f: &'p Expr, arg: &'p Expr, env: &mut AEnv) -> AbsVal {
        // Calls to registered local functions: join the argument
        // abstraction into the callee's entry.
        if let Expr::Var(name) = f {
            if let Some(AbsVal::LocalFun(id)) = env.get(&name.name).cloned() {
                let argv = self.eval(arg, env);
                let arity = self.funs[id].decl.clauses[0].params.len();
                let args = match (arity, argv) {
                    (1, v) => vec![v],
                    (_, AbsVal::Tup(vs)) => vs,
                    (_, _) => vec![],
                };
                self.record_call(id, args);
                return AbsVal::Other;
            }
            // Primitives (only when not shadowed by a program binding).
            if !env.contains_key(&name.name) {
                return self.eval_prim(&name.name, arg, env);
            }
        }
        self.eval(f, env);
        self.eval(arg, env);
        AbsVal::Other
    }

    fn eval_prim(&mut self, prim: &str, arg: &'p Expr, env: &mut AEnv) -> AbsVal {
        let bin = |az: &mut Self, env: &mut AEnv| -> Option<(AbsVal, AbsVal)> {
            match arg {
                Expr::Tuple(es, _) if es.len() == 2 => {
                    let a = az.eval(&es[0], env);
                    let b = az.eval(&es[1], env);
                    Some((a, b))
                }
                _ => None,
            }
        };
        match prim {
            "+" => {
                // Midpoint shape `a + (b - a) div k`: the result lies in
                // the convex hull of `a` and `b` for k >= 1, which the
                // non-relational domain cannot see through plain
                // interval arithmetic.
                if let Expr::Tuple(es, _) = arg {
                    if es.len() == 2 {
                        if let Some(bv) = self.midpoint_offset(&es[0], &es[1], env) {
                            let av = self.eval(&es[0], env);
                            return match (av.int(), bv.int()) {
                                (Some(a), Some(b)) => AbsVal::Int(a.join(b, &self.syms)),
                                _ => AbsVal::Other,
                            };
                        }
                    }
                }
                match bin(self, env) {
                    Some((a, b)) => match (a.int(), b.int()) {
                        (Some(x), Some(y)) => AbsVal::Int(x.add(y)),
                        _ => AbsVal::Other,
                    },
                    None => {
                        self.eval(arg, env);
                        AbsVal::Other
                    }
                }
            }
            "-" => match bin(self, env) {
                Some((a, b)) => match (a.int(), b.int()) {
                    (Some(x), Some(y)) => AbsVal::Int(x.sub(y)),
                    _ => AbsVal::Other,
                },
                None => {
                    self.eval(arg, env);
                    AbsVal::Other
                }
            },
            "*" => match bin(self, env) {
                Some((a, b)) => {
                    let av = a.int().cloned();
                    let bv = b.int().cloned();
                    match (av, bv) {
                        (Some(x), Some(y)) => {
                            if let Some(k) = y.as_exact().and_then(|l| l.as_const()) {
                                AbsVal::Int(x.scale(k))
                            } else if let Some(k) = x.as_exact().and_then(|l| l.as_const()) {
                                AbsVal::Int(y.scale(k))
                            } else {
                                AbsVal::Other
                            }
                        }
                        _ => AbsVal::Other,
                    }
                }
                None => {
                    self.eval(arg, env);
                    AbsVal::Other
                }
            },
            "div" => {
                // `(a + b) div 2` is also a midpoint: in the hull of a, b.
                if let Expr::Tuple(es, _) = arg {
                    if es.len() == 2 {
                        if let (Expr::App(f2, arg2, _), Expr::Int(2, _)) = (&es[0], &es[1]) {
                            if matches!(f2.as_ref(), Expr::Var(i) if i.name == "+"
                                && !env.contains_key("+"))
                            {
                                if let Expr::Tuple(xs, _) = arg2.as_ref() {
                                    if xs.len() == 2 {
                                        let a = self.eval(&xs[0], env);
                                        let b = self.eval(&xs[1], env);
                                        if let (Some(x), Some(y)) = (a.int(), b.int()) {
                                            return AbsVal::Int(x.join(y, &self.syms));
                                        }
                                        return AbsVal::Other;
                                    }
                                }
                            }
                        }
                    }
                }
                match bin(self, env) {
                    Some((a, b)) => {
                        let d = b.int().and_then(|i| i.as_exact()).and_then(|l| l.as_const());
                        match (a.int(), d) {
                            (Some(x), Some(d)) if d > 0 => AbsVal::Int(x.fdiv(d, &self.syms)),
                            _ => AbsVal::Other,
                        }
                    }
                    None => {
                        self.eval(arg, env);
                        AbsVal::Other
                    }
                }
            }
            "mod" => match bin(self, env) {
                Some((_, b)) => {
                    let d = b.int().and_then(|i| i.as_exact()).and_then(|l| l.as_const());
                    match d {
                        Some(d) if d > 0 => {
                            AbsVal::Int(Interval::of(Some(Lin::lit(0)), Some(Lin::lit(d - 1))))
                        }
                        _ => AbsVal::Other,
                    }
                }
                None => {
                    self.eval(arg, env);
                    AbsVal::Other
                }
            },
            "~" => {
                let v = self.eval(arg, env);
                match v.int() {
                    Some(i) => AbsVal::Int(i.scale(-1)),
                    None => AbsVal::Other,
                }
            }
            "length" => {
                let v = self.eval(arg, env);
                match v {
                    AbsVal::Arr(len) => AbsVal::Int(len),
                    _ => AbsVal::Other,
                }
            }
            "array" => match bin(self, env) {
                Some((n, _)) => match n.int() {
                    Some(i) => AbsVal::Arr(i.clone()),
                    None => AbsVal::Arr(Interval::top()),
                },
                None => {
                    self.eval(arg, env);
                    AbsVal::Other
                }
            },
            _ => {
                self.eval(arg, env);
                AbsVal::Other
            }
        }
    }

    /// Recognizes `b_expr = (c - a) div k` against the left operand `a`
    /// of an addition; returns the abstraction of `c` when it matches.
    fn midpoint_offset(&mut self, a: &'p Expr, b: &'p Expr, env: &mut AEnv) -> Option<AbsVal> {
        let Expr::App(df, darg, _) = b else { return None };
        let is_prim = |e: &Expr, s: &str, env: &AEnv| matches!(e, Expr::Var(i) if i.name == s && !env.contains_key(s));
        if !is_prim(df, "div", env) {
            return None;
        }
        let Expr::Tuple(des, _) = darg.as_ref() else { return None };
        let [num, den] = des.as_slice() else { return None };
        let k = match den {
            Expr::Int(k, _) if *k >= 1 => *k,
            _ => return None,
        };
        let _ = k;
        let Expr::App(sf, sarg, _) = num else { return None };
        if !is_prim(sf, "-", env) {
            return None;
        }
        let Expr::Tuple(ses, _) = sarg.as_ref() else { return None };
        let [c, a2] = ses.as_slice() else { return None };
        let same_var = match (a, a2) {
            (Expr::Var(x), Expr::Var(y)) => x.name == y.name,
            (Expr::Int(x, _), Expr::Int(y, _)) => x == y,
            _ => false,
        };
        if !same_var {
            return None;
        }
        Some(self.eval(c, env))
    }

    /// Occurrence-style narrowing from a branch condition.
    fn narrow(&mut self, cond: &'p Expr, positive: bool, env: &mut AEnv) {
        match cond {
            Expr::Andalso(a, b, _) if positive => {
                self.narrow(a, true, env);
                self.narrow(b, true, env);
            }
            Expr::Orelse(a, b, _) if !positive => {
                self.narrow(a, false, env);
                self.narrow(b, false, env);
            }
            Expr::App(f, arg, _) => {
                if let Expr::Var(name) = f.as_ref() {
                    if name.name == "not" && !env.contains_key("not") {
                        self.narrow(arg, !positive, env);
                        return;
                    }
                    let op = match name.name.as_str() {
                        "<" => Some(CmpOp::Lt),
                        "<=" => Some(CmpOp::Le),
                        ">" => Some(CmpOp::Gt),
                        ">=" => Some(CmpOp::Ge),
                        "=" => Some(CmpOp::Eq),
                        "<>" => Some(CmpOp::Neq),
                        _ => None,
                    };
                    if let (Some(op), false) = (op, env.contains_key(&name.name)) {
                        if let Expr::Tuple(es, _) = arg.as_ref() {
                            if let [lhs, rhs] = es.as_slice() {
                                let op = if positive { op } else { negate(op) };
                                self.narrow_cmp(lhs, op, rhs, env);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn narrow_cmp(&mut self, lhs: &'p Expr, op: CmpOp, rhs: &'p Expr, env: &mut AEnv) {
        let lv = self.eval(lhs, &mut env.clone());
        let rv = self.eval(rhs, &mut env.clone());
        // Harvest widening thresholds from exact comparison operands.
        for v in [&lv, &rv] {
            if let Some(e) = v.int().and_then(|i| i.as_exact()) {
                self.thresholds.insert(e.clone());
                if let Some(p) = e.add(&Lin::lit(1)) {
                    self.thresholds.insert(p);
                }
                if let Some(m) = e.sub(&Lin::lit(1)) {
                    self.thresholds.insert(m);
                }
            }
        }
        if let (Expr::Var(x), Some(r)) = (lhs, rv.int()) {
            self.narrow_var(&x.name, op, r, env);
        }
        if let (Expr::Var(y), Some(l)) = (rhs, lv.int()) {
            self.narrow_var(&y.name, flip(op), l, env);
        }
    }

    /// Applies `x OP iv` to the interval of `x` in `env`.
    fn narrow_var(&mut self, x: &str, op: CmpOp, iv: &Interval, env: &mut AEnv) {
        let Some(AbsVal::Int(cur)) = env.get(x).cloned() else { return };
        let one = Lin::lit(1);
        let narrowed = match op {
            CmpOp::Lt => match iv.hi.fin().and_then(|h| h.sub(&one)) {
                Some(h) => cur.clamp_hi(&h, &self.syms),
                None => cur,
            },
            CmpOp::Le => match iv.hi.fin() {
                Some(h) => cur.clamp_hi(h, &self.syms),
                None => cur,
            },
            CmpOp::Gt => match iv.lo.fin().and_then(|l| l.add(&one)) {
                Some(l) => cur.clamp_lo(&l, &self.syms),
                None => cur,
            },
            CmpOp::Ge => match iv.lo.fin() {
                Some(l) => cur.clamp_lo(l, &self.syms),
                None => cur,
            },
            CmpOp::Eq => {
                let mut out = cur;
                if let Some(l) = iv.lo.fin() {
                    out = out.clamp_lo(l, &self.syms);
                }
                if let Some(h) = iv.hi.fin() {
                    out = out.clamp_hi(h, &self.syms);
                }
                out
            }
            CmpOp::Neq => match iv.as_exact() {
                Some(e) => cur.shave_ne(e),
                None => cur,
            },
        };
        env.insert(x.to_string(), AbsVal::Int(narrowed));
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Eq => CmpOp::Neq,
        CmpOp::Neq => CmpOp::Eq,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Neq => CmpOp::Neq,
    }
}
