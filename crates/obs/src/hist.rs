//! Fixed-bucket, log-scale latency histograms.
//!
//! `SolverStats` records one histogram per solver phase (lowering, DNF
//! expansion, elimination, witness search) plus one for whole-goal decide
//! time. Recording is two comparisons and an increment — cheap enough to
//! stay on unconditionally — and the histogram is only *rendered* on
//! request (`dmlc table 1 --timings`), so default output is unchanged.

use std::fmt;
use std::time::Duration;

/// Bucket upper bounds in nanoseconds; the last bucket is unbounded.
const BOUNDS_NS: [u64; 6] = [
    10_000,        // < 10µs
    100_000,       // < 100µs
    1_000_000,     // < 1ms
    10_000_000,    // < 10ms
    100_000_000,   // < 100ms
    1_000_000_000, // < 1s
];

/// Human-readable labels, index-aligned with the histogram buckets.
pub const BUCKET_LABELS: [&str; 7] = ["<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"];

/// A latency histogram with seven logarithmic buckets from 10µs to 1s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingHistogram {
    buckets: [u64; 7],
}

impl TimingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = BOUNDS_NS.iter().position(|&b| ns < b).unwrap_or(BOUNDS_NS.len());
        self.buckets[idx] += 1;
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &TimingHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Raw bucket counts, index-aligned with [`BUCKET_LABELS`].
    pub fn buckets(&self) -> &[u64; 7] {
        &self.buckets
    }
}

impl fmt::Display for TimingHistogram {
    /// Renders only non-empty buckets: `"<10us: 12  <1ms: 3"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(no samples)");
        }
        let mut first = true;
        for (label, n) in BUCKET_LABELS.iter().zip(self.buckets.iter()) {
            if *n == 0 {
                continue;
            }
            if !first {
                write!(f, "  ")?;
            }
            write!(f, "{label}: {n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_magnitude() {
        let mut h = TimingHistogram::new();
        h.record(Duration::from_nanos(5_000)); // <10us
        h.record(Duration::from_micros(50)); // <100us
        h.record(Duration::from_millis(5)); // <10ms
        h.record(Duration::from_secs(2)); // >=1s
        assert_eq!(h.buckets(), &[1, 1, 0, 1, 0, 0, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TimingHistogram::new();
        a.record(Duration::from_nanos(1));
        let mut b = TimingHistogram::new();
        b.record(Duration::from_nanos(2));
        b.record(Duration::from_secs(3));
        a.merge(&b);
        assert_eq!(a.buckets(), &[2, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = TimingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets(), &[0; 7]);
        assert_eq!(h.to_string(), "(no samples)");
        // Merging an empty histogram in either direction is a no-op.
        let mut a = TimingHistogram::new();
        a.record(Duration::from_micros(3));
        let before = a;
        a.merge(&h);
        assert_eq!(a, before);
        let mut e = TimingHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn single_sample_lands_in_exactly_one_bucket() {
        // One sample per bucket boundary region, including both edges of
        // the bounds array: 0ns goes to the first bucket, an exact bound
        // value goes to the *next* bucket (bounds are exclusive upper).
        let cases: [(Duration, usize); 4] = [
            (Duration::ZERO, 0),
            (Duration::from_nanos(9_999), 0),
            (Duration::from_nanos(10_000), 1),
            (Duration::from_nanos(999_999_999), 5),
        ];
        for (d, want) in cases {
            let mut h = TimingHistogram::new();
            h.record(d);
            assert_eq!(h.count(), 1, "{d:?}");
            assert!(!h.is_empty());
            let hit: Vec<usize> =
                h.buckets().iter().enumerate().filter(|(_, n)| **n > 0).map(|(i, _)| i).collect();
            assert_eq!(hit, vec![want], "{d:?} landed in the wrong bucket");
        }
    }

    #[test]
    fn max_bucket_absorbs_overflow_durations() {
        // Everything >= 1s — including durations whose nanosecond count
        // exceeds u64 — saturates into the last (unbounded) bucket rather
        // than panicking or wrapping.
        let mut h = TimingHistogram::new();
        h.record(Duration::from_secs(1));
        h.record(Duration::from_secs(86_400));
        h.record(Duration::MAX); // as_nanos() > u64::MAX, exercises the clamp
        assert_eq!(h.buckets(), &[0, 0, 0, 0, 0, 0, 3]);
        assert_eq!(h.to_string(), ">=1s: 3");
    }

    #[test]
    fn display_skips_empty_buckets() {
        let mut h = TimingHistogram::new();
        assert_eq!(h.to_string(), "(no samples)");
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_millis(500));
        assert_eq!(h.to_string(), "<10us: 2  <1s: 1");
    }
}
