//! Chrome trace-event-format writer.
//!
//! Produces the JSON Object Format understood by `chrome://tracing` and
//! Perfetto: a top-level object with a `traceEvents` array of complete
//! (`"ph":"X"`) and instant (`"ph":"i"`) events, plus `otherData` metadata.
//! `dmlc check --trace-out` uses this to lay out pipeline phases and
//! per-goal solver spans on a timeline.
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds, per the
//! format. The goal spans written by the pipeline are laid out
//! *sequentially* from measured per-goal durations — a synthetic timeline
//! that reflects cost per goal, not concurrent wall-clock scheduling.

use crate::json::{obj, Json};

/// Builder for one Chrome-format trace file.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
    other: Vec<(String, Json)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a complete (`"ph":"X"`) span. `ts_us`/`dur_us` are microseconds;
    /// `tid` picks the timeline row.
    pub fn span(&mut self, name: &str, cat: &str, tid: u32, ts_us: u64, dur_us: u64, args: Json) {
        self.events.push(obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str(cat.to_string())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Int(ts_us as i64)),
            ("dur", Json::Int(dur_us as i64)),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i64::from(tid))),
            ("args", args),
        ]));
    }

    /// Add a global instant (`"ph":"i"`) event.
    pub fn instant(&mut self, name: &str, cat: &str, tid: u32, ts_us: u64, args: Json) {
        self.events.push(obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str(cat.to_string())),
            ("ph", Json::Str("i".into())),
            ("s", Json::Str("g".into())),
            ("ts", Json::Int(ts_us as i64)),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i64::from(tid))),
            ("args", args),
        ]));
    }

    /// Name a timeline row via a `thread_name` metadata event.
    pub fn name_thread(&mut self, tid: u32, name: &str) {
        self.events.push(obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i64::from(tid))),
            ("args", obj(vec![("name", Json::Str(name.to_string()))])),
        ]));
    }

    /// Attach a key under the top-level `otherData` object.
    pub fn meta(&mut self, key: &str, value: Json) {
        self.other.push((key.to_string(), value));
    }

    /// Number of events added so far (metadata events included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the complete trace file.
    pub fn render(&self) -> String {
        let mut other =
            vec![("schemaVersion".to_string(), Json::Int(i64::from(crate::SCHEMA_VERSION)))];
        other.extend(self.other.iter().cloned());
        obj(vec![
            ("traceEvents", Json::Array(self.events.clone())),
            ("displayTimeUnit", Json::Str("ms".into())),
            ("otherData", Json::Object(other)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_loadable_shape() {
        let mut t = ChromeTrace::new();
        t.name_thread(0, "pipeline");
        t.span("solve", "solver", 0, 10, 250, obj(vec![("goals", Json::Int(3))]));
        t.instant("residual", "elab", 0, 260, Json::Object(vec![]));
        t.meta("program", Json::Str("bsearch".into()));
        let out = t.render();
        assert!(out.starts_with(r#"{"traceEvents":["#));
        assert!(out.contains(r#""ph":"X","ts":10,"dur":250"#));
        assert!(out.contains(r#""ph":"i","s":"g""#));
        assert!(out.contains(r#""schemaVersion":1"#));
        assert!(out.contains(r#""program":"bsearch""#));
        assert!(out.ends_with("}"));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn non_ascii_goal_labels_survive_escaping() {
        // Goal labels come from user source (variable names, notes) and
        // may carry non-ASCII. JSON only *requires* escaping quotes,
        // backslashes, and control characters; multi-byte UTF-8 passes
        // through raw and must not be mangled or double-escaped.
        let mut t = ChromeTrace::new();
        t.span("0 ≤ ν∧ν < länge", "solver", 0, 0, 5, Json::Object(vec![]));
        t.name_thread(0, "goals — φ");
        let out = t.render();
        assert!(out.contains(r#""name":"0 ≤ ν∧ν < länge""#), "raw UTF-8 must pass through: {out}");
        assert!(out.contains(r#""name":"goals — φ""#));
        assert!(!out.contains("\\u00"), "no spurious unicode escapes: {out}");
    }

    #[test]
    fn control_chars_and_quotes_in_labels_are_escaped() {
        let mut t = ChromeTrace::new();
        t.instant("a\"b\\c\nd\te\u{1}f", "cat", 0, 0, Json::Object(vec![]));
        let out = t.render();
        let expected = concat!(r#""name":"a\"b\\c\nd\te"#, "\\u0001", r#"f""#);
        assert!(out.contains(expected), "{out}");
    }
}
