//! Structured observability for the dml-rs pipeline.
//!
//! This crate is deliberately dependency-free (it mirrors the hand-rolled
//! JSON approach of `crates/bench/src/json.rs`): events carry plain strings
//! and integers so that every layer of the pipeline — elaboration, the
//! solver, residual lowering — can emit them without pulling the index
//! language into scope.
//!
//! Three pieces:
//!
//! - [`TraceEvent`] / [`GoalTrace`]: typed per-goal event buffers. The
//!   solver fills one buffer per proof goal; buffers are merged in
//!   obligation order by the parallel driver, so traces are deterministic
//!   under `workers > 1`.
//! - [`TimingHistogram`]: fixed-bucket log-scale latency histograms used by
//!   `SolverStats` for per-phase timing.
//! - [`ChromeTrace`]: a writer for the Chrome trace-event format
//!   (loadable in `chrome://tracing` / Perfetto), used by
//!   `dmlc check --trace-out`.
//!
//! The stable JSON schema for `--trace-out` files is documented in
//! `docs/ARCHITECTURE.md` ("Trace-event schema"); [`SCHEMA_VERSION`] is
//! bumped whenever that contract changes.

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;

pub use chrome::ChromeTrace;
pub use event::{GoalTrace, TraceEvent};
pub use hist::TimingHistogram;
pub use json::Json;

/// Version of the `--trace-out` JSON contract documented in
/// `docs/ARCHITECTURE.md`. Bumped on any breaking schema change.
pub const SCHEMA_VERSION: u32 = 1;
