//! Typed trace events and per-goal event buffers.
//!
//! Events are plain data (strings and integers); producers render index
//! vocabulary (variables, inequalities, sites) to strings *before* emitting,
//! using stable names so that traces are byte-identical across worker
//! counts and cache configurations. Events that are inherently
//! configuration-dependent ([`TraceEvent::Cache`]) are marked as such and
//! excluded from the deterministic `dmlc explain` rendering.

use std::fmt;

/// One structured event recorded while generating or deciding a proof goal.
///
/// The variant set is the in-memory mirror of the JSON event schema
/// documented in `docs/ARCHITECTURE.md`; [`TraceEvent::tag`] gives the
/// stable snake_case name used in serialized traces.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Elaboration generated a proof obligation at a source site.
    Obligation {
        /// Obligation kind, e.g. `"bound"` or `"guard"`.
        kind: String,
        /// Source span, rendered `line:col`.
        site: String,
        /// Enclosing function name.
        in_fun: String,
    },
    /// A cheap syntactic fast path decided the goal before elimination.
    FastPath {
        /// Which rule fired (`"trivial-conclusion"`, `"false-hypothesis"`,
        /// `"reflexive"`, `"assumption"`).
        rule: &'static str,
    },
    /// The goal was alpha-renamed into canonical form for the verdict cache.
    Canonicalized {
        /// Number of bound index variables after canonicalization.
        vars: usize,
        /// Number of hypotheses after sorting and deduplication.
        hyps: usize,
    },
    /// Verdict-cache lookup. Configuration-dependent: excluded from the
    /// deterministic `dmlc explain` rendering, present in `--trace-out`.
    Cache {
        /// Whether the canonical goal was already cached.
        hit: bool,
    },
    /// A non-linear hypothesis could not be lowered and was weakened away.
    HypothesisDropped {
        /// Display form of the dropped constraint.
        expr: String,
    },
    /// Non-linear subterms were lowered to fresh linear variables.
    Lowered {
        /// Number of fresh variables introduced by lowering.
        fresh_vars: usize,
    },
    /// The negated goal expanded into a DNF of inequality systems.
    Dnf {
        /// Number of disjunct systems to refute.
        disjuncts: usize,
    },
    /// Fourier–Motzkin refutation started on one disjunct system.
    SystemStart {
        /// Disjunct index, 0-based.
        index: usize,
        /// Number of inequalities entering elimination.
        ineqs: usize,
    },
    /// Integer tightening rounded constraints down (Omega-style).
    Tightened {
        /// Number of inequalities whose bounds were tightened.
        count: u64,
    },
    /// One FM variable-elimination round.
    Eliminate {
        /// Stable display name of the eliminated variable.
        var: String,
        /// Number of upper-bound constraints on the variable.
        uppers: usize,
        /// Number of lower-bound constraints on the variable.
        lowers: usize,
        /// Upper×lower pairs actually combined (the fuel charged).
        pairs: u64,
        /// Combined inequalities tightened during this round.
        tightened: u64,
    },
    /// A contradictory constant inequality was derived: the disjunct is
    /// refuted.
    Contradiction {
        /// Display form of the contradictory inequality, e.g. `1 <= 0`.
        ineq: String,
    },
    /// Fuel accounting snapshot after a refutation attempt.
    Fuel {
        /// Total fuel (pair combinations) charged so far for this goal.
        spent: u64,
        /// Fuel remaining, or `None` under an unlimited budget.
        remaining: Option<u64>,
    },
    /// An integer witness falsifying the goal was found by bounded search.
    Witness {
        /// Variable assignment, sorted by variable name.
        assignment: Vec<(String, i64)>,
    },
    /// An unproven check was lowered to a residual runtime check.
    Residual {
        /// Source span of the retained check.
        site: String,
        /// Checked primitive, e.g. `"sub"` (array read).
        prim: String,
        /// Why the goal stayed unknown.
        reason: String,
    },
    /// Final verdict for the goal.
    Verdict {
        /// Display form of the verdict, e.g. `"proven"`.
        verdict: String,
    },
}

impl TraceEvent {
    /// Stable snake_case tag used in serialized traces (`--trace-out`).
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Obligation { .. } => "obligation",
            TraceEvent::FastPath { .. } => "fast_path",
            TraceEvent::Canonicalized { .. } => "canonicalized",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::HypothesisDropped { .. } => "hypothesis_dropped",
            TraceEvent::Lowered { .. } => "lowered",
            TraceEvent::Dnf { .. } => "dnf",
            TraceEvent::SystemStart { .. } => "system_start",
            TraceEvent::Tightened { .. } => "tightened",
            TraceEvent::Eliminate { .. } => "eliminate",
            TraceEvent::Contradiction { .. } => "contradiction",
            TraceEvent::Fuel { .. } => "fuel",
            TraceEvent::Witness { .. } => "witness",
            TraceEvent::Residual { .. } => "residual",
            TraceEvent::Verdict { .. } => "verdict",
        }
    }

    /// `true` for events whose presence or payload depends on the session
    /// configuration (workers, cache) rather than on the goal itself.
    /// Deterministic renderings (`dmlc explain`) skip these.
    pub fn is_config_dependent(&self) -> bool {
        matches!(self, TraceEvent::Cache { .. })
    }

    /// Event payload as a JSON object (used by the Chrome-trace writer).
    pub fn args(&self) -> crate::json::Json {
        use crate::json::{obj, Json};
        match self {
            TraceEvent::Obligation { kind, site, in_fun } => obj(vec![
                ("kind", Json::Str(kind.clone())),
                ("site", Json::Str(site.clone())),
                ("in_fun", Json::Str(in_fun.clone())),
            ]),
            TraceEvent::FastPath { rule } => obj(vec![("rule", Json::Str((*rule).into()))]),
            TraceEvent::Canonicalized { vars, hyps } => {
                obj(vec![("vars", Json::Int(*vars as i64)), ("hyps", Json::Int(*hyps as i64))])
            }
            TraceEvent::Cache { hit } => obj(vec![("hit", Json::Bool(*hit))]),
            TraceEvent::HypothesisDropped { expr } => obj(vec![("expr", Json::Str(expr.clone()))]),
            TraceEvent::Lowered { fresh_vars } => {
                obj(vec![("fresh_vars", Json::Int(*fresh_vars as i64))])
            }
            TraceEvent::Dnf { disjuncts } => obj(vec![("disjuncts", Json::Int(*disjuncts as i64))]),
            TraceEvent::SystemStart { index, ineqs } => {
                obj(vec![("index", Json::Int(*index as i64)), ("ineqs", Json::Int(*ineqs as i64))])
            }
            TraceEvent::Tightened { count } => obj(vec![("count", Json::Int(*count as i64))]),
            TraceEvent::Eliminate { var, uppers, lowers, pairs, tightened } => obj(vec![
                ("var", Json::Str(var.clone())),
                ("uppers", Json::Int(*uppers as i64)),
                ("lowers", Json::Int(*lowers as i64)),
                ("pairs", Json::Int(*pairs as i64)),
                ("tightened", Json::Int(*tightened as i64)),
            ]),
            TraceEvent::Contradiction { ineq } => obj(vec![("ineq", Json::Str(ineq.clone()))]),
            TraceEvent::Fuel { spent, remaining } => obj(vec![
                ("spent", Json::Int(*spent as i64)),
                (
                    "remaining",
                    match remaining {
                        Some(r) => Json::Int(*r as i64),
                        None => Json::Null,
                    },
                ),
            ]),
            TraceEvent::Witness { assignment } => obj(vec![(
                "assignment",
                Json::Object(assignment.iter().map(|(v, n)| (v.clone(), Json::Int(*n))).collect()),
            )]),
            TraceEvent::Residual { site, prim, reason } => obj(vec![
                ("site", Json::Str(site.clone())),
                ("prim", Json::Str(prim.clone())),
                ("reason", Json::Str(reason.clone())),
            ]),
            TraceEvent::Verdict { verdict } => obj(vec![("verdict", Json::Str(verdict.clone()))]),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Obligation { kind, site, in_fun } => {
                write!(f, "obligation {kind} at {site} in {in_fun}")
            }
            TraceEvent::FastPath { rule } => write!(f, "fast path: {rule}"),
            TraceEvent::Canonicalized { vars, hyps } => {
                write!(f, "canonicalized: {vars} vars, {hyps} hyps")
            }
            TraceEvent::Cache { hit } => {
                write!(f, "cache {}", if *hit { "hit" } else { "miss" })
            }
            TraceEvent::HypothesisDropped { expr } => {
                write!(f, "hypothesis dropped (non-linear): {expr}")
            }
            TraceEvent::Lowered { fresh_vars } => {
                write!(f, "lowered {fresh_vars} non-linear subterm(s)")
            }
            TraceEvent::Dnf { disjuncts } => write!(f, "negation split into {disjuncts} system(s)"),
            TraceEvent::SystemStart { index, ineqs } => {
                write!(f, "system {index}: {ineqs} inequalities")
            }
            TraceEvent::Tightened { count } => write!(f, "tightened {count} inequality(s)"),
            TraceEvent::Eliminate { var, uppers, lowers, pairs, tightened } => write!(
                f,
                "eliminate {var}: {uppers} upper x {lowers} lower -> {pairs} pair(s), {tightened} tightened"
            ),
            TraceEvent::Contradiction { ineq } => write!(f, "contradiction: {ineq}"),
            TraceEvent::Fuel { spent, remaining } => match remaining {
                Some(r) => write!(f, "fuel: {spent} spent, {r} remaining"),
                None => write!(f, "fuel: {spent} spent (unlimited budget)"),
            },
            TraceEvent::Witness { assignment } => {
                write!(f, "witness:")?;
                for (v, n) in assignment {
                    write!(f, " {v} = {n}")?;
                }
                Ok(())
            }
            TraceEvent::Residual { site, prim, reason } => {
                write!(f, "residual {prim} check at {site}: {reason}")
            }
            TraceEvent::Verdict { verdict } => write!(f, "verdict: {verdict}"),
        }
    }
}

/// The ordered event buffer for one proof goal.
///
/// Each goal gets its own buffer regardless of which worker decided it; the
/// parallel driver merges buffers back in obligation order, so a trace's
/// content and ordering are independent of `workers`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoalTrace {
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Total fuel (FM pair combinations) charged for this goal —
    /// deterministic, unlike wall time.
    pub fuel_spent: u64,
    /// Wall-clock time deciding the goal, in nanoseconds. Only surfaced in
    /// Chrome traces; never part of deterministic renderings.
    pub wall_ns: u64,
}

impl GoalTrace {
    /// Append one event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// The goal's final verdict string, if a [`TraceEvent::Verdict`] was
    /// recorded.
    pub fn verdict(&self) -> Option<&str> {
        self.events.iter().rev().find_map(|e| match e {
            TraceEvent::Verdict { verdict } => Some(verdict.as_str()),
            _ => None,
        })
    }

    /// The falsifying assignment, if a [`TraceEvent::Witness`] was recorded.
    pub fn witness(&self) -> Option<&[(String, i64)]> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Witness { assignment } => Some(assignment.as_slice()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(TraceEvent::FastPath { rule: "assumption" }.tag(), "fast_path");
        assert_eq!(TraceEvent::Cache { hit: true }.tag(), "cache");
        assert_eq!(TraceEvent::Verdict { verdict: "proven".into() }.tag(), "verdict");
    }

    #[test]
    fn only_cache_is_config_dependent() {
        assert!(TraceEvent::Cache { hit: false }.is_config_dependent());
        assert!(!TraceEvent::Dnf { disjuncts: 2 }.is_config_dependent());
        assert!(!TraceEvent::Verdict { verdict: "proven".into() }.is_config_dependent());
    }

    #[test]
    fn goal_trace_accessors() {
        let mut t = GoalTrace::default();
        assert_eq!(t.verdict(), None);
        t.push(TraceEvent::Witness { assignment: vec![("n".into(), 6)] });
        t.push(TraceEvent::Verdict { verdict: "refuted".into() });
        assert_eq!(t.verdict(), Some("refuted"));
        assert_eq!(t.witness(), Some(&[("n".to_string(), 6)][..]));
    }

    #[test]
    fn display_forms() {
        let e =
            TraceEvent::Eliminate { var: "i".into(), uppers: 2, lowers: 1, pairs: 2, tightened: 0 };
        assert_eq!(e.to_string(), "eliminate i: 2 upper x 1 lower -> 2 pair(s), 0 tightened");
        let w = TraceEvent::Witness { assignment: vec![("n".into(), 6)] };
        assert_eq!(w.to_string(), "witness: n = 6");
    }
}
