//! Minimal hand-rolled JSON builder (same approach as
//! `crates/bench/src/json.rs`): the workspace takes zero third-party
//! dependencies, and trace output only needs construction + rendering,
//! never parsing.
//!
//! Objects preserve insertion order so rendered traces are reproducible.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
    /// Array.
    Array(Vec<Json>),
    /// String (escaped on render).
    Str(String),
    /// Integer.
    Int(i64),
    /// Float, rendered with six decimal places.
    Num(f64),
    /// Boolean.
    Bool(bool),
}

/// Build an object from `(&str, Json)` pairs, preserving order.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Json {
    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                let _ = write!(out, "{n:.6}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact() {
        let j = obj(vec![
            ("name", Json::Str("fm".into())),
            ("pairs", Json::Int(12)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Array(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(j.render(), r#"{"name":"fm","pairs":12,"ok":true,"none":null,"xs":[1,2]}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn floats_fixed_precision() {
        assert_eq!(Json::Num(1.5).render(), "1.500000");
    }
}
