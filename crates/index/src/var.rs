//! Interned index variables.
//!
//! A [`Var`] pairs a unique numeric id with a human-readable base name.
//! Identity (equality, hashing, ordering) is by id only, so two variables
//! both displayed as `n` never collide, and substitution is capture-free
//! as long as binders always use fresh ids (which [`VarGen`] guarantees).

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// An index variable: a unique id plus a display name.
#[derive(Debug, Clone)]
pub struct Var {
    id: u32,
    name: Arc<str>,
}

impl Var {
    /// Creates a variable with an explicit id. Prefer [`VarGen::fresh`].
    pub fn new(id: u32, name: impl Into<Arc<str>>) -> Self {
        Var { id, name: name.into() }
    }

    /// The unique id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The display name (not necessarily unique).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Var {}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Var {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A supply of fresh [`Var`]s.
///
/// A supply owns a half-open id range `next..limit` (the default supply
/// owns everything up to `u32::MAX`). [`VarGen::split`] carves disjoint
/// sub-ranges out of a supply so parallel solver workers can generate
/// fresh variables without any synchronisation and still never collide
/// with each other or with the parent supply.
#[derive(Debug, Clone)]
pub struct VarGen {
    next: u32,
    limit: u32,
}

impl Default for VarGen {
    fn default() -> Self {
        VarGen { next: 0, limit: u32::MAX }
    }
}

/// Ids reserved for one worker by [`VarGen::split`]. A single `prove` run
/// introduces at most a few fresh variables per goal, so a million ids per
/// worker is beyond any realistic solve while leaving thousands of splits
/// available in the 32-bit id space.
const SPLIT_STRIDE: u32 = 1 << 20;

impl VarGen {
    /// Creates a fresh supply starting at id 0.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Creates a supply that starts at `start` (and owns ids up to
    /// `u32::MAX`). Used to hand out disjoint ranges explicitly; prefer
    /// [`VarGen::split`] when carving from an existing supply.
    pub fn starting_at(start: u32) -> Self {
        VarGen { next: start, limit: u32::MAX }
    }

    /// Returns a fresh variable with the given display name.
    pub fn fresh(&mut self, name: &str) -> Var {
        let id = self.next;
        assert!(id < self.limit, "VarGen id range exhausted");
        self.next += 1;
        Var::new(id, name)
    }

    /// Returns a fresh variable whose display name is derived from `base`
    /// with the id appended, e.g. `E#12` — used for elaboration-introduced
    /// existential variables so Figure-4-style output stays readable.
    pub fn fresh_tagged(&mut self, base: &str) -> Var {
        let id = self.next;
        assert!(id < self.limit, "VarGen id range exhausted");
        self.next += 1;
        Var::new(id, format!("{base}#{id}"))
    }

    /// Number of variables generated so far.
    pub fn count(&self) -> u32 {
        self.next
    }

    /// Ids left in this supply's range before [`VarGen::fresh`] panics.
    pub fn remaining(&self) -> u32 {
        self.limit - self.next
    }

    /// Ensures future ids are strictly greater than `id` (used when a
    /// supply must not collide with variables created elsewhere).
    pub fn advance_past(&mut self, id: u32) {
        if self.next <= id {
            self.next = id + 1;
        }
    }

    /// Carves `n` disjoint sub-supplies out of this supply, each owning a
    /// contiguous range of fresh ids. The parent advances past the whole
    /// carved region, so no variable it generates later can collide with a
    /// worker's, and no two workers can collide with each other.
    ///
    /// Panics if the remaining id space cannot fit `n` stride-sized
    /// ranges (practically unreachable: >4000 sixteen-way splits fit).
    ///
    /// `split` fixes the partition at spawn time, which is only sound when
    /// each sub-supply stays pinned to one worker for the whole batch. Under
    /// work-stealing — where the set of threads touching a batch is not
    /// known up front — use [`VarLease`] instead.
    pub fn split(&mut self, n: usize) -> Vec<VarGen> {
        let n = n.max(1);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let start = self.next;
            let end = start
                .checked_add(SPLIT_STRIDE)
                .filter(|e| *e <= self.limit)
                .expect("VarGen id space exhausted by split");
            out.push(VarGen { next: start, limit: end });
            self.next = end;
        }
        out
    }
}

/// An atomically-leased region of fresh variable ids.
///
/// [`VarGen::split`] partitions ids by worker *at spawn time*, which is
/// unsound under work-stealing: a thread that steals goals beyond its
/// original share would have to mint ids from a range it does not own.
/// A `VarLease` instead carves one region out of a parent supply and hands
/// out disjoint chunks on demand through an atomic cursor — any number of
/// threads can lease any number of chunks, in any schedule, and no id is
/// ever produced twice. The parent supply advances past the whole region
/// at carve time, so its later ids cannot collide with leased ones either.
#[derive(Debug)]
pub struct VarLease {
    next: AtomicU32,
    limit: u32,
}

impl VarLease {
    /// Carves a `size`-id region out of `parent` (which advances past it).
    ///
    /// Panics if the parent's remaining id space is smaller than `size`.
    pub fn carve(parent: &mut VarGen, size: u32) -> VarLease {
        let start = parent.next;
        let end = start
            .checked_add(size)
            .filter(|e| *e <= parent.limit)
            .expect("VarGen id space exhausted by lease carve");
        parent.next = end;
        VarLease { next: AtomicU32::new(start), limit: end }
    }

    /// Atomically leases the next `n`-id chunk as a fresh supply.
    ///
    /// Panics if the region is exhausted; size the carve for the worst
    /// case (callers lease one chunk per work unit, so `chunks × n` bounds
    /// the region).
    pub fn lease(&self, n: u32) -> VarGen {
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        let end = start.checked_add(n).filter(|e| *e <= self.limit).unwrap_or_else(|| {
            panic!("VarLease region exhausted (lease of {n} past {})", self.limit)
        });
        VarGen { next: start, limit: end }
    }

    /// Ids not yet leased.
    pub fn remaining(&self) -> u32 {
        self.limit.saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_is_by_id() {
        let a = Var::new(0, "n");
        let b = Var::new(1, "n");
        let c = Var::new(0, "m");
        assert_ne!(a, b);
        assert_eq!(a, c, "same id, different display name");
    }

    #[test]
    fn gen_produces_distinct_vars() {
        let mut g = VarGen::new();
        let vs: HashSet<Var> = (0..100).map(|_| g.fresh("x")).collect();
        assert_eq!(vs.len(), 100);
        assert_eq!(g.count(), 100);
    }

    #[test]
    fn tagged_names_include_id() {
        let mut g = VarGen::new();
        g.fresh("a");
        let v = g.fresh_tagged("E");
        assert_eq!(v.to_string(), "E#1");
    }

    #[test]
    fn advance_past_prevents_collisions() {
        let mut g = VarGen::new();
        g.advance_past(10);
        assert_eq!(g.fresh("x").id(), 11);
        g.advance_past(5); // no-op, already past
        assert_eq!(g.fresh("y").id(), 12);
    }

    #[test]
    fn ordering_follows_ids() {
        let mut g = VarGen::new();
        let a = g.fresh("z");
        let b = g.fresh("a");
        assert!(a < b);
    }

    #[test]
    fn split_ranges_are_disjoint_from_each_other_and_parent() {
        let mut g = VarGen::new();
        g.fresh("before");
        let mut subs = g.split(3);
        let after = g.fresh("after");
        let mut seen = HashSet::new();
        for sub in &mut subs {
            for _ in 0..10 {
                assert!(seen.insert(sub.fresh("w").id()), "worker ids collided");
            }
        }
        assert!(!seen.contains(&after.id()), "parent id fell inside a worker range");
        assert!(after.id() > seen.iter().copied().max().unwrap());
    }

    #[test]
    fn lease_chunks_are_disjoint_from_each_other_and_parent() {
        let mut g = VarGen::new();
        g.fresh("before");
        let lease = VarLease::carve(&mut g, 1 << 10);
        let after = g.fresh("after");
        let mut seen = HashSet::new();
        for _ in 0..8 {
            let mut sub = lease.lease(64);
            for _ in 0..64 {
                assert!(seen.insert(sub.fresh("w").id()), "leased ids collided");
            }
        }
        assert!(!seen.contains(&after.id()), "parent id fell inside the leased region");
    }

    /// Regression test for work-stealing id soundness: replays a schedule
    /// where worker B steals goals that a `split`-style static partition
    /// would have assigned to worker A. Under leasing, every goal's ids
    /// come from a chunk claimed at execution time by whichever thread
    /// actually runs it, so the interleaved schedule mints no duplicate.
    #[test]
    fn lease_is_sound_under_a_stolen_goal_schedule() {
        let mut g = VarGen::new();
        let lease = VarLease::carve(&mut g, 1 << 12);
        // Schedule: A takes goal 0, B steals goals 1 and 2 while A is
        // still mid-goal, A resumes with goal 3. Chunks interleave in the
        // same order the steals happen.
        let mut a0 = lease.lease(16);
        let mut b1 = lease.lease(16);
        let ids_a0: Vec<u32> = (0..16).map(|_| a0.fresh("a").id()).collect();
        let mut b2 = lease.lease(16);
        let ids_b1: Vec<u32> = (0..16).map(|_| b1.fresh("b").id()).collect();
        let mut a3 = lease.lease(16);
        let ids_b2: Vec<u32> = (0..16).map(|_| b2.fresh("b").id()).collect();
        let ids_a3: Vec<u32> = (0..16).map(|_| a3.fresh("a").id()).collect();
        let mut all = HashSet::new();
        for id in ids_a0.iter().chain(&ids_b1).chain(&ids_b2).chain(&ids_a3) {
            assert!(all.insert(*id), "stolen schedule produced duplicate id {id}");
        }
        assert!(!all.contains(&g.fresh("parent").id()));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn lease_past_region_panics() {
        let mut g = VarGen::new();
        let lease = VarLease::carve(&mut g, 32);
        let _ = lease.lease(16);
        let _ = lease.lease(17);
    }

    #[test]
    fn starting_at_offsets_ids() {
        let mut g = VarGen::starting_at(500);
        assert_eq!(g.fresh("x").id(), 500);
        assert_eq!(g.fresh("y").id(), 501);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_sub_supply_panics() {
        let mut g = VarGen::new();
        let mut sub = g.split(1).remove(0);
        // Drain the whole stride plus one.
        for _ in 0..=(1u32 << 20) {
            sub.fresh("x");
        }
    }
}
