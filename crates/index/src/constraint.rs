//! The constraint formula language of §3:
//!
//! ```text
//! φ ::= b | φ₁ ∧ φ₂ | b ⊃ φ | ∃a:γ.φ | ∀a:γ.φ
//! ```
//!
//! Constraints are produced by the elaborator and consumed by the solver.
//! Display matches the paper's Figure 4 style, in ASCII.

use crate::prop::Prop;
use crate::sort::Sort;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

/// A constraint formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// An atomic boolean index proposition.
    Prop(Prop),
    /// Conjunction of constraints.
    And(Vec<Constraint>),
    /// Guarded constraint `b ⊃ φ`.
    Implies(Prop, Box<Constraint>),
    /// Existential quantification `∃a:γ.φ` with an optional guard from a
    /// subset sort (`{a:γ | g}` quantifies with `g` assumed).
    Exists(Var, Sort, Box<Constraint>),
    /// Universal quantification `∀a:γ.φ` with the subset-sort guard moved
    /// into an implication by the elaborator.
    Forall(Var, Sort, Box<Constraint>),
}

impl Constraint {
    /// The trivially true constraint.
    pub fn truth() -> Constraint {
        Constraint::Prop(Prop::True)
    }

    /// `true` if the constraint is syntactically `true`.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Constraint::Prop(Prop::True))
            || matches!(self, Constraint::And(cs) if cs.iter().all(Constraint::is_trivial))
    }

    /// Conjunction, folding trivial constraints away.
    pub fn and(self, other: Constraint) -> Constraint {
        match (self, other) {
            (c, d) if c.is_trivial() => d,
            (c, d) if d.is_trivial() => c,
            (Constraint::And(mut cs), Constraint::And(ds)) => {
                cs.extend(ds);
                Constraint::And(cs)
            }
            (Constraint::And(mut cs), d) => {
                cs.push(d);
                Constraint::And(cs)
            }
            (c, Constraint::And(mut ds)) => {
                ds.insert(0, c);
                Constraint::And(ds)
            }
            (c, d) => Constraint::And(vec![c, d]),
        }
    }

    /// Conjunction of many constraints.
    pub fn conj(cs: impl IntoIterator<Item = Constraint>) -> Constraint {
        cs.into_iter().fold(Constraint::truth(), Constraint::and)
    }

    /// Guards the constraint: `guard ⊃ self`, simplifying trivial cases.
    pub fn guarded_by(self, guard: Prop) -> Constraint {
        match guard {
            Prop::True => self,
            g => {
                if self.is_trivial() {
                    Constraint::truth()
                } else {
                    Constraint::Implies(g, Box::new(self))
                }
            }
        }
    }

    /// Wraps in `∀v:s.` (dropping the quantifier if `v` is not free).
    pub fn forall(v: Var, s: Sort, body: Constraint) -> Constraint {
        if body.is_trivial() || !body.free_vars().contains(&v) {
            body
        } else {
            Constraint::Forall(v, s, Box::new(body))
        }
    }

    /// Wraps in `∃v:s.` (dropping the quantifier if `v` is not free).
    pub fn exists(v: Var, s: Sort, body: Constraint) -> Constraint {
        if body.is_trivial() || !body.free_vars().contains(&v) {
            body
        } else {
            Constraint::Exists(v, s, Box::new(body))
        }
    }

    /// Free variables of the constraint.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut out);
        out
    }

    fn free_vars_into(&self, out: &mut BTreeSet<Var>) {
        match self {
            Constraint::Prop(p) => p.free_vars_into(out),
            Constraint::And(cs) => {
                for c in cs {
                    c.free_vars_into(out);
                }
            }
            Constraint::Implies(p, c) => {
                p.free_vars_into(out);
                c.free_vars_into(out);
            }
            Constraint::Exists(v, _, c) | Constraint::Forall(v, _, c) => {
                let mut inner = BTreeSet::new();
                c.free_vars_into(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
        }
    }

    /// Substitutes an integer index expression for a variable (capture-free
    /// because binder ids are globally unique).
    pub fn subst(&self, v: &Var, e: &crate::iexp::IExp) -> Constraint {
        match self {
            Constraint::Prop(p) => Constraint::Prop(p.subst(v, e)),
            Constraint::And(cs) => Constraint::And(cs.iter().map(|c| c.subst(v, e)).collect()),
            Constraint::Implies(p, c) => {
                Constraint::Implies(p.subst(v, e), Box::new(c.subst(v, e)))
            }
            Constraint::Exists(w, s, c) => {
                debug_assert_ne!(w, v, "binder ids must be globally unique");
                Constraint::Exists(w.clone(), *s, Box::new(c.subst(v, e)))
            }
            Constraint::Forall(w, s, c) => {
                debug_assert_ne!(w, v, "binder ids must be globally unique");
                Constraint::Forall(w.clone(), *s, Box::new(c.subst(v, e)))
            }
        }
    }

    /// Simultaneous capture-free substitution of integer index variables in
    /// one pass (see [`IExp::subst_many`](crate::iexp::IExp::subst_many)).
    pub fn subst_many(&self, subs: &[(Var, crate::iexp::IExp)]) -> Constraint {
        match self {
            Constraint::Prop(p) => Constraint::Prop(p.subst_many(subs)),
            Constraint::And(cs) => Constraint::And(cs.iter().map(|c| c.subst_many(subs)).collect()),
            Constraint::Implies(p, c) => {
                Constraint::Implies(p.subst_many(subs), Box::new(c.subst_many(subs)))
            }
            Constraint::Exists(w, s, c) => {
                debug_assert!(subs.iter().all(|(v, _)| v != w), "binder ids are globally unique");
                Constraint::Exists(w.clone(), *s, Box::new(c.subst_many(subs)))
            }
            Constraint::Forall(w, s, c) => {
                debug_assert!(subs.iter().all(|(v, _)| v != w), "binder ids are globally unique");
                Constraint::Forall(w.clone(), *s, Box::new(c.subst_many(subs)))
            }
        }
    }

    /// Counts the atomic propositions (used for Table 1's constraint
    /// counts).
    pub fn atom_count(&self) -> usize {
        match self {
            Constraint::Prop(Prop::True) => 0,
            Constraint::Prop(_) => 1,
            Constraint::And(cs) => cs.iter().map(Constraint::atom_count).sum(),
            Constraint::Implies(_, c) => c.atom_count(),
            Constraint::Exists(_, _, c) | Constraint::Forall(_, _, c) => c.atom_count(),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Prop(p) => write!(f, "{p}"),
            Constraint::And(cs) => {
                let mut first = true;
                for c in cs {
                    if !first {
                        write!(f, " /\\ ")?;
                    }
                    first = false;
                    match c {
                        Constraint::Prop(_) => write!(f, "{c}")?,
                        _ => write!(f, "({c})")?,
                    }
                }
                if first {
                    write!(f, "true")?;
                }
                Ok(())
            }
            Constraint::Implies(p, c) => write!(f, "({p}) ==> {c}"),
            Constraint::Exists(v, s, c) => write!(f, "exists {v}:{s}. {c}"),
            Constraint::Forall(v, s, c) => write!(f, "forall {v}:{s}. {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iexp::IExp;
    use crate::prop::Cmp;
    use crate::var::VarGen;

    #[test]
    fn and_folds_truth() {
        let c = Constraint::truth().and(Constraint::truth());
        assert!(c.is_trivial());
    }

    #[test]
    fn forall_drops_unused_binder() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m = g.fresh("m");
        let body = Constraint::Prop(Prop::le(IExp::var(m.clone()), IExp::lit(3)));
        let c = Constraint::forall(n, Sort::Int, body.clone());
        assert_eq!(c, body);
        let c = Constraint::forall(m, Sort::Int, body);
        assert!(matches!(c, Constraint::Forall(_, _, _)));
    }

    #[test]
    fn free_vars_respect_binders() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m = g.fresh("m");
        let body =
            Constraint::Prop(Prop::eq(IExp::var(n.clone()) + IExp::var(m.clone()), IExp::lit(0)));
        let c = Constraint::Forall(n.clone(), Sort::Int, Box::new(body));
        let fv = c.free_vars();
        assert!(fv.contains(&m));
        assert!(!fv.contains(&n));
    }

    #[test]
    fn display_paper_style() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Prop(Prop::cmp(
                    Cmp::Eq,
                    IExp::lit(0) + IExp::var(n.clone()),
                    IExp::var(n),
                ))),
            )),
        );
        assert_eq!(c.to_string(), "forall n:int. (0 <= n) ==> 0 + n = n");
    }

    #[test]
    fn atom_count_sums() {
        let p = Constraint::Prop(Prop::lt(IExp::lit(0), IExp::lit(1)));
        let c = Constraint::conj(vec![p.clone(), p.clone(), Constraint::truth(), p]);
        assert_eq!(c.atom_count(), 3);
    }

    #[test]
    fn subst_under_binder() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m = g.fresh("m");
        let body = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Prop(Prop::le(IExp::var(n), IExp::var(m.clone())))),
        );
        let r = body.subst(&m, &IExp::lit(9));
        assert!(r.to_string().contains("<= 9"), "{r}");
    }
}
