//! Semantic integer index expressions.

use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::ops;

/// An integer index expression (the paper's `i, j`).
///
/// `Div` and `Mod` follow SML semantics (flooring division); the constraint
/// solver only accepts them with a positive constant divisor, which is all
/// the paper's programs need (`(hi - lo) div 2` and friends).
///
/// The `Ord` instance is purely structural (variables compare by id); it
/// exists so the solver can sort hypotheses into a canonical order for its
/// verdict cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IExp {
    /// Index variable.
    Var(Var),
    /// Integer literal.
    Lit(i64),
    /// `i + j`
    Add(Box<IExp>, Box<IExp>),
    /// `i - j`
    Sub(Box<IExp>, Box<IExp>),
    /// `i * j`
    Mul(Box<IExp>, Box<IExp>),
    /// `div(i, j)` — flooring division.
    Div(Box<IExp>, Box<IExp>),
    /// `mod(i, j)` — remainder with the sign of the divisor.
    Mod(Box<IExp>, Box<IExp>),
    /// `min(i, j)`
    Min(Box<IExp>, Box<IExp>),
    /// `max(i, j)`
    Max(Box<IExp>, Box<IExp>),
    /// `abs(i)`
    Abs(Box<IExp>),
    /// `sgn(i)` — −1, 0, or 1.
    Sgn(Box<IExp>),
}

impl IExp {
    /// A variable expression.
    pub fn var(v: Var) -> IExp {
        IExp::Var(v)
    }

    /// A literal expression.
    pub fn lit(n: i64) -> IExp {
        IExp::Lit(n)
    }

    /// Flooring division (named after SML's `div`; this is a domain
    /// constructor, not `std::ops::Div`).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: IExp) -> IExp {
        IExp::Div(Box::new(self), Box::new(rhs))
    }

    /// Flooring modulus.
    pub fn modulo(self, rhs: IExp) -> IExp {
        IExp::Mod(Box::new(self), Box::new(rhs))
    }

    /// Minimum.
    pub fn min(self, rhs: IExp) -> IExp {
        IExp::Min(Box::new(self), Box::new(rhs))
    }

    /// Maximum.
    pub fn max(self, rhs: IExp) -> IExp {
        IExp::Max(Box::new(self), Box::new(rhs))
    }

    /// Absolute value.
    pub fn abs(self) -> IExp {
        IExp::Abs(Box::new(self))
    }

    /// Sign (−1, 0, or 1).
    pub fn sgn(self) -> IExp {
        IExp::Sgn(Box::new(self))
    }

    /// Collects the free variables into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Var>) {
        match self {
            IExp::Var(v) => {
                out.insert(v.clone());
            }
            IExp::Lit(_) => {}
            IExp::Add(a, b)
            | IExp::Sub(a, b)
            | IExp::Mul(a, b)
            | IExp::Div(a, b)
            | IExp::Mod(a, b)
            | IExp::Min(a, b)
            | IExp::Max(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            IExp::Abs(a) | IExp::Sgn(a) => a.free_vars_into(out),
        }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        self.free_vars_into(&mut s);
        s
    }

    /// `true` if `v` occurs in the expression (allocation-free, unlike
    /// [`IExp::free_vars`]).
    pub fn contains_var(&self, v: &Var) -> bool {
        match self {
            IExp::Var(w) => w == v,
            IExp::Lit(_) => false,
            IExp::Add(a, b)
            | IExp::Sub(a, b)
            | IExp::Mul(a, b)
            | IExp::Div(a, b)
            | IExp::Mod(a, b)
            | IExp::Min(a, b)
            | IExp::Max(a, b) => a.contains_var(v) || b.contains_var(v),
            IExp::Abs(a) | IExp::Sgn(a) => a.contains_var(v),
        }
    }

    /// Simultaneous capture-free substitution: every variable is replaced by
    /// its mapped expression in one pass, without re-substituting inside the
    /// replacements. Equivalent to sequential [`IExp::subst`] when no mapped
    /// variable occurs in any replacement expression.
    pub fn subst_many(&self, subs: &[(Var, IExp)]) -> IExp {
        match self {
            IExp::Var(w) => match subs.iter().find(|(v, _)| v == w) {
                Some((_, e)) => e.clone(),
                None => self.clone(),
            },
            IExp::Lit(_) => self.clone(),
            IExp::Add(a, b) => {
                IExp::Add(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Sub(a, b) => {
                IExp::Sub(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Mul(a, b) => {
                IExp::Mul(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Div(a, b) => {
                IExp::Div(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Mod(a, b) => {
                IExp::Mod(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Min(a, b) => {
                IExp::Min(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Max(a, b) => {
                IExp::Max(Box::new(a.subst_many(subs)), Box::new(b.subst_many(subs)))
            }
            IExp::Abs(a) => IExp::Abs(Box::new(a.subst_many(subs))),
            IExp::Sgn(a) => IExp::Sgn(Box::new(a.subst_many(subs))),
        }
    }

    /// Capture-free substitution of `v := e` (ids are globally unique, so no
    /// renaming is ever needed).
    pub fn subst(&self, v: &Var, e: &IExp) -> IExp {
        match self {
            IExp::Var(w) if w == v => e.clone(),
            IExp::Var(_) | IExp::Lit(_) => self.clone(),
            IExp::Add(a, b) => IExp::Add(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Sub(a, b) => IExp::Sub(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Mul(a, b) => IExp::Mul(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Div(a, b) => IExp::Div(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Mod(a, b) => IExp::Mod(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Min(a, b) => IExp::Min(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Max(a, b) => IExp::Max(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            IExp::Abs(a) => IExp::Abs(Box::new(a.subst(v, e))),
            IExp::Sgn(a) => IExp::Sgn(Box::new(a.subst(v, e))),
        }
    }

    /// Evaluates a closed expression; `None` if a variable is free or a
    /// division by zero occurs.
    pub fn eval(&self, env: &dyn Fn(&Var) -> Option<i64>) -> Option<i64> {
        Some(match self {
            IExp::Var(v) => env(v)?,
            IExp::Lit(n) => *n,
            IExp::Add(a, b) => a.eval(env)?.checked_add(b.eval(env)?)?,
            IExp::Sub(a, b) => a.eval(env)?.checked_sub(b.eval(env)?)?,
            IExp::Mul(a, b) => a.eval(env)?.checked_mul(b.eval(env)?)?,
            IExp::Div(a, b) => {
                let (x, y) = (a.eval(env)?, b.eval(env)?);
                if y == 0 {
                    return None;
                }
                floor_div(x, y)
            }
            IExp::Mod(a, b) => {
                let (x, y) = (a.eval(env)?, b.eval(env)?);
                if y == 0 {
                    return None;
                }
                x - y * floor_div(x, y)
            }
            IExp::Min(a, b) => a.eval(env)?.min(b.eval(env)?),
            IExp::Max(a, b) => a.eval(env)?.max(b.eval(env)?),
            IExp::Abs(a) => a.eval(env)?.checked_abs()?,
            IExp::Sgn(a) => a.eval(env)?.signum(),
        })
    }
}

/// Flooring (SML-style) integer division.
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Flooring (SML-style) modulus: result has the sign of the divisor.
pub fn floor_mod(a: i64, b: i64) -> i64 {
    a - b * floor_div(a, b)
}

impl ops::Add for IExp {
    type Output = IExp;
    fn add(self, rhs: IExp) -> IExp {
        IExp::Add(Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for IExp {
    type Output = IExp;
    fn sub(self, rhs: IExp) -> IExp {
        IExp::Sub(Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for IExp {
    type Output = IExp;
    fn mul(self, rhs: IExp) -> IExp {
        IExp::Mul(Box::new(self), Box::new(rhs))
    }
}

impl ops::Neg for IExp {
    type Output = IExp;
    fn neg(self) -> IExp {
        IExp::Sub(Box::new(IExp::Lit(0)), Box::new(self))
    }
}

impl From<i64> for IExp {
    fn from(n: i64) -> IExp {
        IExp::Lit(n)
    }
}

impl From<Var> for IExp {
    fn from(v: Var) -> IExp {
        IExp::Var(v)
    }
}

impl fmt::Display for IExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &IExp, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match e {
                IExp::Var(v) => write!(f, "{v}"),
                IExp::Lit(n) => write!(f, "{n}"),
                IExp::Add(a, b) | IExp::Sub(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, f, 0)?;
                    write!(f, "{}", if matches!(e, IExp::Add(_, _)) { " + " } else { " - " })?;
                    go(b, f, 1)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                IExp::Mul(a, b) | IExp::Div(a, b) | IExp::Mod(a, b) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(
                        f,
                        "{}",
                        match e {
                            IExp::Mul(_, _) => " * ",
                            IExp::Div(_, _) => " div ",
                            _ => " mod ",
                        }
                    )?;
                    go(b, f, 2)?;
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                IExp::Min(a, b) => write!(f, "min({a}, {b})"),
                IExp::Max(a, b) => write!(f, "max({a}, {b})"),
                IExp::Abs(a) => write!(f, "abs({a})"),
                IExp::Sgn(a) => write!(f, "sgn({a})"),
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarGen;

    fn v(g: &mut VarGen, n: &str) -> Var {
        g.fresh(n)
    }

    #[test]
    fn floor_div_matches_sml() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(floor_mod(7, 2), 1);
        assert_eq!(floor_mod(-7, 2), 1);
        assert_eq!(floor_mod(7, -2), -1);
    }

    #[test]
    fn subst_replaces_only_target() {
        let mut g = VarGen::new();
        let a = v(&mut g, "a");
        let b = v(&mut g, "b");
        let e = IExp::var(a.clone()) + IExp::var(b.clone());
        let r = e.subst(&a, &IExp::lit(3));
        assert_eq!(r, IExp::lit(3) + IExp::var(b));
    }

    #[test]
    fn free_vars_collects_all() {
        let mut g = VarGen::new();
        let a = v(&mut g, "a");
        let b = v(&mut g, "b");
        let e = (IExp::var(a.clone()) * IExp::lit(2)).min(IExp::var(b.clone()).abs());
        let fv = e.free_vars();
        assert!(fv.contains(&a) && fv.contains(&b));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn eval_closed_expressions() {
        let env = |_: &Var| None;
        let e = (IExp::lit(10) - IExp::lit(3)).div(IExp::lit(2));
        assert_eq!(e.eval(&env), Some(3));
        let e = IExp::lit(-5).modulo(IExp::lit(3));
        assert_eq!(e.eval(&env), Some(1));
        let e = IExp::lit(-5).sgn();
        assert_eq!(e.eval(&env), Some(-1));
        let e = IExp::lit(4).div(IExp::lit(0));
        assert_eq!(e.eval(&env), None);
    }

    #[test]
    fn eval_with_env() {
        let mut g = VarGen::new();
        let a = v(&mut g, "a");
        let a2 = a.clone();
        let env = move |w: &Var| if *w == a2 { Some(5) } else { None };
        assert_eq!((IExp::var(a) + IExp::lit(1)).eval(&env), Some(6));
    }

    #[test]
    fn display_respects_precedence() {
        let mut g = VarGen::new();
        let a = IExp::var(v(&mut g, "a"));
        let b = IExp::var(v(&mut g, "b"));
        let c = IExp::var(v(&mut g, "c"));
        let e = (a.clone() + b.clone()) * c.clone();
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = a + b * c;
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn neg_is_zero_minus() {
        let e = -IExp::lit(5);
        assert_eq!(e.eval(&|_| None), Some(-5));
    }
}
