//! Three-way solver verdicts.
//!
//! The verdict lattice replaces the old two-way `Valid` / `NotProven`
//! split. A budgeted solver is *total*: every goal gets exactly one of
//!
//! - [`Verdict::Proven`] — valid over the integers; the corresponding
//!   check can be eliminated;
//! - [`Verdict::Refuted`] — an integer counterexample was found; the
//!   annotation is wrong and the check is genuinely needed;
//! - [`Verdict::Unknown`] — the solver ran out of fuel, hit its deadline,
//!   or stepped outside the linear fragment. The access keeps its check as
//!   a *residual* runtime check (the paper's contract: elimination is an
//!   optimization, never a soundness gamble).
//!
//! As the fuel budget grows, a verdict may move `Unknown → Proven` or
//! `Unknown → Refuted`, but `Proven` and `Refuted` never flip into each
//! other or back to `Unknown` — both are certificates, not heuristics.

use std::fmt;

/// Result of deciding one proof goal `∀ctx. hyps ⊃ concl`.
///
/// # Examples
///
/// ```
/// use dml_index::{UnknownReason, Verdict};
///
/// let proven = Verdict::Proven;
/// assert!(proven.is_proven());
/// assert_eq!(proven.to_string(), "proven");
///
/// // Out-of-budget goals are Unknown, never silently dropped: the access
/// // keeps its run-time check.
/// let unknown = Verdict::Unknown(UnknownReason::FuelExhausted);
/// assert!(unknown.is_unknown());
/// assert_eq!(unknown.to_string(), "unknown (fuel exhausted)");
///
/// // The default verdict is the conservative one.
/// assert!(Verdict::default().is_unknown());
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The goal is valid over the integers.
    Proven,
    /// The goal is falsifiable: an integer counterexample exists.
    Refuted,
    /// The solver could not decide the goal within its budget or fragment;
    /// the access keeps its run-time check.
    Unknown(UnknownReason),
}

impl Verdict {
    /// `true` for [`Verdict::Proven`].
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven)
    }

    /// `true` for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted)
    }

    /// `true` for any [`Verdict::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown(_))
    }
}

impl Default for Verdict {
    /// The conservative verdict: nothing is known, keep the check.
    fn default() -> Self {
        Verdict::Unknown(UnknownReason::PossiblyFalsifiable)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven => write!(f, "proven"),
            Verdict::Refuted => write!(f, "refuted"),
            Verdict::Unknown(r) => write!(f, "unknown ({r})"),
        }
    }
}

/// Why a goal came out [`Verdict::Unknown`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum UnknownReason {
    /// Elimination completed without contradiction, but no integer
    /// counterexample was exhibited either — the goal may be falsifiable.
    #[default]
    PossiblyFalsifiable,
    /// A non-linear conclusion was encountered (rejected per §3.2).
    Nonlinear(String),
    /// A structural resource limit (DNF size, FM working-set size) was
    /// exceeded.
    Blowup,
    /// The per-goal fuel budget (Fourier–Motzkin pair combinations) ran
    /// out before elimination finished.
    FuelExhausted,
    /// The per-goal wall-clock deadline passed before elimination
    /// finished.
    Deadline,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::PossiblyFalsifiable => write!(f, "possibly falsifiable"),
            UnknownReason::Nonlinear(e) => write!(f, "non-linear constraint: {e}"),
            UnknownReason::Blowup => write!(f, "resource limit exceeded"),
            UnknownReason::FuelExhausted => write!(f, "fuel exhausted"),
            UnknownReason::Deadline => write!(f, "deadline exceeded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_partition() {
        let vs =
            [Verdict::Proven, Verdict::Refuted, Verdict::Unknown(UnknownReason::FuelExhausted)];
        for v in &vs {
            let flags =
                [v.is_proven(), v.is_refuted(), v.is_unknown()].iter().filter(|b| **b).count();
            assert_eq!(flags, 1, "{v:?} satisfies exactly one predicate");
        }
    }

    #[test]
    fn default_is_conservative() {
        assert!(Verdict::default().is_unknown());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Verdict::Proven.to_string(), "proven");
        assert_eq!(Verdict::Refuted.to_string(), "refuted");
        assert_eq!(
            Verdict::Unknown(UnknownReason::Nonlinear("i * i".into())).to_string(),
            "unknown (non-linear constraint: i * i)"
        );
        assert_eq!(UnknownReason::Deadline.to_string(), "deadline exceeded");
        assert_eq!(UnknownReason::Blowup.to_string(), "resource limit exceeded");
    }
}
