//! Boolean index propositions (the paper's `b`).

use crate::iexp::IExp;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators between integer index expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl Cmp {
    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
        }
    }

    /// The logical negation (`¬(a < b)` ⇔ `a >= b`).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
            Cmp::Ne => "<>",
        };
        write!(f, "{s}")
    }
}

/// A boolean index proposition.
///
/// `Ord` is structural (variables by id), used by the solver to sort
/// hypothesis sets into canonical order for verdict caching.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prop {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// A boolean index variable.
    BVar(Var),
    /// Comparison between integer index expressions.
    Cmp(Cmp, IExp, IExp),
    /// Negation.
    Not(Box<Prop>),
    /// Conjunction.
    And(Box<Prop>, Box<Prop>),
    /// Disjunction.
    Or(Box<Prop>, Box<Prop>),
}

impl Prop {
    /// Builds a comparison proposition.
    pub fn cmp(op: Cmp, a: IExp, b: IExp) -> Prop {
        Prop::Cmp(op, a, b)
    }

    /// `a = b`.
    pub fn eq(a: IExp, b: IExp) -> Prop {
        Prop::Cmp(Cmp::Eq, a, b)
    }

    /// `a <= b`.
    pub fn le(a: IExp, b: IExp) -> Prop {
        Prop::Cmp(Cmp::Le, a, b)
    }

    /// `a < b`.
    pub fn lt(a: IExp, b: IExp) -> Prop {
        Prop::Cmp(Cmp::Lt, a, b)
    }

    /// Negation, folding double negations and constants.
    pub fn negate(self) -> Prop {
        match self {
            Prop::True => Prop::False,
            Prop::False => Prop::True,
            Prop::Not(p) => *p,
            Prop::Cmp(op, a, b) => Prop::Cmp(op.negate(), a, b),
            other => Prop::Not(Box::new(other)),
        }
    }

    /// Conjunction, folding `True` units.
    pub fn and(self, other: Prop) -> Prop {
        match (self, other) {
            (Prop::True, q) => q,
            (p, Prop::True) => p,
            (Prop::False, _) | (_, Prop::False) => Prop::False,
            (p, q) => Prop::And(Box::new(p), Box::new(q)),
        }
    }

    /// Disjunction, folding `False` units.
    pub fn or(self, other: Prop) -> Prop {
        match (self, other) {
            (Prop::False, q) => q,
            (p, Prop::False) => p,
            (Prop::True, _) | (_, Prop::True) => Prop::True,
            (p, q) => Prop::Or(Box::new(p), Box::new(q)),
        }
    }

    /// Conjunction of an iterator of propositions.
    pub fn conj(ps: impl IntoIterator<Item = Prop>) -> Prop {
        ps.into_iter().fold(Prop::True, Prop::and)
    }

    /// Collects the free variables into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Var>) {
        match self {
            Prop::True | Prop::False => {}
            Prop::BVar(v) => {
                out.insert(v.clone());
            }
            Prop::Cmp(_, a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Prop::Not(p) => p.free_vars_into(out),
            Prop::And(p, q) | Prop::Or(p, q) => {
                p.free_vars_into(out);
                q.free_vars_into(out);
            }
        }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        self.free_vars_into(&mut s);
        s
    }

    /// Simultaneous capture-free substitution of integer index variables
    /// (see [`IExp::subst_many`]).
    pub fn subst_many(&self, subs: &[(Var, IExp)]) -> Prop {
        match self {
            Prop::True | Prop::False | Prop::BVar(_) => self.clone(),
            Prop::Cmp(op, a, b) => Prop::Cmp(*op, a.subst_many(subs), b.subst_many(subs)),
            Prop::Not(p) => Prop::Not(Box::new(p.subst_many(subs))),
            Prop::And(p, q) => {
                Prop::And(Box::new(p.subst_many(subs)), Box::new(q.subst_many(subs)))
            }
            Prop::Or(p, q) => Prop::Or(Box::new(p.subst_many(subs)), Box::new(q.subst_many(subs))),
        }
    }

    /// Substitutes an integer expression for an integer index variable.
    pub fn subst(&self, v: &Var, e: &IExp) -> Prop {
        match self {
            Prop::True | Prop::False => self.clone(),
            Prop::BVar(_) => self.clone(),
            Prop::Cmp(op, a, b) => Prop::Cmp(*op, a.subst(v, e), b.subst(v, e)),
            Prop::Not(p) => Prop::Not(Box::new(p.subst(v, e))),
            Prop::And(p, q) => Prop::And(Box::new(p.subst(v, e)), Box::new(q.subst(v, e))),
            Prop::Or(p, q) => Prop::Or(Box::new(p.subst(v, e)), Box::new(q.subst(v, e))),
        }
    }

    /// Substitutes a proposition for a *boolean* index variable.
    pub fn subst_bool(&self, v: &Var, p0: &Prop) -> Prop {
        match self {
            Prop::True | Prop::False | Prop::Cmp(_, _, _) => match self {
                Prop::Cmp(op, a, b) => Prop::Cmp(*op, a.clone(), b.clone()),
                other => other.clone(),
            },
            Prop::BVar(w) if w == v => p0.clone(),
            Prop::BVar(_) => self.clone(),
            Prop::Not(p) => Prop::Not(Box::new(p.subst_bool(v, p0))),
            Prop::And(p, q) => {
                Prop::And(Box::new(p.subst_bool(v, p0)), Box::new(q.subst_bool(v, p0)))
            }
            Prop::Or(p, q) => {
                Prop::Or(Box::new(p.subst_bool(v, p0)), Box::new(q.subst_bool(v, p0)))
            }
        }
    }

    /// Evaluates under integer and boolean environments; `None` if a free
    /// variable is unbound or arithmetic fails.
    pub fn eval(
        &self,
        ienv: &dyn Fn(&Var) -> Option<i64>,
        benv: &dyn Fn(&Var) -> Option<bool>,
    ) -> Option<bool> {
        Some(match self {
            Prop::True => true,
            Prop::False => false,
            Prop::BVar(v) => benv(v)?,
            Prop::Cmp(op, a, b) => op.eval(a.eval(ienv)?, b.eval(ienv)?),
            Prop::Not(p) => !p.eval(ienv, benv)?,
            Prop::And(p, q) => p.eval(ienv, benv)? && q.eval(ienv, benv)?,
            Prop::Or(p, q) => p.eval(ienv, benv)? || q.eval(ienv, benv)?,
        })
    }

    /// Negation normal form: negations pushed to atoms.
    pub fn nnf(self) -> Prop {
        self.nnf_inner(false)
    }

    fn nnf_inner(self, neg: bool) -> Prop {
        match self {
            Prop::True => {
                if neg {
                    Prop::False
                } else {
                    Prop::True
                }
            }
            Prop::False => {
                if neg {
                    Prop::True
                } else {
                    Prop::False
                }
            }
            Prop::BVar(v) => {
                if neg {
                    Prop::Not(Box::new(Prop::BVar(v)))
                } else {
                    Prop::BVar(v)
                }
            }
            Prop::Cmp(op, a, b) => {
                if neg {
                    Prop::Cmp(op.negate(), a, b)
                } else {
                    Prop::Cmp(op, a, b)
                }
            }
            Prop::Not(p) => p.nnf_inner(!neg),
            Prop::And(p, q) => {
                let (p, q) = (p.nnf_inner(neg), q.nnf_inner(neg));
                if neg {
                    Prop::Or(Box::new(p), Box::new(q))
                } else {
                    Prop::And(Box::new(p), Box::new(q))
                }
            }
            Prop::Or(p, q) => {
                let (p, q) = (p.nnf_inner(neg), q.nnf_inner(neg));
                if neg {
                    Prop::And(Box::new(p), Box::new(q))
                } else {
                    Prop::Or(Box::new(p), Box::new(q))
                }
            }
        }
    }

    /// The conjuncts of a (right-nested or arbitrary) conjunction tree.
    pub fn conjuncts(&self) -> Vec<&Prop> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a Prop, out: &mut Vec<&'a Prop>) {
            match p {
                Prop::And(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Prop::True => {}
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Prop, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match p {
                Prop::True => write!(f, "true"),
                Prop::False => write!(f, "false"),
                Prop::BVar(v) => write!(f, "{v}"),
                Prop::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
                Prop::Not(q) => {
                    write!(f, "not(")?;
                    go(q, f, 0)?;
                    write!(f, ")")
                }
                Prop::And(a, b) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " /\\ ")?;
                    go(b, f, 2)?;
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Prop::Or(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, f, 0)?;
                    write!(f, " \\/ ")?;
                    go(b, f, 1)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarGen;

    #[test]
    fn negate_comparisons() {
        let p = Prop::lt(IExp::lit(1), IExp::lit(2));
        assert_eq!(p.negate(), Prop::cmp(Cmp::Ge, IExp::lit(1), IExp::lit(2)));
    }

    #[test]
    fn and_or_units() {
        let p = Prop::lt(IExp::lit(0), IExp::lit(1));
        assert_eq!(Prop::True.and(p.clone()), p);
        assert_eq!(p.clone().and(Prop::True), p);
        assert_eq!(Prop::False.or(p.clone()), p);
        assert_eq!(p.clone().and(Prop::False), Prop::False);
        assert_eq!(p.clone().or(Prop::True), Prop::True);
    }

    #[test]
    fn nnf_pushes_negation() {
        let mut g = VarGen::new();
        let a = IExp::var(g.fresh("a"));
        let b = IExp::var(g.fresh("b"));
        // not (a < b && a = b)  →  a >= b || a <> b
        let p =
            Prop::Not(Box::new(Prop::lt(a.clone(), b.clone()).and(Prop::eq(a.clone(), b.clone()))));
        let n = p.nnf();
        match n {
            Prop::Or(l, r) => {
                assert_eq!(*l, Prop::cmp(Cmp::Ge, a.clone(), b.clone()));
                assert_eq!(*r, Prop::cmp(Cmp::Ne, a, b));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn eval_props() {
        let t = Prop::le(IExp::lit(1), IExp::lit(1));
        assert_eq!(t.eval(&|_| None, &|_| None), Some(true));
        let f = Prop::lt(IExp::lit(1), IExp::lit(1));
        assert_eq!(f.eval(&|_| None, &|_| None), Some(false));
    }

    #[test]
    fn conjuncts_flatten() {
        let p = Prop::conj(vec![
            Prop::lt(IExp::lit(0), IExp::lit(1)),
            Prop::lt(IExp::lit(1), IExp::lit(2)),
            Prop::lt(IExp::lit(2), IExp::lit(3)),
        ]);
        assert_eq!(p.conjuncts().len(), 3);
    }

    #[test]
    fn subst_bool_replaces_bvar() {
        let mut g = VarGen::new();
        let b = g.fresh("b");
        let p = Prop::BVar(b.clone()).and(Prop::True);
        let q = p.subst_bool(&b, &Prop::False);
        assert_eq!(q, Prop::False);
    }

    #[test]
    fn display_forms() {
        let mut g = VarGen::new();
        let a = IExp::var(g.fresh("a"));
        let p = Prop::le(IExp::lit(0), a.clone()).and(Prop::lt(a, IExp::lit(10)));
        assert_eq!(p.to_string(), "0 <= a /\\ a < 10");
    }
}
