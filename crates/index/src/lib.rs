//! The index language of DML: sorts, integer/boolean index expressions,
//! linear forms, and the constraint formula language of
//! *Eliminating Array Bound Checking Through Dependent Types*
//! (Xi & Pfenning, PLDI 1998), §2.2 and §3.
//!
//! Index expressions here are *semantic*: variables are interned with unique
//! ids (so substitution is capture-free by construction), and the language
//! matches the paper's grammar
//!
//! ```text
//! i, j ::= a | i+j | i-j | i*j | div(i,j) | min(i,j) | max(i,j)
//!        | abs(i) | sgn(i) | mod(i,j)
//! b    ::= a | false | true | i < j | i <= j | i = j | i >= j | i > j
//!        | not b | b && b | b || b
//! φ    ::= b | φ ∧ φ | b ⊃ φ | ∃a:γ.φ | ∀a:γ.φ
//! ```
//!
//! # Example
//!
//! ```
//! use dml_index::{IExp, Prop, Cmp, VarGen};
//!
//! let mut gen = VarGen::new();
//! let n = gen.fresh("n");
//! // 0 + n = n
//! let p = Prop::cmp(Cmp::Eq, IExp::lit(0) + IExp::var(n.clone()), IExp::var(n));
//! assert!(matches!(p, Prop::Cmp(Cmp::Eq, _, _)));
//! ```

#![deny(missing_docs)]

pub mod constraint;
pub mod iexp;
pub mod linear;
pub mod prop;
pub mod sort;
pub mod var;
pub mod verdict;

pub use constraint::Constraint;
pub use iexp::IExp;
pub use linear::{Linear, NonLinear};
pub use prop::{Cmp, Prop};
pub use sort::Sort;
pub use var::{Var, VarGen, VarLease};
pub use verdict::{UnknownReason, Verdict};
