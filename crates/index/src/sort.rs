//! Semantic index sorts.
//!
//! Surface subset sorts `{a:γ | b}` are normalised during conversion into a
//! base sort plus a guard proposition, so the semantic language only has the
//! two base sorts. `nat` is `Int` with the guard `0 <= a`.

use std::fmt;

/// A base index sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Integer indices.
    Int,
    /// Boolean indices.
    Bool,
}

impl Sort {
    /// `true` if this is the integer sort.
    pub fn is_int(self) -> bool {
        matches!(self, Sort::Int)
    }

    /// `true` if this is the boolean sort.
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "int"),
            Sort::Bool => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_predicates() {
        assert_eq!(Sort::Int.to_string(), "int");
        assert_eq!(Sort::Bool.to_string(), "bool");
        assert!(Sort::Int.is_int() && !Sort::Int.is_bool());
        assert!(Sort::Bool.is_bool() && !Sort::Bool.is_int());
    }
}
