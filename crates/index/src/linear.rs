//! Linear forms: normalised `c0 + Σ cᵢ·xᵢ` representations of index
//! expressions, the currency of the constraint solver.

use crate::iexp::IExp;
use crate::var::Var;
use std::collections::BTreeMap;
use std::fmt;

/// Error raised when an index expression is not linear (e.g. `m * n` with
/// both factors non-constant, or `div`/`mod`/`min`/`max`/`abs`/`sgn` at a
/// position where the caller requires pure linearity).
///
/// The paper rejects non-linear constraints outright (§3.2); our solver
/// additionally lowers `div`/`mod`/etc. with fresh variables *before*
/// linearisation, so hitting this error there means the constraint is
/// genuinely outside the supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonLinear {
    /// The offending subexpression, rendered.
    pub expr: String,
}

impl fmt::Display for NonLinear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-linear index expression: {}", self.expr)
    }
}

impl std::error::Error for NonLinear {}

/// A linear form `constant + Σ coeff·var` with exact integer coefficients.
///
/// The derived `Ord` is structural (coefficient map in variable-id order,
/// then the constant term) and exists so solver working sets can be
/// sorted/deduplicated without formatting terms into strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Linear {
    /// Coefficients per variable; zero coefficients are never stored.
    coeffs: BTreeMap<Var, i64>,
    /// The constant term.
    constant: i64,
}

impl Linear {
    /// The zero form.
    pub fn zero() -> Linear {
        Linear::default()
    }

    /// A constant form.
    pub fn constant(c: i64) -> Linear {
        Linear { coeffs: BTreeMap::new(), constant: c }
    }

    /// The form `1·v`.
    pub fn var(v: Var) -> Linear {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        Linear { coeffs, constant: 0 }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(var, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, i64)> {
        self.coeffs.iter().map(|(v, c)| (v, *c))
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: &Var) -> i64 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// `true` if the form is a constant (no variables).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// If the form is exactly one variable with coefficient 1 and no
    /// constant, returns it.
    pub fn as_var(&self) -> Option<&Var> {
        if self.constant == 0 && self.coeffs.len() == 1 {
            let (v, c) = self.coeffs.iter().next().expect("len checked");
            if *c == 1 {
                return Some(v);
            }
        }
        None
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// The variables of the form.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.coeffs.keys()
    }

    /// Adds `c·v` in place.
    pub fn add_term(&mut self, v: Var, c: i64) {
        if c == 0 {
            return;
        }
        let new_coeff = self.coeff(&v) + c;
        if new_coeff == 0 {
            self.coeffs.remove(&v);
        } else {
            self.coeffs.insert(v, new_coeff);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Linear) -> Linear {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, c) in other.terms() {
            out.add_term(v.clone(), c);
        }
        out
    }

    /// Pointwise difference `self - other`.
    pub fn sub(&self, other: &Linear) -> Linear {
        self.add(&other.scale(-1))
    }

    /// Divides every coefficient and the constant by `k` if all divide
    /// exactly; `None` otherwise (or when `k == 0`).
    pub fn div_exact(&self, k: i64) -> Option<Linear> {
        if k == 0 {
            return None;
        }
        if self.constant % k != 0 || self.coeffs.values().any(|c| c % k != 0) {
            return None;
        }
        Some(Linear {
            coeffs: self.coeffs.iter().map(|(v, c)| (v.clone(), c / k)).collect(),
            constant: self.constant / k,
        })
    }

    /// Scales every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> Linear {
        if k == 0 {
            return Linear::zero();
        }
        Linear {
            coeffs: self.coeffs.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Substitutes a linear form for a variable.
    pub fn subst(&self, v: &Var, e: &Linear) -> Linear {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(v);
        out.add(&e.scale(c))
    }

    /// Evaluates under an assignment; `None` if a variable is unbound.
    pub fn eval(&self, env: &dyn Fn(&Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in self.terms() {
            acc = acc.checked_add(c.checked_mul(env(v)?)?)?;
        }
        Some(acc)
    }

    /// The GCD of the variable coefficients (0 when constant).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.values().fold(0i64, |g, c| gcd(g, c.abs()))
    }

    /// Converts an [`IExp`] to a linear form.
    ///
    /// # Errors
    ///
    /// Returns [`NonLinear`] for products of non-constants and for
    /// `div`/`mod`/`min`/`max`/`abs`/`sgn` (those must be lowered first by
    /// the solver's preprocessing pass).
    pub fn from_iexp(e: &IExp) -> Result<Linear, NonLinear> {
        match e {
            IExp::Var(v) => Ok(Linear::var(v.clone())),
            IExp::Lit(n) => Ok(Linear::constant(*n)),
            IExp::Add(a, b) => Ok(Linear::from_iexp(a)?.add(&Linear::from_iexp(b)?)),
            IExp::Sub(a, b) => Ok(Linear::from_iexp(a)?.sub(&Linear::from_iexp(b)?)),
            IExp::Mul(a, b) => {
                let la = Linear::from_iexp(a)?;
                let lb = Linear::from_iexp(b)?;
                if la.is_constant() {
                    Ok(lb.scale(la.constant))
                } else if lb.is_constant() {
                    Ok(la.scale(lb.constant))
                } else {
                    Err(NonLinear { expr: e.to_string() })
                }
            }
            IExp::Div(_, _)
            | IExp::Mod(_, _)
            | IExp::Min(_, _)
            | IExp::Max(_, _)
            | IExp::Abs(_)
            | IExp::Sgn(_) => Err(NonLinear { expr: e.to_string() }),
        }
    }

    /// Converts back to an [`IExp`] (for display and substitution back into
    /// constraint stores).
    pub fn to_iexp(&self) -> IExp {
        let mut acc: Option<IExp> = if self.constant != 0 || self.coeffs.is_empty() {
            Some(IExp::Lit(self.constant))
        } else {
            None
        };
        for (v, c) in self.terms() {
            let term =
                if c == 1 { IExp::Var(v.clone()) } else { IExp::Lit(c) * IExp::Var(v.clone()) };
            acc = Some(match acc {
                None => term,
                Some(a) => a + term,
            });
        }
        acc.unwrap_or(IExp::Lit(0))
    }
}

impl fmt::Display for Linear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Greatest common divisor of non-negative integers (`gcd(0, n) = n`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarGen;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(-12, 18), 6);
    }

    #[test]
    fn from_iexp_linear() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        // 2*a + b - 3
        let e = IExp::lit(2) * IExp::var(a.clone()) + IExp::var(b.clone()) - IExp::lit(3);
        let l = Linear::from_iexp(&e).unwrap();
        assert_eq!(l.coeff(&a), 2);
        assert_eq!(l.coeff(&b), 1);
        assert_eq!(l.constant_term(), -3);
    }

    #[test]
    fn from_iexp_rejects_products() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let e = IExp::var(a) * IExp::var(b);
        assert!(Linear::from_iexp(&e).is_err());
    }

    #[test]
    fn from_iexp_rejects_div() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        assert!(Linear::from_iexp(&IExp::var(a).div(IExp::lit(2))).is_err());
    }

    #[test]
    fn cancellation_removes_zero_coeffs() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let l = Linear::var(a.clone()).sub(&Linear::var(a.clone()));
        assert!(l.is_constant());
        assert_eq!(l.coeff(&a), 0);
        assert_eq!(l, Linear::zero());
    }

    #[test]
    fn subst_linear() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        // 2a + 1 with a := b + 3  →  2b + 7
        let l = Linear::var(a.clone()).scale(2).add(&Linear::constant(1));
        let e = Linear::var(b.clone()).add(&Linear::constant(3));
        let r = l.subst(&a, &e);
        assert_eq!(r.coeff(&b), 2);
        assert_eq!(r.constant_term(), 7);
        assert_eq!(r.coeff(&a), 0);
    }

    #[test]
    fn to_iexp_round_trip_eval() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let l = Linear::var(a.clone())
            .scale(3)
            .add(&Linear::var(b.clone()).scale(-2))
            .add(&Linear::constant(5));
        let e = l.to_iexp();
        let a2 = a.clone();
        let b2 = b.clone();
        let env = move |w: &Var| {
            if *w == a2 {
                Some(2)
            } else if *w == b2 {
                Some(7)
            } else {
                None
            }
        };
        assert_eq!(e.eval(&env), Some(3 * 2 - 2 * 7 + 5));
        assert_eq!(l.eval(&env), Some(3 * 2 - 2 * 7 + 5));
    }

    #[test]
    fn as_var_detection() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        assert_eq!(Linear::var(a.clone()).as_var(), Some(&a));
        assert_eq!(Linear::var(a.clone()).scale(2).as_var(), None);
        assert_eq!(Linear::var(a).add(&Linear::constant(1)).as_var(), None);
    }

    #[test]
    fn display_formats() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let l = Linear::var(a).scale(2).add(&Linear::var(b).scale(-1)).add(&Linear::constant(-3));
        assert_eq!(l.to_string(), "2a - b - 3");
        assert_eq!(Linear::constant(0).to_string(), "0");
    }

    #[test]
    fn coeff_gcd_computation() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let l = Linear::var(a).scale(6).add(&Linear::var(b).scale(9));
        assert_eq!(l.coeff_gcd(), 3);
        assert_eq!(Linear::constant(5).coeff_gcd(), 0);
    }
}
