//! Minimal ASCII table rendering for experiment output.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for programmatic inspection.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (k, cell) in cells.iter().enumerate() {
                if k > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[k])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }
}
