//! The compilation pipeline: parse → phase-1 ML inference → phase-2
//! dependent elaboration → constraint solving → check elimination.
//!
//! The entry point is the [`Compiler`] session builder:
//!
//! ```
//! use dml::Compiler;
//!
//! let c = Compiler::new()
//!     .fuel(10_000)
//!     .workers(1)
//!     .compile("fun first(v) = sub(v, 0)\nwhere first <| {n:nat | n > 0} int array(n) -> int")
//!     .expect("compiles");
//! assert!(c.fully_verified());
//! ```
//!
//! By default compilation is *permissive*: obligations the solver cannot
//! prove (nonlinear bounds, fuel exhausted, deadline passed) do not abort
//! compilation — their checks stay in the program as *residual* runtime
//! checks ([`Compiled::residual_checks`]), and the interpreter counts them
//! separately. [`Compiler::strict`] turns every unproven obligation into a
//! [`PipelineError::Unproven`] listing *all* failures sorted by source
//! site.

use crate::trace::{GoalRecord, ObligationTrace};
use dml_analysis::Finding;
use dml_elab::{elaborate, ElabOutput, Obligation, ResidualCheck, SiteContext};
use dml_eval::{CheckConfig, Machine, Mode};
use dml_index::VarGen;
use dml_solver::{prove_all, Outcome, Solver, SolverOptions, Verdict};
use dml_syntax::ast as sast;
use dml_syntax::Span;
use dml_types::builtins::{base_env, check_kind};
use dml_types::env::Env;
use dml_types::infer::infer_program;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A hard front-end failure (parse, environment, phase-1, phase-2), or —
/// in [`Compiler::strict`] mode only — unproven obligations. In permissive
/// mode unproven constraints are *not* errors: they appear in
/// [`Compiled::failures`] and simply keep their checks at run time.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Lexical or syntactic error.
    Parse(dml_syntax::ParseError),
    /// `datatype`/`typeref`/`assert` processing error.
    Env(String, Span),
    /// Phase-1 ML type error.
    Infer(String, Span),
    /// Phase-2 elaboration error.
    Elab(String, Span),
    /// Strict mode only: the program compiled but not every obligation was
    /// proven. Carries **all** unproven non-exhaustiveness obligations with
    /// their verdicts, sorted by source site — not just the first failure.
    Unproven(Vec<(Obligation, Verdict)>),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Env(m, s) => write!(f, "environment error at {s}: {m}"),
            PipelineError::Infer(m, s) => write!(f, "type error at {s}: {m}"),
            PipelineError::Elab(m, s) => write!(f, "elaboration error at {s}: {m}"),
            PipelineError::Unproven(obs) => {
                write!(f, "{} unproven obligation(s) in strict mode:", obs.len())?;
                for (o, r) in obs {
                    write!(f, "\n  {} in {} at {}: {}", o.kind, o.in_fun, o.site, r)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Timing and counting statistics of one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Proof obligations generated (the paper's "constraints generated").
    pub constraints: usize,
    /// Solver goals examined (obligations split into atomic sequents).
    pub goals: usize,
    /// Time spent generating constraints (parse + phase 1 + phase 2).
    pub generation_time: Duration,
    /// Time spent solving constraints.
    pub solve_time: Duration,
    /// Obligations whose verdicts were reused from a previous compile by
    /// the incremental session layer (always 0 outside `dmlc serve` /
    /// [`crate::serve::Session`]). Reused obligations contribute nothing
    /// to `goals` or the solver counters — they never reach the solver.
    pub obligations_reused: usize,
    /// Aggregated solver statistics.
    pub solver: dml_solver::SolverStats,
}

/// The result of compiling a program.
#[derive(Debug)]
pub struct Compiled {
    program: sast::Program,
    env: Env,
    obligations: Vec<(Obligation, Verdict)>,
    traces: Vec<ObligationTrace>,
    contexts: Vec<SiteContext>,
    proven_sites: HashSet<Span>,
    fully_verified: bool,
    stats: CompileStats,
    top_level: HashMap<String, dml_types::ty::Scheme>,
    solver: Solver,
    gen: VarGen,
    infer_report: Option<dml_infer::InferReport>,
}

impl Compiled {
    /// The parsed program.
    pub fn program(&self) -> &sast::Program {
        &self.program
    }

    /// The type environment (with prelude and program declarations).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Every obligation with its collapsed verdict: `Proven` when every
    /// goal was proven, `Refuted` if any goal was refuted, else the first
    /// `Unknown`.
    pub fn obligations(&self) -> &[(Obligation, Verdict)] {
        &self.obligations
    }

    /// Per-obligation proof traces, recorded only when the session was
    /// built with [`Compiler::trace`]; empty otherwise. Each entry pairs an
    /// obligation with the event story of every goal it split into — the
    /// input of [`crate::trace::render_explain`] and
    /// [`crate::trace::chrome_trace`].
    pub fn traces(&self) -> &[ObligationTrace] {
        &self.traces
    }

    /// Total number of traced solver goals across all obligations — the
    /// valid range of `dmlc explain --goal` is `1..=goal_count()`. Zero
    /// unless the session was built with [`Compiler::trace`].
    pub fn goal_count(&self) -> usize {
        self.traces.iter().map(|t| t.goals.len()).sum()
    }

    /// Per-site hypothesis snapshots recorded during elaboration (`if`
    /// conditions and `case` arms), consumed by the lint pass.
    pub fn contexts(&self) -> &[SiteContext] {
        &self.contexts
    }

    /// Runs the semantic lint pass (`dml-analysis`) over the compiled
    /// program: solver-backed dead-branch / redundant-refinement /
    /// unprovable-annotation lints plus the syntactic ones, the
    /// residual-check lint (DML006), and the inferable-annotation lint
    /// (DML007, with machine-applicable fix-its). Findings are sorted by
    /// source position.
    pub fn lints(&self) -> Vec<Finding> {
        let mut gen = self.gen.clone();
        let residuals = self.residual_checks();
        let suggestions = self.infer_suggestions(&residuals);
        dml_analysis::run_lints(
            &self.program,
            &self.contexts,
            &self.env.families,
            &self.solver,
            &mut gen,
            &residuals,
            &suggestions,
        )
    }

    /// DML007 input: the accepted annotations of this compile's inference
    /// report when inference ran, otherwise a fresh inference pass. The
    /// fresh pass runs only when residual checks exist — a fully verified
    /// (or fully annotated) program pays nothing at lint time.
    fn infer_suggestions(&self, residuals: &[ResidualCheck]) -> Vec<dml_analysis::InferSuggestion> {
        let accepted = match &self.infer_report {
            Some(r) => r.accepted.clone(),
            None if residuals.is_empty() => return Vec::new(),
            None => match dml_infer::infer_refinements(&self.program, &self.solver) {
                Ok(out) => out.report.accepted,
                // Inference is advisory at lint time: a program it cannot
                // handle simply gets no DML007 findings.
                Err(_) => return Vec::new(),
            },
        };
        accepted
            .into_iter()
            .map(|a| dml_analysis::InferSuggestion {
                fun: a.fun,
                rendered: a.rendered,
                fixit: a.fixit,
                insert_at: a.insert_at,
                name_span: a.name_span,
            })
            .collect()
    }

    /// The solver this program was compiled with. Its verdict cache is
    /// shared with [`Compiled::lints`] and with any later
    /// [`Compiler::with_solver`] compile that reuses the same solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Obligations that were not proven (including exhaustiveness
    /// warnings; see [`Compiled::match_warnings`] for just those).
    pub fn failures(&self) -> impl Iterator<Item = &(Obligation, Verdict)> {
        self.obligations.iter().filter(|(_, r)| !r.is_proven())
    }

    /// The check sites whose bound/tag checks stay in the compiled program
    /// (graceful degradation): every unproven *check* obligation,
    /// deduplicated by site and sorted by source position, with the
    /// solver's reason. Empty for fully verified programs.
    pub fn residual_checks(&self) -> Vec<ResidualCheck> {
        dml_elab::residual_checks(&self.obligations)
    }

    /// Non-exhaustive `case` expressions whose missing constructors could
    /// not be proven impossible under the index constraints. A refined
    /// match like `case (s : 'a stack(n) | n >= 2) of PUSH(_, PUSH(_, r))`
    /// produces *no* warning — the refinement proves the other arms dead.
    pub fn match_warnings(&self) -> Vec<(Span, String)> {
        self.obligations
            .iter()
            .filter_map(|(o, r)| match (&o.kind, r) {
                (dml_elab::ObKind::Unreachable { con }, r) if !r.is_proven() => {
                    Some((o.site, con.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// `true` if every obligation was proven — the program dependently
    /// type-checks and all `sub`/`update`/`nth` sites compile unchecked.
    pub fn fully_verified(&self) -> bool {
        self.fully_verified
    }

    /// The call sites whose run-time checks are eliminated.
    pub fn proven_sites(&self) -> &HashSet<Span> {
        &self.proven_sites
    }

    /// Per-site verdict summaries for backends: one record per checking
    /// primitive call site, with the 1-based goal numbers (in
    /// [`Compiled::obligations`] order — the numbering `dmlc constraints`
    /// prints) and whether the site may compile unchecked. The proven flag
    /// is fail-safe: it is only set for members of
    /// [`Compiled::proven_sites`].
    pub fn site_verdicts(&self) -> Vec<dml_elab::SiteVerdict> {
        dml_elab::site_verdicts(&self.obligations, &self.proven_sites)
    }

    /// Check-primitive call sites that could *not* be proven (their checks
    /// stay at run time even in eliminated mode).
    pub fn unproven_sites(&self) -> HashSet<Span> {
        let mut all: HashSet<Span> = self
            .obligations
            .iter()
            .filter(|(o, _)| o.kind.is_check())
            .map(|(o, _)| o.site)
            .collect();
        all.retain(|s| !self.proven_sites.contains(s));
        all
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// The annotation-inference report, present only when the session was
    /// built with [`Compiler::infer`]. Records accepted (solver-verified)
    /// annotations, rejections with reasons, and before/after residual
    /// check counts.
    pub fn infer_report(&self) -> Option<&dml_infer::InferReport> {
        self.infer_report.as_ref()
    }

    /// Dependent schemes of the top-level bindings.
    pub fn top_level(&self) -> &HashMap<String, dml_types::ty::Scheme> {
        &self.top_level
    }

    /// Renders every unproven obligation as a source-anchored diagnostic
    /// (the paper's §6 "more informative error messages" future work).
    pub fn explain_failures(&self, src: &str) -> String {
        let mut out = String::new();
        for (ob, r) in self.failures() {
            let reason = match r {
                Verdict::Refuted => "refuted: a counterexample satisfies the hypotheses".into(),
                Verdict::Unknown(why) => why.to_string(),
                // `failures()` filters proven verdicts; any future verdict
                // is reported verbatim.
                other => other.to_string(),
            };
            out.push_str(&dml_elab::explain(ob, &reason, src));
            out.push('\n');
        }
        out
    }

    /// Builds an interpreter in the given mode (proven sites are passed
    /// through so `Mode::Eliminated` skips exactly the verified checks).
    pub fn machine(&self, mode: Mode) -> Machine {
        let config = match mode {
            Mode::Checked => CheckConfig::checked(),
            Mode::Eliminated => CheckConfig::eliminated(self.proven_sites.clone()),
        };
        self.machine_with(config)
    }

    /// Builds an interpreter with a custom configuration (cost model,
    /// validation); the proven-site set is filled in for eliminated mode.
    pub fn machine_with(&self, mut config: CheckConfig) -> Machine {
        if config.mode == Mode::Eliminated {
            config.proven = self.proven_sites.clone();
        }
        Machine::load(&self.program, config).expect("compiled programs load")
    }
}

/// A compilation session: solver budgets, strictness, caches, and solver
/// sharing behind one builder. This is the crate's only compile surface.
///
/// A `Compiler` is a **reusable handle**: its session solver (and the
/// verdict cache inside it) is created on first [`Compiler::compile`] and
/// shared by every later compile on the same handle, so a long-lived
/// session — the `dmlc serve` daemon, a test harness, an IDE — pays goal
/// solving once per distinct canonical goal, not once per request.
/// Option setters may be called between compiles; they apply to the next
/// compile while the session cache is kept (verdicts computed under
/// different budgets never collide — the cache key carries the budget
/// class).
///
/// # Examples
///
/// ```
/// use dml::Compiler;
/// use std::time::Duration;
///
/// let compiler = Compiler::new()
///     .fuel(50_000)                       // FM pair-combination budget per goal
///     .deadline(Duration::from_secs(5))   // wall-clock budget per goal
///     .workers(4)
///     .strict(false);                     // permissive: unknowns stay as residual checks
/// let compiled = compiler.compile("fun id(x) = x").expect("compiles");
/// assert!(compiled.fully_verified());
/// ```
///
/// One handle, many compiles — the second request is answered from the
/// session's verdict cache:
///
/// ```
/// use dml::Compiler;
///
/// let session = Compiler::new();
/// let src = "fun first(v) = sub(v, 0)
/// where first <| {n:nat | n > 0} int array(n) -> int";
/// let cold = session.compile(src).expect("compiles");
/// assert!(cold.stats().solver.cache_misses > 0);
/// let warm = session.compile(src).expect("compiles");
/// assert_eq!(warm.stats().solver.cache_misses, 0, "all hits");
/// ```
///
/// Cloning a handle *after* its first compile shares the session solver;
/// cloning before gives an independent session.
#[non_exhaustive]
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    options: SolverOptions,
    strict: bool,
    infer: bool,
    session: OnceLock<Solver>,
}

impl Compiler {
    /// A permissive compiler with default solver options (unlimited fuel,
    /// no deadline, cache on, automatic worker count).
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Sets the per-goal fuel budget in Fourier–Motzkin pair combinations.
    /// Goals that run out come back `Unknown(FuelExhausted)` and keep
    /// their runtime checks.
    pub fn fuel(mut self, fuel: u64) -> Compiler {
        self.options = self.options.with_fuel(Some(fuel));
        self
    }

    /// Removes the fuel budget (the default).
    pub fn unlimited_fuel(mut self) -> Compiler {
        self.options = self.options.with_fuel(None);
        self
    }

    /// Sets the per-goal wall-clock deadline. Goals that pass it come back
    /// `Unknown(Deadline)` (never cached — wall-clock verdicts are
    /// machine-dependent).
    pub fn deadline(mut self, deadline: Duration) -> Compiler {
        self.options = self.options.with_deadline(Some(deadline));
        self
    }

    /// Strict mode: any unproven obligation aborts compilation with
    /// [`PipelineError::Unproven`] listing *every* failure sorted by
    /// source site. Off by default (permissive graceful degradation).
    pub fn strict(mut self, strict: bool) -> Compiler {
        self.strict = strict;
        self
    }

    /// Requests an explicit solve worker count (`1` reproduces the
    /// sequential pipeline exactly).
    pub fn workers(mut self, workers: usize) -> Compiler {
        self.options = self.options.with_workers(Some(workers));
        self
    }

    /// Enables or disables the verdict cache.
    pub fn cache(mut self, on: bool) -> Compiler {
        self.options = self.options.with_cache(on);
        self
    }

    /// Enables proof-trace recording: every goal carries its event story
    /// ([`Compiled::traces`]) for `dmlc explain` and `--trace-out`. Off by
    /// default — tracing re-decides cache hits so each trace is complete,
    /// making it strictly a diagnostic mode.
    pub fn trace(mut self, on: bool) -> Compiler {
        self.options = self.options.with_trace(on);
        self
    }

    /// Replaces the full solver options (budgets set earlier are
    /// overwritten; setters called later still apply).
    pub fn solver_options(mut self, options: SolverOptions) -> Compiler {
        self.options = options;
        self
    }

    /// Adopts a caller-supplied solver as the session solver, *sharing its
    /// verdict cache*. The solver's options become the session baseline
    /// (budget setters called afterwards still apply — verdicts computed
    /// under different fuel budgets never collide in the shared cache).
    pub fn with_solver(mut self, solver: &Solver) -> Compiler {
        self.options = *solver.options();
        self.session = OnceLock::from(solver.clone());
        self
    }

    /// The session solver, created on first use. Every
    /// [`Compiler::compile`] on this handle runs through it (with the
    /// handle's current options applied), so its verdict cache carries
    /// across compiles.
    pub fn solver(&self) -> &Solver {
        self.session.get_or_init(|| Solver::new(self.options))
    }

    /// Attaches an on-disk verdict store at `path` to the session cache
    /// (see [`dml_solver::cache::GoalCache::attach_disk`]): previously
    /// flushed verdicts answer goals across process restarts, and new
    /// verdicts are queued until [`Compiler::flush_disk`]. A missing,
    /// stale, or corrupted file is ignored — persistence never fails a
    /// compile.
    pub fn disk_cache(self, path: impl Into<std::path::PathBuf>) -> Compiler {
        self.solver().cache().attach_disk(path);
        self
    }

    /// Writes verdicts queued since the last flush back to the attached
    /// disk store (no-op without one). Returns the total entries now on
    /// disk when a write happened.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the store write.
    pub fn flush_disk(&self) -> std::io::Result<Option<usize>> {
        self.solver().cache().flush_disk()
    }

    /// The solver options this session will compile with.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Whether this session is strict.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Enables annotation inference (`dml-infer`): before solving, an
    /// interval abstract interpretation proposes `where`-clauses for
    /// unannotated functions, every candidate is verified through this
    /// session's solver, and the accepted ones are attached to the AST
    /// (spans unchanged). The compiled program then eliminates the checks
    /// the inferred refinements prove. Off by default.
    pub fn infer(mut self, on: bool) -> Compiler {
        self.infer = on;
        self
    }

    /// Whether annotation inference is enabled.
    pub fn is_infer(&self) -> bool {
        self.infer
    }

    /// Runs the pipeline on `src`.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for parse/type/elaboration failures —
    /// and, in strict mode, [`PipelineError::Unproven`] when any
    /// obligation is left unproven.
    pub fn compile(&self, src: &str) -> Result<Compiled, PipelineError> {
        self.compile_incremental(src, None)
    }

    /// [`Compiler::compile`] with an optional verdict-reuse plan from the
    /// incremental session layer (`serve`): obligations bucketed to
    /// declarations the plan marks unchanged take their previous verdicts
    /// without touching the solver. Callers are responsible for the plan's
    /// soundness preconditions (environment signature unchanged, decl text
    /// unchanged — see [`crate::serve::incremental`]); a per-bucket
    /// obligation-count mismatch falls back to solving that bucket.
    pub(crate) fn compile_incremental(
        &self,
        src: &str,
        reuse: Option<&ReusePlan>,
    ) -> Result<Compiled, PipelineError> {
        // The session solver is created once per handle; applying the
        // handle's current options here keeps later setter calls honest
        // while preserving the shared cache.
        let solver = self.solver().with_options(self.options);
        // Trace mode re-decides every goal for complete event stories;
        // verdict reuse would leave reused obligations storyless.
        let reuse = if self.options.trace || self.infer { None } else { reuse };
        let program = dml_syntax::parse_program(src).map_err(PipelineError::Parse)?;
        // The gen memo key is the source text alone: generation is
        // deterministic per source. Inference rewrites the AST based on
        // solver verdicts, so inferred compiles opt out.
        let (program, infer_report, memo_key) = if self.infer {
            match dml_infer::infer_refinements(&program, &solver) {
                Ok(out) => (out.refined, Some(out.report), None),
                // A baseline that fails phase 1 or elaboration falls
                // through to the pipeline proper, which reports the
                // real error with its span.
                Err(_) => (program, None, None),
            }
        } else {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            src.hash(&mut h);
            (program, None, Some(h.finish()))
        };
        let mut compiled = run_pipeline_ast(program, &solver, memo_key, reuse)?;
        compiled.infer_report = infer_report;
        let compiled = compiled;
        if self.strict && !compiled.fully_verified() {
            let mut unproven: Vec<(Obligation, Verdict)> = compiled
                .obligations
                .iter()
                .filter(|(o, r)| {
                    !matches!(o.kind, dml_elab::ObKind::Unreachable { .. }) && !r.is_proven()
                })
                .cloned()
                .collect();
            unproven.sort_by_key(|(o, _)| (o.site.start, o.site.end));
            return Err(PipelineError::Unproven(unproven));
        }
        Ok(compiled)
    }
}

/// A verdict-reuse plan for one incremental recompile, built by the
/// session layer (`serve::incremental`) from the previous compile of the
/// same file. Obligations are bucketed to top-level declarations by source
/// position; a bucket whose declaration is unchanged takes its previous
/// verdicts positionally instead of re-solving (sound because
/// re-elaboration of identical decl text under an identical environment
/// signature yields the same constraints up to variable renaming, and
/// verdicts are alpha-invariant).
#[derive(Debug, Clone)]
pub(crate) struct ReusePlan {
    /// Bucket boundaries: the current program's top-level declaration
    /// start positions, ascending.
    pub decl_starts: Vec<usize>,
    /// Per declaration: the previous compile's collapsed verdicts for that
    /// bucket in obligation order, or `None` to re-solve.
    pub prior: Vec<Option<Vec<Verdict>>>,
}

/// The declaration bucket owning a source position: the greatest decl
/// start at or before it (positions before the first decl fall into
/// bucket 0).
pub(crate) fn bucket_of(decl_starts: &[usize], site_start: usize) -> usize {
    decl_starts.partition_point(|&s| s <= site_start).saturating_sub(1)
}

/// Collapses an outcome into the single verdict recorded per obligation:
/// `Proven` when every goal was proven (in particular when the constraint
/// split into no goals at all); otherwise `Refuted` if *any* goal was
/// refuted (a counterexample trumps mere uncertainty), else the first
/// `Unknown`.
fn collapse_verdicts(outcome: &Outcome) -> Verdict {
    let mut collapsed = Verdict::Proven;
    for (_, r) in &outcome.results {
        match r {
            Verdict::Proven => {}
            Verdict::Refuted => return Verdict::Refuted,
            other => {
                if collapsed.is_proven() {
                    collapsed = other.clone();
                }
            }
        }
    }
    collapsed
}

/// Output of the generation phase (env → phase 1 → phase 2): everything
/// the solve phase and the final [`Compiled`] need, with no reference to
/// solver state. Cloneable so the gen-phase memo can hand out copies.
#[derive(Debug, Clone)]
struct GenArtifacts {
    program: sast::Program,
    env: Env,
    obligations: Vec<Obligation>,
    top_level: HashMap<String, dml_types::ty::Scheme>,
    gen: VarGen,
    contexts: Vec<SiteContext>,
}

/// The generation phase proper: env declarations → phase-1 ML inference →
/// phase-2 dependent elaboration. Deterministic in `program` alone (the
/// variable supply always starts at zero), which is what makes the memo
/// below sound.
fn gen_phase(program: sast::Program) -> Result<GenArtifacts, PipelineError> {
    let mut gen = VarGen::new();
    let mut env = base_env(&mut gen);
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => {
                env.add_datatype(dd, &mut gen).map_err(|e| PipelineError::Env(e.message, e.span))?
            }
            sast::Decl::Typeref(tr) => {
                env.add_typeref(tr, &mut gen).map_err(|e| PipelineError::Env(e.message, e.span))?
            }
            sast::Decl::Assert(sigs) => env
                .add_assert(sigs, &check_kind, &mut gen)
                .map_err(|e| PipelineError::Env(e.message, e.span))?,
            _ => {}
        }
    }
    let phase1 =
        infer_program(&program, &env).map_err(|e| PipelineError::Infer(e.message, e.span))?;
    let ElabOutput { obligations, top_level, gen, contexts } =
        elaborate(&program, &env, &phase1, gen)
            .map_err(|e| PipelineError::Elab(e.message, e.span))?;
    Ok(GenArtifacts { program, env, obligations, top_level, gen, contexts })
}

/// Entries kept in the gen-phase memo before it is cleared. Programs are
/// small (the seed suite is 8), so this is a safety valve against
/// unbounded growth in fuzzing/batch sessions, not a tuned cache policy.
const GEN_MEMO_CAP: usize = 64;

/// Process-wide memo for the generation phase, keyed by source hash.
///
/// Elaboration is pure and deterministic per source text (see
/// [`gen_phase`]), so constraint generation is hash-consed the same way
/// solved goals are memoized in the verdict cache: a recompile of the same
/// program clones the artifacts instead of re-elaborating. This is what
/// makes warm recompiles (compile services, the warm half of the bench
/// suite, repeated `dmlc` invocations in one process) pay only for
/// solving. Cold compiles are unaffected — a fresh process starts with an
/// empty memo.
static GEN_MEMO: OnceLock<Mutex<HashMap<u64, Arc<GenArtifacts>>>> = OnceLock::new();

/// Empties the process-wide gen-phase memo. Benchmarks call this between
/// cold-compile iterations so "cold" keeps meaning *no* warm state — not
/// an empty verdict cache in front of memoized elaboration.
pub fn clear_gen_memo() {
    if let Some(memo) = GEN_MEMO.get() {
        memo.lock().expect("gen memo poisoned").clear();
    }
}

fn gen_phase_memoized(
    program: sast::Program,
    memo_key: Option<u64>,
) -> Result<GenArtifacts, PipelineError> {
    let Some(key) = memo_key else { return gen_phase(program) };
    let memo = GEN_MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = memo.lock().expect("gen memo poisoned").get(&key) {
        return Ok(GenArtifacts::clone(hit));
    }
    let artifacts = gen_phase(program)?;
    let mut memo = memo.lock().expect("gen memo poisoned");
    if memo.len() >= GEN_MEMO_CAP {
        memo.clear();
    }
    memo.insert(key, Arc::new(artifacts.clone()));
    Ok(artifacts)
}

/// The pipeline proper: env → phase 1 → phase 2 → solve → check
/// elimination, from an already-parsed (possibly refined) AST.
/// Strictness is layered on top by [`Compiler::compile`]. Running
/// from the AST rather than re-rendered source keeps every expression
/// span identical to the original program, so check sites, proven-site
/// sets and the evaluator's span-keyed check elimination stay consistent
/// when `dml-infer` attaches annotations.
///
/// `memo_key` (a hash of the source text) opts the generation phase into
/// the process-wide memo; pass `None` when the AST did not come verbatim
/// from source (e.g. after inference attaches annotations).
fn run_pipeline_ast(
    program: sast::Program,
    solver: &Solver,
    memo_key: Option<u64>,
    reuse: Option<&ReusePlan>,
) -> Result<Compiled, PipelineError> {
    let gen_start = Instant::now();
    let GenArtifacts { program, env, obligations, top_level, gen, contexts } =
        gen_phase_memoized(program, memo_key)?;
    let generation_time = gen_start.elapsed();

    // Incremental reuse: bucket obligations to declarations and take the
    // previous compile's verdicts for buckets the plan marks unchanged. A
    // bucket whose obligation count differs from the plan's record is
    // re-solved in full (positional pairing would be meaningless).
    let mut reused: Vec<Option<Verdict>> = vec![None; obligations.len()];
    let mut obligations_reused = 0usize;
    if let Some(plan) = reuse {
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); plan.prior.len()];
        for (i, ob) in obligations.iter().enumerate() {
            let d = bucket_of(&plan.decl_starts, ob.site.start as usize);
            if let Some(b) = buckets.get_mut(d) {
                b.push(i);
            }
        }
        for (bucket, prior) in buckets.iter().zip(&plan.prior) {
            if let Some(verdicts) = prior {
                if verdicts.len() == bucket.len() {
                    for (&slot, v) in bucket.iter().zip(verdicts) {
                        reused[slot] = Some(v.clone());
                        obligations_reused += 1;
                    }
                }
            }
        }
    }

    // Solve every obligation the plan did not answer (in parallel when the
    // options ask for it; results come back in obligation order either
    // way). Cache hit/miss counters are snapshot-and-diffed around the
    // solve so the reported numbers are this compile's own, even when the
    // solver (and its process-lived cache) is shared across many compiles.
    let solve_start = Instant::now();
    let solver = solver.clone();
    let cache_snapshot =
        (solver.cache().hits(), solver.cache().misses(), solver.cache().disk_hits());
    let mut gen = gen;
    let outcomes = {
        let constraints: Vec<_> = obligations
            .iter()
            .zip(&reused)
            .filter(|(_, r)| r.is_none())
            .map(|(ob, _)| &ob.constraint)
            .collect::<Vec<_>>();
        prove_all(&solver, &constraints, &mut gen)
    };
    let tracing = solver.options().trace;
    let mut results = Vec::with_capacity(obligations.len());
    let mut traces = Vec::new();
    let mut solver_stats = dml_solver::SolverStats::default();
    let mut goals = 0usize;
    let mut outcomes = outcomes.into_iter();
    for (ob, prior) in obligations.into_iter().zip(reused) {
        if let Some(verdict) = prior {
            results.push((ob, verdict));
            continue;
        }
        let outcome = outcomes.next().expect("one outcome per solved obligation");
        goals += outcome.results.len();
        solver_stats.merge(&outcome.stats);
        let verdict = collapse_verdicts(&outcome);
        if tracing {
            let records = outcome
                .results
                .into_iter()
                .zip(outcome.traces)
                .map(|((goal, verdict), trace)| GoalRecord { goal, verdict, trace })
                .collect();
            traces.push(ObligationTrace { obligation: ob.clone(), goals: records });
        }
        results.push((ob, verdict));
    }
    // Snapshot-and-diff (see above): report the shared cache's movement
    // during *this* compile's solve, not since the cache was created.
    solver_stats.cache_hits = (solver.cache().hits() - cache_snapshot.0) as usize;
    solver_stats.cache_misses = (solver.cache().misses() - cache_snapshot.1) as usize;
    solver_stats.cache_disk_hits = (solver.cache().disk_hits() - cache_snapshot.2) as usize;
    let solve_time = solve_start.elapsed();

    // Check elimination (§4): a program that type-checks compiles its
    // proven `sub`/`update`/`nth` sites to the unchecked primitives. If
    // any *non-check* obligation failed, the program does not dependently
    // type-check and nothing is eliminated (fail-safe). Exhaustiveness
    // obligations are warnings (potential match failures), never blockers.
    let non_check_ok = results.iter().all(|(o, r)| {
        o.kind.is_check() || matches!(o.kind, dml_elab::ObKind::Unreachable { .. }) || r.is_proven()
    });
    let mut site_ok: HashMap<Span, bool> = HashMap::new();
    for (o, r) in &results {
        if o.kind.is_check() {
            let e = site_ok.entry(o.site).or_insert(true);
            *e &= r.is_proven();
        }
    }
    let proven_sites: HashSet<Span> = if non_check_ok {
        site_ok.iter().filter(|(_, ok)| **ok).map(|(s, _)| *s).collect()
    } else {
        HashSet::new()
    };
    let fully_verified = non_check_ok
        && results
            .iter()
            .all(|(o, r)| matches!(o.kind, dml_elab::ObKind::Unreachable { .. }) || r.is_proven());

    let stats = CompileStats {
        constraints: results.len(),
        goals,
        generation_time,
        solve_time,
        obligations_reused,
        solver: solver_stats,
    };
    Ok(Compiled {
        program,
        env,
        obligations: results,
        traces,
        contexts,
        proven_sites,
        fully_verified,
        stats,
        top_level,
        solver,
        gen,
        infer_report: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Result<Compiled, PipelineError> {
        Compiler::new().compile(src)
    }

    #[test]
    fn verified_program_eliminates_checks() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified());
        assert_eq!(c.proven_sites().len(), 1);
        assert!(c.unproven_sites().is_empty());
        assert!(c.residual_checks().is_empty());
        assert!(c.stats().constraints > 0);
    }

    #[test]
    fn unannotated_program_keeps_checks() {
        let c = compile("fun get(v, i) = sub(v, i)").unwrap();
        assert!(!c.fully_verified());
        assert!(c.proven_sites().is_empty());
        assert_eq!(c.unproven_sites().len(), 1);
        let residual = c.residual_checks();
        assert_eq!(residual.len(), 1);
        assert_eq!(residual[0].prim, "sub");
    }

    #[test]
    fn eliminated_machine_skips_checks() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified(), "{:?}", c.failures().collect::<Vec<_>>());
        let mut m = c.machine(Mode::Eliminated);
        let r = m.call("total", vec![dml_eval::Value::int_array([1, 2, 3, 4])]).unwrap();
        assert_eq!(r.as_int(), Some(10));
        assert_eq!(m.counters.array_checks_eliminated, 4);
        assert_eq!(m.counters.array_checks_executed, 0);
        let mut m = c.machine(Mode::Checked);
        m.call("total", vec![dml_eval::Value::int_array([1, 2, 3, 4])]).unwrap();
        assert_eq!(m.counters.array_checks_executed, 4);
    }

    #[test]
    fn failed_equation_blocks_all_elimination() {
        // The bound obligation on `sub(v, 0)` is provable, but the result
        // type equation is false, so the program does not type-check and
        // nothing may be eliminated.
        let src = r#"
fun broken(v) = sub(v, 0)
where broken <| {n:nat | n > 0} int array(n) -> int(n+1)
"#;
        let c = compile(src).unwrap();
        assert!(!c.fully_verified());
        assert!(c.proven_sites().is_empty(), "type error must block elimination");
    }

    /// The false result equation of `broken` is *refuted*, not merely
    /// unknown: the solver exhibits a witness for `n+1 ≠ n` under `n > 0`.
    #[test]
    fn false_equation_is_refuted() {
        let src = r#"
fun broken(v) = sub(v, 0)
where broken <| {n:nat | n > 0} int array(n) -> int(n+1)
"#;
        let c = compile(src).unwrap();
        assert!(
            c.failures().any(|(_, r)| r.is_refuted()),
            "{:?}",
            c.failures().collect::<Vec<_>>()
        );
    }

    #[test]
    fn strict_mode_reports_all_unproven_obligations_sorted() {
        // Two independent unproven sites; strict mode must report both,
        // in source order.
        let src = r#"
fun get(v, i) = sub(v, i)
fun put(v, i, x) = update(v, i, x)
"#;
        let err = Compiler::new().strict(true).compile(src).unwrap_err();
        let PipelineError::Unproven(obs) = &err else { panic!("{err}") };
        assert!(obs.len() >= 2, "both sites reported: {obs:?}");
        let sites: Vec<_> = obs.iter().map(|(o, _)| o.site.start).collect();
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        assert_eq!(sites, sorted, "sorted by source site");
        let text = err.to_string();
        assert!(text.contains("sub") && text.contains("update"), "{text}");

        // The same program compiles fine permissively.
        let c = Compiler::new().compile(src).unwrap();
        assert_eq!(c.residual_checks().len(), 2);
    }

    #[test]
    fn strict_mode_passes_verified_programs() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let c = Compiler::new().strict(true).compile(src).unwrap();
        assert!(c.fully_verified());
    }

    #[test]
    fn zero_fuel_degrades_gracefully_and_residuals_count_at_runtime() {
        // With no fuel the loop invariant goals exhaust immediately; the
        // program still compiles permissively and runs with its checks.
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let starved = Compiler::new().fuel(0).compile(src).unwrap();
        assert!(!starved.fully_verified(), "zero fuel cannot prove the loop bounds");
        assert!(
            starved.failures().any(|(_, r)| matches!(
                r,
                Verdict::Unknown(dml_index::UnknownReason::FuelExhausted)
            )),
            "{:?}",
            starved.failures().collect::<Vec<_>>()
        );
        assert!(!starved.residual_checks().is_empty());

        // The residual checks execute — and are *counted* as residual.
        let mut m = starved.machine(Mode::Eliminated);
        let r = m.call("total", vec![dml_eval::Value::int_array([1, 2, 3, 4])]).unwrap();
        assert_eq!(r.as_int(), Some(10));
        assert!(m.counters.array_checks_residual > 0);
        assert_eq!(m.counters.array_checks_residual, m.counters.array_checks_executed);

        // Unlimited fuel proves everything — same program, same session API.
        let full = Compiler::new().compile(src).unwrap();
        assert!(full.fully_verified());
        assert!(full.residual_checks().is_empty());
    }

    /// The dead-branch lint is genuinely solver-backed: with the guard
    /// `i < n` in scope the `if` condition is entailed and DML001 fires;
    /// dropping that one hypothesis from the annotation flips the verdict.
    #[test]
    fn lints_flag_dead_branch_and_hypothesis_removal_flips_it() {
        let guarded = r#"
fun get(v, i) = if i < length(v) then sub(v, i) else 0
where get <| {n:nat, i:nat | i < n} int array(n) * int(i) -> int
"#;
        let c = compile(guarded).unwrap();
        let lints = c.lints();
        assert!(
            lints.iter().any(|f| f.code == "DML001" && f.message.contains("always true")),
            "{lints:?}"
        );

        let unguarded = r#"
fun get(v, i) = if i < length(v) then sub(v, i) else 0
where get <| {n:nat, i:nat} int array(n) * int(i) -> int
"#;
        let c = compile(unguarded).unwrap();
        let lints = c.lints();
        assert!(
            !lints.iter().any(|f| f.code == "DML001"),
            "without `i < n` the condition is contingent: {lints:?}"
        );
    }

    #[test]
    fn lints_are_quiet_on_a_clean_program() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified());
        let lints = c.lints();
        assert!(lints.is_empty(), "{lints:?}");
    }

    /// `collapse_verdicts` is total: an outcome with no goals (or
    /// all-proven goals) collapses to `Proven` instead of panicking;
    /// `Refuted` trumps `Unknown`; otherwise the first `Unknown` wins.
    #[test]
    fn collapse_verdicts_is_total_and_orders_refuted_first() {
        use dml_index::UnknownReason;
        use dml_solver::SolverStats;
        let empty = Outcome { results: vec![], traces: vec![], stats: SolverStats::default() };
        assert_eq!(collapse_verdicts(&empty), Verdict::Proven);

        let goal = dml_solver::Goal {
            ctx: vec![],
            hyps: vec![],
            concl: dml_index::Prop::True,
            residual_existential: false,
        };
        let all_proven = Outcome {
            results: vec![(goal.clone(), Verdict::Proven)],
            traces: vec![],
            stats: SolverStats::default(),
        };
        assert_eq!(collapse_verdicts(&all_proven), Verdict::Proven);

        let mixed = Outcome {
            results: vec![
                (goal.clone(), Verdict::Proven),
                (goal.clone(), Verdict::Unknown(UnknownReason::Blowup)),
                (goal.clone(), Verdict::Unknown(UnknownReason::PossiblyFalsifiable)),
            ],
            traces: vec![],
            stats: SolverStats::default(),
        };
        assert_eq!(collapse_verdicts(&mixed), Verdict::Unknown(UnknownReason::Blowup));

        let refuted_late = Outcome {
            results: vec![
                (goal.clone(), Verdict::Unknown(UnknownReason::Blowup)),
                (goal, Verdict::Refuted),
            ],
            traces: vec![],
            stats: SolverStats::default(),
        };
        assert_eq!(collapse_verdicts(&refuted_late), Verdict::Refuted);
    }

    /// Compiling twice against one solver shares the verdict cache: the
    /// second compile answers every cacheable goal from it, with identical
    /// verdicts.
    #[test]
    fn with_solver_shares_cache_across_compiles() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let solver = Solver::new(SolverOptions::default());
        let cold = Compiler::new().with_solver(&solver).compile(src).unwrap();
        assert!(cold.stats().solver.cache_misses > 0);
        let warm = Compiler::new().with_solver(&solver).compile(src).unwrap();
        assert_eq!(warm.stats().solver.cache_misses, 0, "second compile is all hits");
        assert!(warm.stats().solver.cache_hits > 0);
        assert!(warm.fully_verified());
        assert_eq!(cold.proven_sites(), warm.proven_sites());
    }

    /// A single `Compiler` handle is a reusable session: its second
    /// compile of the same program is answered entirely from the session
    /// verdict cache, and an option change between compiles keeps the
    /// cache while applying the new budget.
    #[test]
    fn compiler_handle_reuses_session_across_compiles() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let session = Compiler::new();
        let cold = session.compile(src).unwrap();
        assert!(cold.stats().solver.cache_misses > 0);
        let warm = session.compile(src).unwrap();
        assert_eq!(warm.stats().solver.cache_misses, 0, "second compile is all hits");
        assert!(warm.stats().solver.cache_hits > 0);
        assert_eq!(cold.proven_sites(), warm.proven_sites());

        // Changing an option between compiles keeps the session cache:
        // the budget-class key partition means unlimited-fuel verdicts
        // still answer unlimited-fuel goals, while the new fuel class
        // misses cleanly.
        let refueled = session.clone().fuel(1_000_000);
        let third = refueled.compile(src).unwrap();
        assert!(third.fully_verified());
        assert_eq!(cold.proven_sites(), third.proven_sites());
    }

    /// Worker count and cache do not change verdicts or proven sites.
    #[test]
    fn parallel_and_cache_configs_agree() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let base = Compiler::new().workers(1).compile(src).unwrap();
        for (workers, cache) in [(4, true), (1, false), (4, false)] {
            let c = Compiler::new().workers(workers).cache(cache).compile(src).unwrap();
            let verdicts =
                |c: &Compiled| c.obligations().iter().map(|(_, r)| r.clone()).collect::<Vec<_>>();
            assert_eq!(verdicts(&base), verdicts(&c), "workers={workers} cache={cache}");
            assert_eq!(base.proven_sites(), c.proven_sites(), "workers={workers} cache={cache}");
            assert_eq!(base.stats().goals, c.stats().goals, "workers={workers} cache={cache}");
        }
    }

    /// A traced session records one [`ObligationTrace`] per obligation
    /// with goal records matching the solver's goal count; untraced
    /// sessions carry none (zero-cost default).
    #[test]
    fn trace_mode_records_goal_traces() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let traced = Compiler::new().trace(true).compile(src).unwrap();
        assert_eq!(traced.traces().len(), traced.obligations().len());
        let goals: usize = traced.traces().iter().map(|t| t.goals.len()).sum();
        assert_eq!(goals, traced.stats().goals);
        for ot in traced.traces() {
            for rec in &ot.goals {
                assert_eq!(rec.trace.verdict(), Some(rec.verdict.to_string().as_str()));
            }
        }

        let untraced = Compiler::new().compile(src).unwrap();
        assert!(untraced.traces().is_empty());
        // Tracing does not change verdicts.
        let verdicts =
            |c: &Compiled| c.obligations().iter().map(|(_, r)| r.clone()).collect::<Vec<_>>();
        assert_eq!(verdicts(&traced), verdicts(&untraced));
    }

    #[test]
    fn parse_errors_reported() {
        assert!(matches!(compile("fun = 3"), Err(PipelineError::Parse(_))));
    }

    #[test]
    fn infer_errors_reported() {
        assert!(matches!(compile("fun f(x) = x + true"), Err(PipelineError::Infer(_, _))));
    }
}
