//! The compilation pipeline: parse → phase-1 ML inference → phase-2
//! dependent elaboration → constraint solving → check elimination.

use dml_analysis::Finding;
use dml_elab::{elaborate, ElabOutput, Obligation, SiteContext};
use dml_eval::{CheckConfig, Machine, Mode};
use dml_index::VarGen;
use dml_solver::{prove_all, GoalResult, Outcome, Solver, SolverOptions};
use dml_syntax::ast as sast;
use dml_syntax::Span;
use dml_types::builtins::{base_env, check_kind};
use dml_types::env::Env;
use dml_types::infer::infer_program;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// A hard front-end failure (parse, environment, phase-1, phase-2).
/// Unproven constraints are *not* errors — they appear in
/// [`Compiled::failures`] and simply keep their checks at run time.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Lexical or syntactic error.
    Parse(dml_syntax::ParseError),
    /// `datatype`/`typeref`/`assert` processing error.
    Env(String, Span),
    /// Phase-1 ML type error.
    Infer(String, Span),
    /// Phase-2 elaboration error.
    Elab(String, Span),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Env(m, s) => write!(f, "environment error at {s}: {m}"),
            PipelineError::Infer(m, s) => write!(f, "type error at {s}: {m}"),
            PipelineError::Elab(m, s) => write!(f, "elaboration error at {s}: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Timing and counting statistics of one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Proof obligations generated (the paper's "constraints generated").
    pub constraints: usize,
    /// Solver goals examined (obligations split into atomic sequents).
    pub goals: usize,
    /// Time spent generating constraints (parse + phase 1 + phase 2).
    pub generation_time: Duration,
    /// Time spent solving constraints.
    pub solve_time: Duration,
    /// Aggregated solver statistics.
    pub solver: dml_solver::SolverStats,
}

/// The result of compiling a program.
#[derive(Debug)]
pub struct Compiled {
    program: sast::Program,
    env: Env,
    obligations: Vec<(Obligation, GoalResult)>,
    contexts: Vec<SiteContext>,
    proven_sites: HashSet<Span>,
    fully_verified: bool,
    stats: CompileStats,
    top_level: HashMap<String, dml_types::ty::Scheme>,
    solver: Solver,
    gen: VarGen,
}

impl Compiled {
    /// The parsed program.
    pub fn program(&self) -> &sast::Program {
        &self.program
    }

    /// The type environment (with prelude and program declarations).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Every obligation with its proof result.
    pub fn obligations(&self) -> &[(Obligation, GoalResult)] {
        &self.obligations
    }

    /// Per-site hypothesis snapshots recorded during elaboration (`if`
    /// conditions and `case` arms), consumed by the lint pass.
    pub fn contexts(&self) -> &[SiteContext] {
        &self.contexts
    }

    /// Runs the semantic lint pass (`dml-analysis`) over the compiled
    /// program: solver-backed dead-branch / redundant-refinement /
    /// unprovable-annotation lints plus the syntactic ones. Findings are
    /// sorted by source position.
    pub fn lints(&self) -> Vec<Finding> {
        let mut gen = self.gen.clone();
        dml_analysis::run_lints(
            &self.program,
            &self.contexts,
            &self.env.families,
            &self.solver,
            &mut gen,
        )
    }

    /// The solver this program was compiled with. Its verdict cache is
    /// shared with [`Compiled::lints`] and with any later
    /// [`compile_with_solver`] call that reuses the same solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Obligations that were not proven (including exhaustiveness
    /// warnings; see [`Compiled::match_warnings`] for just those).
    pub fn failures(&self) -> impl Iterator<Item = &(Obligation, GoalResult)> {
        self.obligations.iter().filter(|(_, r)| !r.is_valid())
    }

    /// Non-exhaustive `case` expressions whose missing constructors could
    /// not be proven impossible under the index constraints. A refined
    /// match like `case (s : 'a stack(n) | n >= 2) of PUSH(_, PUSH(_, r))`
    /// produces *no* warning — the refinement proves the other arms dead.
    pub fn match_warnings(&self) -> Vec<(Span, String)> {
        self.obligations
            .iter()
            .filter_map(|(o, r)| match (&o.kind, r) {
                (dml_elab::ObKind::Unreachable { con }, r) if !r.is_valid() => {
                    Some((o.site, con.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// `true` if every obligation was proven — the program dependently
    /// type-checks and all `sub`/`update`/`nth` sites compile unchecked.
    pub fn fully_verified(&self) -> bool {
        self.fully_verified
    }

    /// The call sites whose run-time checks are eliminated.
    pub fn proven_sites(&self) -> &HashSet<Span> {
        &self.proven_sites
    }

    /// Check-primitive call sites that could *not* be proven (their checks
    /// stay at run time even in eliminated mode).
    pub fn unproven_sites(&self) -> HashSet<Span> {
        let mut all: HashSet<Span> = self
            .obligations
            .iter()
            .filter(|(o, _)| o.kind.is_check())
            .map(|(o, _)| o.site)
            .collect();
        all.retain(|s| !self.proven_sites.contains(s));
        all
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Dependent schemes of the top-level bindings.
    pub fn top_level(&self) -> &HashMap<String, dml_types::ty::Scheme> {
        &self.top_level
    }

    /// Renders every unproven obligation as a source-anchored diagnostic
    /// (the paper's §6 "more informative error messages" future work).
    pub fn explain_failures(&self, src: &str) -> String {
        let mut out = String::new();
        for (ob, r) in self.failures() {
            let reason = match r {
                GoalResult::Valid => unreachable!("failures() filters valid results"),
                GoalResult::NotProven(why) => why.to_string(),
            };
            out.push_str(&dml_elab::explain(ob, &reason, src));
            out.push('\n');
        }
        out
    }

    /// Builds an interpreter in the given mode (proven sites are passed
    /// through so `Mode::Eliminated` skips exactly the verified checks).
    pub fn machine(&self, mode: Mode) -> Machine {
        let config = match mode {
            Mode::Checked => CheckConfig::checked(),
            Mode::Eliminated => CheckConfig::eliminated(self.proven_sites.clone()),
        };
        self.machine_with(config)
    }

    /// Builds an interpreter with a custom configuration (cost model,
    /// validation); the proven-site set is filled in for eliminated mode.
    pub fn machine_with(&self, mut config: CheckConfig) -> Machine {
        if config.mode == Mode::Eliminated {
            config.proven = self.proven_sites.clone();
        }
        Machine::load(&self.program, config).expect("compiled programs load")
    }
}

/// Compiles with default solver options.
///
/// # Errors
///
/// Returns a [`PipelineError`] for parse/type/elaboration failures.
pub fn compile(src: &str) -> Result<Compiled, PipelineError> {
    compile_with_options(src, SolverOptions::default())
}

/// Compiles with explicit solver options (used by the ablation bench).
///
/// # Errors
///
/// Returns a [`PipelineError`] for parse/type/elaboration failures.
pub fn compile_with_options(src: &str, options: SolverOptions) -> Result<Compiled, PipelineError> {
    compile_with_solver(src, &Solver::new(options))
}

/// Collapses an outcome into the single result recorded per obligation:
/// [`GoalResult::Valid`] when every goal was proven (in particular when the
/// constraint split into no goals at all), otherwise the first failure.
fn first_failure(outcome: Outcome) -> GoalResult {
    outcome.results.into_iter().map(|(_, r)| r).find(|r| !r.is_valid()).unwrap_or(GoalResult::Valid)
}

/// Compiles against a caller-supplied solver.
///
/// Cloning a [`Solver`] shares its verdict cache, so passing the same
/// solver to several compiles (or reading [`Compiled::solver`] afterwards)
/// reuses verdicts across them — this is how the warm-cache benches and the
/// lint pass avoid re-deciding goals the compile already proved.
///
/// # Errors
///
/// Returns a [`PipelineError`] for parse/type/elaboration failures.
pub fn compile_with_solver(src: &str, solver: &Solver) -> Result<Compiled, PipelineError> {
    let gen_start = Instant::now();
    let program = dml_syntax::parse_program(src).map_err(PipelineError::Parse)?;
    let mut gen = VarGen::new();
    let mut env = base_env(&mut gen);
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => {
                env.add_datatype(dd, &mut gen).map_err(|e| PipelineError::Env(e.message, e.span))?
            }
            sast::Decl::Typeref(tr) => {
                env.add_typeref(tr, &mut gen).map_err(|e| PipelineError::Env(e.message, e.span))?
            }
            sast::Decl::Assert(sigs) => env
                .add_assert(sigs, &check_kind, &mut gen)
                .map_err(|e| PipelineError::Env(e.message, e.span))?,
            _ => {}
        }
    }
    let phase1 =
        infer_program(&program, &env).map_err(|e| PipelineError::Infer(e.message, e.span))?;
    let ElabOutput { obligations, top_level, gen, contexts } =
        elaborate(&program, &env, &phase1, gen)
            .map_err(|e| PipelineError::Elab(e.message, e.span))?;
    let generation_time = gen_start.elapsed();

    // Solve every obligation (in parallel when the options ask for it;
    // results come back in obligation order either way).
    let solve_start = Instant::now();
    let solver = solver.clone();
    let mut gen = gen;
    let outcomes = {
        let constraints: Vec<_> = obligations.iter().map(|ob| &ob.constraint).collect();
        prove_all(&solver, &constraints, &mut gen)
    };
    let mut results = Vec::with_capacity(obligations.len());
    let mut solver_stats = dml_solver::SolverStats::default();
    let mut goals = 0usize;
    for (ob, outcome) in obligations.into_iter().zip(outcomes) {
        goals += outcome.results.len();
        solver_stats.merge(&outcome.stats);
        results.push((ob, first_failure(outcome)));
    }
    let solve_time = solve_start.elapsed();

    // Check elimination (§4): a program that type-checks compiles its
    // proven `sub`/`update`/`nth` sites to the unchecked primitives. If
    // any *non-check* obligation failed, the program does not dependently
    // type-check and nothing is eliminated (fail-safe). Exhaustiveness
    // obligations are warnings (potential match failures), never blockers.
    let non_check_ok = results.iter().all(|(o, r)| {
        o.kind.is_check() || matches!(o.kind, dml_elab::ObKind::Unreachable { .. }) || r.is_valid()
    });
    let mut site_ok: HashMap<Span, bool> = HashMap::new();
    for (o, r) in &results {
        if o.kind.is_check() {
            let e = site_ok.entry(o.site).or_insert(true);
            *e &= r.is_valid();
        }
    }
    let proven_sites: HashSet<Span> = if non_check_ok {
        site_ok.iter().filter(|(_, ok)| **ok).map(|(s, _)| *s).collect()
    } else {
        HashSet::new()
    };
    let fully_verified = non_check_ok
        && results
            .iter()
            .all(|(o, r)| matches!(o.kind, dml_elab::ObKind::Unreachable { .. }) || r.is_valid());

    let stats = CompileStats {
        constraints: results.len(),
        goals,
        generation_time,
        solve_time,
        solver: solver_stats,
    };
    Ok(Compiled {
        program,
        env,
        obligations: results,
        contexts,
        proven_sites,
        fully_verified,
        stats,
        top_level,
        solver,
        gen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verified_program_eliminates_checks() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified());
        assert_eq!(c.proven_sites().len(), 1);
        assert!(c.unproven_sites().is_empty());
        assert!(c.stats().constraints > 0);
    }

    #[test]
    fn unannotated_program_keeps_checks() {
        let c = compile("fun get(v, i) = sub(v, i)").unwrap();
        assert!(!c.fully_verified());
        assert!(c.proven_sites().is_empty());
        assert_eq!(c.unproven_sites().len(), 1);
    }

    #[test]
    fn eliminated_machine_skips_checks() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified(), "{:?}", c.failures().collect::<Vec<_>>());
        let mut m = c.machine(Mode::Eliminated);
        let r = m.call("total", vec![dml_eval::Value::int_array([1, 2, 3, 4])]).unwrap();
        assert_eq!(r.as_int(), Some(10));
        assert_eq!(m.counters.array_checks_eliminated, 4);
        assert_eq!(m.counters.array_checks_executed, 0);
        let mut m = c.machine(Mode::Checked);
        m.call("total", vec![dml_eval::Value::int_array([1, 2, 3, 4])]).unwrap();
        assert_eq!(m.counters.array_checks_executed, 4);
    }

    #[test]
    fn failed_equation_blocks_all_elimination() {
        // The bound obligation on `sub(v, 0)` is provable, but the result
        // type equation is false, so the program does not type-check and
        // nothing may be eliminated.
        let src = r#"
fun broken(v) = sub(v, 0)
where broken <| {n:nat | n > 0} int array(n) -> int(n+1)
"#;
        let c = compile(src).unwrap();
        assert!(!c.fully_verified());
        assert!(c.proven_sites().is_empty(), "type error must block elimination");
    }

    /// The dead-branch lint is genuinely solver-backed: with the guard
    /// `i < n` in scope the `if` condition is entailed and DML001 fires;
    /// dropping that one hypothesis from the annotation flips the verdict.
    #[test]
    fn lints_flag_dead_branch_and_hypothesis_removal_flips_it() {
        let guarded = r#"
fun get(v, i) = if i < length(v) then sub(v, i) else 0
where get <| {n:nat, i:nat | i < n} int array(n) * int(i) -> int
"#;
        let c = compile(guarded).unwrap();
        let lints = c.lints();
        assert!(
            lints.iter().any(|f| f.code == "DML001" && f.message.contains("always true")),
            "{lints:?}"
        );

        let unguarded = r#"
fun get(v, i) = if i < length(v) then sub(v, i) else 0
where get <| {n:nat, i:nat} int array(n) * int(i) -> int
"#;
        let c = compile(unguarded).unwrap();
        let lints = c.lints();
        assert!(
            !lints.iter().any(|f| f.code == "DML001"),
            "without `i < n` the condition is contingent: {lints:?}"
        );
    }

    #[test]
    fn lints_are_quiet_on_a_clean_program() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let c = compile(src).unwrap();
        assert!(c.fully_verified());
        let lints = c.lints();
        assert!(lints.is_empty(), "{lints:?}");
    }

    /// `first_failure` is total: an outcome with no goals (or all-valid
    /// goals) collapses to `Valid` instead of panicking, and the *first*
    /// failure wins when several goals fail.
    #[test]
    fn first_failure_is_total() {
        use dml_solver::{NotProvenReason, SolverStats};
        let empty = Outcome { results: vec![], stats: SolverStats::default() };
        assert_eq!(first_failure(empty), GoalResult::Valid);

        let goal = dml_solver::Goal {
            ctx: vec![],
            hyps: vec![],
            concl: dml_index::Prop::True,
            residual_existential: false,
        };
        let all_valid = Outcome {
            results: vec![(goal.clone(), GoalResult::Valid)],
            stats: SolverStats::default(),
        };
        assert_eq!(first_failure(all_valid), GoalResult::Valid);

        let mixed = Outcome {
            results: vec![
                (goal.clone(), GoalResult::Valid),
                (goal.clone(), GoalResult::NotProven(NotProvenReason::Blowup)),
                (goal, GoalResult::NotProven(NotProvenReason::PossiblyFalsifiable)),
            ],
            stats: SolverStats::default(),
        };
        assert_eq!(first_failure(mixed), GoalResult::NotProven(NotProvenReason::Blowup));
    }

    /// Compiling twice against one solver shares the verdict cache: the
    /// second compile answers every cacheable goal from it, with identical
    /// verdicts.
    #[test]
    fn compile_with_solver_shares_cache_across_compiles() {
        let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
        let solver = Solver::new(SolverOptions::default());
        let cold = compile_with_solver(src, &solver).unwrap();
        assert!(cold.stats().solver.cache_misses > 0);
        let warm = compile_with_solver(src, &solver).unwrap();
        assert_eq!(warm.stats().solver.cache_misses, 0, "second compile is all hits");
        assert!(warm.stats().solver.cache_hits > 0);
        assert!(warm.fully_verified());
        assert_eq!(cold.proven_sites(), warm.proven_sites());
    }

    /// Worker count and cache do not change verdicts or proven sites.
    #[test]
    fn parallel_and_cache_configs_agree() {
        let src = r#"
fun total(v) = let
  fun loop(i, n, sum) =
    if i = n then sum else loop(i+1, n, sum + sub(v, i))
  where loop <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) * int -> int
in
  loop(0, length v, 0)
end
where total <| {n:nat} int array(n) -> int
"#;
        let base = compile_with_options(
            src,
            SolverOptions { workers: Some(1), ..SolverOptions::default() },
        )
        .unwrap();
        for opts in [
            SolverOptions { workers: Some(4), ..SolverOptions::default() },
            SolverOptions { workers: Some(1), cache: false, ..SolverOptions::default() },
            SolverOptions { workers: Some(4), cache: false, ..SolverOptions::default() },
        ] {
            let c = compile_with_options(src, opts).unwrap();
            let verdicts =
                |c: &Compiled| c.obligations().iter().map(|(_, r)| r.clone()).collect::<Vec<_>>();
            assert_eq!(verdicts(&base), verdicts(&c), "{opts:?}");
            assert_eq!(base.proven_sites(), c.proven_sites(), "{opts:?}");
            assert_eq!(base.stats().goals, c.stats().goals, "{opts:?}");
        }
    }

    #[test]
    fn parse_errors_reported() {
        assert!(matches!(compile("fun = 3"), Err(PipelineError::Parse(_))));
    }

    #[test]
    fn infer_errors_reported() {
        assert!(matches!(compile("fun f(x) = x + true"), Err(PipelineError::Infer(_, _))));
    }
}
