//! Proof-trace rendering: `dmlc explain` and `dmlc check --trace-out`.
//!
//! When a session is compiled with [`crate::Compiler::trace`], every proof
//! goal carries a [`dml_obs::GoalTrace`] — the ordered event story of how
//! the solver decided it (canonicalization, DNF split, each Fourier–Motzkin
//! elimination round, fuel charges, witness search, verdict). This module
//! turns those buffers into the two user-facing artifacts:
//!
//! * [`render_explain`] — a deterministic, human-readable per-goal proof
//!   trace. Configuration-dependent events (cache probes) are skipped and
//!   wall times are never shown, so the output is byte-identical across
//!   worker counts and cache settings.
//! * [`chrome_trace`] — a Chrome trace-event-format timeline (pipeline
//!   phases on one row, per-goal solver spans on another) carrying per-goal
//!   wall time, fuel spent, the full event stream, and cache shard
//!   occupancy. Wall-clock numbers vary run to run by nature; the *shape*
//!   (event names, tags, metadata keys) is the stable contract documented
//!   in `docs/ARCHITECTURE.md`.

use crate::pipeline::Compiled;
use dml_elab::Obligation;
use dml_index::Verdict;
use dml_obs::json::{obj, Json};
use dml_obs::{ChromeTrace, GoalTrace};
use dml_solver::Goal;
use std::fmt::Write as _;

/// The recorded proof trace of one obligation: the obligation itself plus
/// one [`GoalRecord`] per solver goal it split into, in generation order.
#[derive(Debug, Clone)]
pub struct ObligationTrace {
    /// The elaboration-generated obligation.
    pub obligation: Obligation,
    /// Per-goal records, index-aligned with the solver's goal order.
    pub goals: Vec<GoalRecord>,
}

/// One solver goal with its verdict and event trace.
#[derive(Debug, Clone)]
pub struct GoalRecord {
    /// The goal sequent `∀ctx. hyps ⊃ concl`.
    pub goal: Goal,
    /// The verdict the solver reached.
    pub verdict: Verdict,
    /// The ordered event buffer recorded while deciding the goal.
    pub trace: GoalTrace,
}

/// Renders the per-obligation proof traces of a traced compile.
///
/// Goals are numbered globally (1-based, generation order); `goal_filter`
/// restricts the output to a single goal. The rendering is deterministic:
/// cache-probe events are skipped and wall times never appear, so the same
/// program produces byte-identical output for every `workers`/`cache`
/// configuration.
pub fn render_explain(compiled: &Compiled, src: &str, goal_filter: Option<usize>) -> String {
    let traces = compiled.traces();
    let mut out = String::new();
    if traces.is_empty() {
        out.push_str("no proof trace recorded (compile with tracing enabled)\n");
        return out;
    }
    let total: usize = traces.iter().map(|t| t.goals.len()).sum();
    if let Some(want) = goal_filter {
        if want == 0 || want > total {
            let _ = writeln!(out, "goal {want} not found ({total} goal(s) recorded)");
            return out;
        }
    } else {
        let _ = writeln!(out, "proof trace: {} obligation(s), {total} goal(s)", traces.len());
    }
    let mut n = 0usize;
    for ot in traces {
        for rec in &ot.goals {
            n += 1;
            if goal_filter.is_some_and(|want| want != n) {
                continue;
            }
            let _ = writeln!(out);
            let _ = writeln!(out, "goal {n} of {total}: {}", ot.obligation.trace_event(src));
            if !rec.goal.ctx.is_empty() {
                let ctx: Vec<String> =
                    rec.goal.ctx.iter().map(|(v, s)| format!("{v} : {s}")).collect();
                let _ = writeln!(out, "  forall {}", ctx.join(", "));
            }
            for h in &rec.goal.hyps {
                let _ = writeln!(out, "  hyp    {h}");
            }
            let _ = writeln!(out, "  |-     {}", rec.goal.concl);
            for ev in rec.trace.events.iter().filter(|e| !e.is_config_dependent()) {
                let _ = writeln!(out, "    {ev}");
            }
        }
    }
    if goal_filter.is_none() {
        let residual = compiled.residual_checks();
        if !residual.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "residual runtime checks:");
            for rc in &residual {
                let _ = writeln!(out, "  {}", rc.trace_event(src));
            }
        }
    }
    out
}

/// Builds the Chrome trace-event timeline of a traced compile.
///
/// Layout: row 0 (`pipeline`) carries the generation and solve phase spans
/// plus obligation/residual instants; row 1 (`goals`) lays the per-goal
/// solver spans out *sequentially* from their measured durations — a
/// synthetic timeline reflecting cost per goal, not concurrent scheduling.
/// `otherData` carries program metadata, total fuel, and per-shard verdict
/// cache occupancy.
pub fn chrome_trace(compiled: &Compiled, src: &str, program: &str) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.name_thread(0, "pipeline");
    t.name_thread(1, "goals");
    let stats = compiled.stats();
    let gen_us = stats.generation_time.as_micros() as u64;
    let solve_us = stats.solve_time.as_micros() as u64;
    t.span(
        "generation",
        "pipeline",
        0,
        0,
        gen_us,
        obj(vec![("constraints", Json::Int(stats.constraints as i64))]),
    );
    t.span(
        "solve",
        "pipeline",
        0,
        gen_us,
        solve_us,
        obj(vec![("goals", Json::Int(stats.goals as i64))]),
    );
    let mut ts = gen_us;
    let mut n = 0usize;
    let mut fuel_total = 0u64;
    for ot in compiled.traces() {
        t.instant(
            &format!("obligation: {}", ot.obligation.kind),
            "elab",
            0,
            gen_us,
            ot.obligation.trace_event(src).args(),
        );
        for rec in &ot.goals {
            n += 1;
            fuel_total += rec.trace.fuel_spent;
            let dur = (rec.trace.wall_ns / 1_000).max(1);
            let events: Vec<Json> = rec
                .trace
                .events
                .iter()
                .map(|e| obj(vec![("tag", Json::Str(e.tag().into())), ("args", e.args())]))
                .collect();
            t.span(
                &format!("goal {n}"),
                "solver",
                1,
                ts,
                dur,
                obj(vec![
                    ("verdict", Json::Str(rec.verdict.to_string())),
                    ("fuel", Json::Int(rec.trace.fuel_spent as i64)),
                    ("wall_ns", Json::Int(rec.trace.wall_ns as i64)),
                    ("events", Json::Array(events)),
                ]),
            );
            ts += dur;
        }
    }
    for rc in compiled.residual_checks() {
        t.instant(
            &format!("residual: {}", rc.prim),
            "residual",
            0,
            gen_us + solve_us,
            rc.trace_event(src).args(),
        );
    }
    let shards: Vec<Json> =
        compiled.solver().cache().shard_sizes().iter().map(|&s| Json::Int(s as i64)).collect();
    t.meta("program", Json::Str(program.into()));
    t.meta("constraints", Json::Int(stats.constraints as i64));
    t.meta("goals", Json::Int(stats.goals as i64));
    t.meta("fuelSpent", Json::Int(fuel_total as i64));
    t.meta("cacheHits", Json::Int(stats.solver.cache_hits as i64));
    t.meta("cacheMisses", Json::Int(stats.solver.cache_misses as i64));
    t.meta("cacheShardSizes", Json::Array(shards));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;

    const VERIFIED: &str = "\
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
";

    #[test]
    fn explain_renders_goals_and_verdicts() {
        let c = Compiler::new().trace(true).compile(VERIFIED).unwrap();
        let text = render_explain(&c, VERIFIED, None);
        assert!(text.contains("proof trace:"), "{text}");
        assert!(text.contains("goal 1 of"), "{text}");
        assert!(text.contains("verdict: proven"), "{text}");
        assert!(!text.contains("cache "), "cache events are config-dependent: {text}");
    }

    #[test]
    fn explain_goal_filter_selects_one_goal() {
        let c = Compiler::new().trace(true).compile(VERIFIED).unwrap();
        let all = render_explain(&c, VERIFIED, None);
        let one = render_explain(&c, VERIFIED, Some(1));
        assert!(one.contains("goal 1 of"), "{one}");
        assert!(one.len() < all.len(), "filtered output is a subset");
        let missing = render_explain(&c, VERIFIED, Some(999));
        assert!(missing.contains("not found"), "{missing}");
    }

    #[test]
    fn explain_without_tracing_degrades_gracefully() {
        let c = Compiler::new().compile(VERIFIED).unwrap();
        let text = render_explain(&c, VERIFIED, None);
        assert!(text.contains("no proof trace recorded"), "{text}");
    }

    #[test]
    fn explain_shows_unknown_reason_and_residual_for_nonlinear_goals() {
        let src = "fun get(m, i, j) = sub(m, i * j)\n\
                   where get <| {n:nat, i:nat, j:nat} int array(n) * int(i) * int(j) -> int\n";
        let c = Compiler::new().trace(true).compile(src).unwrap();
        let text = render_explain(&c, src, None);
        assert!(text.contains("non-linear"), "{text}");
        assert!(text.contains("fuel:"), "{text}");
        assert!(text.contains("residual runtime checks:"), "{text}");
    }

    #[test]
    fn chrome_trace_has_phases_goals_and_metadata() {
        let c = Compiler::new().trace(true).compile(VERIFIED).unwrap();
        let rendered = chrome_trace(&c, VERIFIED, "first").render();
        assert!(rendered.contains(r#""name":"generation""#), "{rendered}");
        assert!(rendered.contains(r#""name":"solve""#), "{rendered}");
        assert!(rendered.contains(r#""name":"goal 1""#), "{rendered}");
        assert!(rendered.contains(r#""cacheShardSizes":["#), "{rendered}");
        assert!(rendered.contains(r#""schemaVersion":1"#), "{rendered}");
        assert!(rendered.contains(r#""program":"first""#), "{rendered}");
    }
}
