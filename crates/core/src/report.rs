//! The canonical `check` report, shared by one-shot `dmlc check` and the
//! `dmlc serve` daemon.
//!
//! Both paths render through [`check_report`], so their verdict lines are
//! byte-identical by construction — the ISSUE-8 determinism contract. The
//! first two lines (timing, cache counters) are the only run-dependent
//! content; consumers that diff reports strip lines starting with the
//! [`VOLATILE_PREFIXES`].

use crate::pipeline::Compiled;
use dml_elab::ObKind;
use std::fmt::Write as _;

/// Line prefixes whose content varies run to run (wall-clock timing,
/// cache hit/miss counters). Everything else in a check report is
/// deterministic per source and solver budget.
pub const VOLATILE_PREFIXES: [&str; 2] = ["solver cache:", "solve timing:"];

/// A rendered check report plus the exit status it implies.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The full human-readable report, one trailing newline included.
    pub text: String,
    /// `false` exactly when the program is ill-typed (a failed non-check
    /// obligation) — residual runtime checks alone keep this `true` in
    /// permissive mode.
    pub ok: bool,
}

/// Renders the standard `check` report for a compiled program: timing and
/// cache lines (volatile), proven/unproven site counts, exhaustiveness
/// warnings, and either the fully-verified line or the residual-check
/// listing (deterministic).
pub fn check_report(compiled: &Compiled, src: &str) -> CheckReport {
    let stats = compiled.stats();
    let mut text = String::new();
    let _ = writeln!(text, "{} constraints generated", stats.constraints);
    // Goals and reuse counts are volatile alongside the wall times: an
    // incremental daemon recompile solves fewer goals (reusing the rest)
    // than the byte-identical one-shot compile of the same source.
    let _ = writeln!(
        text,
        "solve timing: {} goals solved ({} obligations reused), \
         {:.1} ms generation, {:.1} ms solving",
        stats.goals,
        stats.obligations_reused,
        stats.generation_time.as_secs_f64() * 1e3,
        stats.solve_time.as_secs_f64() * 1e3,
    );
    let _ = writeln!(
        text,
        "solver cache: {} hits, {} misses{}",
        stats.solver.cache_hits,
        stats.solver.cache_misses,
        if stats.solver.cache_disk_hits > 0 {
            format!(" ({} from disk)", stats.solver.cache_disk_hits)
        } else {
            String::new()
        },
    );
    let _ = writeln!(
        text,
        "proven check sites: {}; unproven: {}",
        compiled.proven_sites().len(),
        compiled.unproven_sites().len()
    );
    for (site, con) in compiled.match_warnings() {
        let _ = writeln!(
            text,
            "warning: match at {site} may not be exhaustive (constructor `{con}` \
             not provably impossible)"
        );
    }
    if compiled.fully_verified() {
        text.push_str("fully verified: all run-time checks at proven sites are eliminated\n");
        return CheckReport { text, ok: true };
    }
    // Not fully verified. In permissive mode, unproven *check* obligations
    // degrade gracefully to residual runtime checks; only failed non-check
    // obligations (type equations, guards) make the program ill-typed.
    let ill_typed = compiled
        .failures()
        .any(|(o, _)| !o.kind.is_check() && !matches!(o.kind, ObKind::Unreachable { .. }));
    for rc in compiled.residual_checks() {
        let _ = writeln!(text, "{rc}");
    }
    if ill_typed {
        text.push_str("NOT fully verified; unproven obligations:\n\n");
        text.push_str(&compiled.explain_failures(src));
        CheckReport { text, ok: false }
    } else {
        let _ = writeln!(
            text,
            "{} residual runtime check(s) remain (permissive mode; \
             use --strict to make this an error)",
            compiled.residual_checks().len()
        );
        CheckReport { text, ok: true }
    }
}

/// Strips the volatile (timing/cache) lines from a check report, leaving
/// the deterministic body that can be byte-compared across runs, worker
/// counts, cache states, and one-shot vs daemon paths. Used by the CI
/// daemon smoke test and available to any consumer diffing reports.
pub fn stable_body(report: &str) -> String {
    report
        .lines()
        .filter(|l| !VOLATILE_PREFIXES.iter().any(|p| l.starts_with(p)))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;

    #[test]
    fn verified_report_matches_legacy_shape() {
        let src = "fun first(v) = sub(v, 0)\n\
                   where first <| {n:nat | n > 0} int array(n) -> int\n";
        let compiled = Compiler::new().compile(src).unwrap();
        let r = check_report(&compiled, src);
        assert!(r.ok);
        assert!(r.text.contains("constraints generated"), "{}", r.text);
        assert!(r.text.contains("proven check sites: 1; unproven: 0"), "{}", r.text);
        assert!(r.text.ends_with("eliminated\n"), "{}", r.text);
    }

    #[test]
    fn residual_report_lists_checks_and_stays_ok() {
        let src = "fun get(v, i) = sub(v, i)\n";
        let compiled = Compiler::new().compile(src).unwrap();
        let r = check_report(&compiled, src);
        assert!(r.ok, "residual checks are not errors in permissive mode");
        assert!(r.text.contains("residual runtime check(s) remain"), "{}", r.text);
    }

    #[test]
    fn stable_body_drops_only_volatile_lines() {
        let src = "fun first(v) = sub(v, 0)\n\
                   where first <| {n:nat | n > 0} int array(n) -> int\n";
        let compiled = Compiler::new().compile(src).unwrap();
        let r = check_report(&compiled, src);
        let body = stable_body(&r.text);
        assert!(!body.contains("solver cache:"));
        assert!(!body.contains("solve timing:"));
        assert!(body.contains("proven check sites:"));
        // The same program compiled fresh yields the same stable body.
        let again = Compiler::new().compile(src).unwrap();
        assert_eq!(body, stable_body(&check_report(&again, src).text));
    }
}
