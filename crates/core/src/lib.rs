//! `dml` — a Rust reproduction of *Eliminating Array Bound Checking
//! Through Dependent Types* (Xi & Pfenning, PLDI 1998).
//!
//! The crate ties the pipeline together:
//!
//! ```text
//! source ─parse→ AST ─phase 1 (ML inference)→ ─phase 2 (dependent
//! elaboration)→ obligations ─solve (Fourier–Motzkin + tightening)→
//! proven sites ─compile→ interpreter with checks eliminated
//! ```
//!
//! # Quick start
//!
//! ```
//! use dml::{Compiler, Mode};
//! use dml_eval::Value;
//!
//! let src = r#"
//! fun first(v) = sub(v, 0)
//! where first <| {n:nat | n > 0} int array(n) -> int
//! "#;
//! let compiled = Compiler::new().compile(src).expect("pipeline runs");
//! assert!(compiled.fully_verified());
//! assert_eq!(compiled.proven_sites().len(), 1);
//!
//! let mut machine = compiled.machine(Mode::Eliminated);
//! let v = Value::int_array([7, 8, 9]);
//! let r = machine.call("first", vec![v]).expect("runs");
//! assert_eq!(r.as_int(), Some(7));
//! assert_eq!(machine.counters.array_checks_eliminated, 1);
//! ```
//!
//! The [`Compiler`] builder also exposes solver budgets for graceful
//! degradation — `fuel`, `deadline` — and a `strict` switch that turns
//! unproven obligations into errors; see [`pipeline::Compiler`].
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's §4 evaluation; see `EXPERIMENTS.md` at the repository root for
//! the comparison against the published numbers.

#![deny(missing_docs)]

pub mod batch;
pub mod experiments;
pub mod pipeline;
pub mod report;
pub mod serve;
pub mod table;
pub mod trace;

pub use batch::{check_batch, BatchEntry, BatchFileResult, BatchOutcome, BatchSummary};
pub use dml_analysis::{lint_by_code, render, Finding, Fix, InferSuggestion, Lint, LINTS};
pub use dml_elab::{residual_checks, ObKind, Obligation, ResidualCheck};
pub use dml_eval::{CheckConfig, Counters, Machine, Mode, Value};
pub use dml_index::{UnknownReason, Verdict};
pub use dml_infer::{infer_refinements, strip_annotations, InferOutcome, InferReport};
pub use dml_solver::{Solver, SolverOptions};
pub use dml_syntax::Severity;
pub use pipeline::clear_gen_memo;
pub use pipeline::{CompileStats, Compiled, Compiler, PipelineError};
pub use report::{check_report, stable_body, CheckReport};
pub use serve::{CheckOutcome, Session};
pub use trace::{chrome_trace, render_explain, GoalRecord, ObligationTrace};
