//! The persistent check service behind `dmlc serve`.
//!
//! One [`Session`] wraps one reusable [`crate::Compiler`] handle and
//! serves many requests, so the canonical goal cache, the gen-phase memo,
//! and the solver worker pool warm up once and stay warm. The service
//! speaks a versioned, line-delimited JSON protocol ([`protocol`],
//! documented in `docs/PROTOCOL.md`) over stdio ([`server::serve_stdio`])
//! or a Unix socket ([`server::serve_unix`]); per-file declaration
//! fingerprints (the private `incremental` module) let re-checks of
//! edited files re-solve
//! only the declarations that changed.
//!
//! Determinism contract: verdict output is byte-identical between one-shot
//! `dmlc check` and the daemon path — both render through
//! [`crate::report::check_report`], and the only run-dependent report
//! lines are the timing/cache lines stripped by
//! [`crate::report::stable_body`].

mod incremental;
pub mod protocol;
pub mod server;
pub mod session;

pub use protocol::{ErrorCode, Request, Value, SCHEMA_VERSION};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{serve_connection, serve_stdio};
pub use session::{CheckOutcome, Session, SessionStats};
