//! Declaration-level incremental re-checking for the serve session.
//!
//! On every `check` of a file the session fingerprints the program:
//!
//! * a **signature hash** over everything that can leak *across*
//!   declarations — the full text of every non-`fun` declaration and of
//!   every `fun` lacking a `where` annotation (their inferred types are
//!   visible to callers), plus the annotations, names, and quantifier
//!   prefixes of annotated `fun`s (the only part of those callers see);
//! * a per-declaration **text hash** over the declaration's own source
//!   slice.
//!
//! A re-check whose signature hash matches the previous one re-solves only
//! the declarations whose text hash changed: obligations are bucketed to
//! declarations by source position, and unchanged buckets take the
//! previous compile's verdicts positionally (see
//! [`crate::pipeline`]'s `ReusePlan`). This is sound because generation is
//! deterministic — identical declaration text under an identical
//! environment signature re-elaborates to the same constraints up to a
//! shift of fresh-variable ids, i.e. an alpha-renaming, and verdicts are
//! alpha-invariant (the same invariance the canonical verdict cache and
//! the fuzz suite's metamorphic properties rest on). Everything else —
//! signature change, decl count change, per-bucket obligation count
//! mismatch — falls back to a full (cache-assisted) solve.

use crate::pipeline::ReusePlan;
use dml_solver::Verdict;
use dml_syntax::ast::{Decl, Program};
use std::hash::Hasher;

/// What the session remembers about the last successful check of a file.
#[derive(Debug, Clone)]
pub(crate) struct FileState {
    sig_hash: u64,
    decl_hashes: Vec<u64>,
    /// Collapsed verdicts bucketed per declaration, obligation order.
    verdict_buckets: Vec<Vec<Verdict>>,
}

/// The position-derived fingerprint of one parsed program.
#[derive(Debug, Clone)]
pub(crate) struct Fingerprint {
    pub decl_starts: Vec<usize>,
    pub decl_hashes: Vec<u64>,
    pub sig_hash: u64,
}

/// Fingerprints a parsed program against its source text.
pub(crate) fn fingerprint(src: &str, program: &Program) -> Fingerprint {
    let decl_starts: Vec<usize> = program.decls.iter().map(decl_start).collect();
    let bounds = |i: usize| {
        let start = decl_starts[i].min(src.len());
        let end = decl_starts.get(i + 1).copied().unwrap_or(src.len()).min(src.len());
        &src[start..end.max(start)]
    };
    let decl_hashes: Vec<u64> =
        (0..program.decls.len()).map(|i| fnv(bounds(i).trim().as_bytes())).collect();

    let mut sig = Fnv::new();
    sig.write_usize(program.decls.len());
    for (i, d) in program.decls.iter().enumerate() {
        match d {
            Decl::Fun(fs) if fs.iter().all(|f| f.anno.is_some()) => {
                // Only the quantifier prefix and the annotated scheme are
                // visible to other declarations; clause bodies are not.
                for f in fs {
                    sig.write(f.name.name.as_bytes());
                    for tv in &f.tyvars {
                        sig.write(tv.name.as_bytes());
                    }
                    for q in &f.index_params {
                        sig.write(q.var.name.as_bytes());
                        sig.write(dml_syntax::pretty::sort(&q.sort).as_bytes());
                        if let Some(g) = &q.guard {
                            sig.write(dml_syntax::pretty::iprop(g).as_bytes());
                        }
                    }
                    let anno = f.anno.as_ref().expect("all annotated in this arm");
                    sig.write(dml_syntax::pretty::dtype(anno).as_bytes());
                }
            }
            // Unannotated functions, vals, datatypes, typerefs, asserts,
            // exceptions: their full content leaks (inferred schemes,
            // constructors, refinements), so the whole slice signs.
            _ => sig.write(bounds(i).trim().as_bytes()),
        }
        sig.write_u8(0xfe); // declaration separator
    }
    Fingerprint { decl_starts, decl_hashes, sig_hash: sig.finish() }
}

/// Builds the verdict-reuse plan for recompiling a file whose previous
/// state is `prior`, or `None` when nothing can be reused (signature or
/// decl-count change — a full recompile).
pub(crate) fn plan(current: &Fingerprint, prior: &FileState) -> Option<ReusePlan> {
    if prior.sig_hash != current.sig_hash || prior.decl_hashes.len() != current.decl_hashes.len() {
        return None;
    }
    let reuse: Vec<Option<Vec<Verdict>>> = current
        .decl_hashes
        .iter()
        .zip(&prior.decl_hashes)
        .zip(&prior.verdict_buckets)
        .map(|((new, old), bucket)| (new == old).then(|| bucket.clone()))
        .collect();
    if reuse.iter().all(Option::is_none) {
        return None; // every decl changed — nothing to reuse
    }
    Some(ReusePlan { decl_starts: current.decl_starts.clone(), prior: reuse })
}

/// Captures the state to remember after a successful check: the compile's
/// collapsed verdicts bucketed to the fingerprint's declarations.
pub(crate) fn remember(
    current: &Fingerprint,
    obligations: &[(dml_elab::Obligation, Verdict)],
) -> FileState {
    let mut verdict_buckets: Vec<Vec<Verdict>> = vec![Vec::new(); current.decl_starts.len()];
    for (ob, verdict) in obligations {
        let d = crate::pipeline::bucket_of(&current.decl_starts, ob.site.start as usize);
        if let Some(b) = verdict_buckets.get_mut(d) {
            b.push(verdict.clone());
        }
    }
    FileState {
        sig_hash: current.sig_hash,
        decl_hashes: current.decl_hashes.clone(),
        verdict_buckets,
    }
}

/// The earliest source position at which one of the declaration's
/// obligations can be sited. `Decl::span()` starts at the declaration's
/// *name*, but a `fun{n:nat} f ...` quantifier or `fun('a) f` type
/// variable precedes the name — sites are bucketed by this position, so it
/// must not overshoot any of them.
fn decl_start(d: &Decl) -> usize {
    let base = d.span().start;
    let start = match d {
        Decl::Fun(fs) => fs
            .iter()
            .flat_map(|f| {
                f.tyvars
                    .iter()
                    .map(|t| t.span.start)
                    .chain(f.index_params.iter().map(|q| q.var.span.start))
                    .chain([f.name.span.start])
            })
            .min()
            .unwrap_or(base),
        Decl::Val(v) => v.span.start,
        _ => base,
    };
    start as usize
}

/// FNV-1a, matching the stability rationale of
/// [`dml_solver::disk::stable_goal_hash`]: these hashes live only in
/// memory, but using one well-understood hash everywhere keeps the
/// incremental layer independent of std's unstable `DefaultHasher`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        dml_syntax::parse_program(src).expect("parses")
    }

    const TWO_FUNS: &str = "\
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int

fun second(v) = sub(v, 1)
where second <| {n:nat | n > 1} int array(n) -> int
";

    #[test]
    fn body_edit_changes_one_decl_hash_and_keeps_sig() {
        let edited = TWO_FUNS.replace("sub(v, 1)", "sub(v, 0)");
        let a = fingerprint(TWO_FUNS, &parse(TWO_FUNS));
        let b = fingerprint(&edited, &parse(&edited));
        assert_eq!(a.sig_hash, b.sig_hash, "annotated bodies do not sign");
        assert_eq!(a.decl_hashes[0], b.decl_hashes[0]);
        assert_ne!(a.decl_hashes[1], b.decl_hashes[1]);
    }

    #[test]
    fn annotation_edit_changes_the_signature() {
        let edited = TWO_FUNS.replace("n > 1", "n > 2");
        let a = fingerprint(TWO_FUNS, &parse(TWO_FUNS));
        let b = fingerprint(&edited, &parse(&edited));
        assert_ne!(a.sig_hash, b.sig_hash, "annotations are cross-decl visible");
    }

    #[test]
    fn unannotated_fun_body_signs() {
        let src = "fun helper(x) = x + 1\n\nfun use_it(y) = helper(y)\n";
        let edited = src.replace("x + 1", "x + 2");
        let a = fingerprint(src, &parse(src));
        let b = fingerprint(&edited, &parse(&edited));
        assert_ne!(a.sig_hash, b.sig_hash, "inferred types leak to callers");
    }

    #[test]
    fn whitespace_only_shift_keeps_decl_hashes() {
        let shifted = format!("\n\n{TWO_FUNS}");
        let a = fingerprint(TWO_FUNS, &parse(TWO_FUNS));
        let b = fingerprint(&shifted, &parse(&shifted));
        assert_eq!(a.sig_hash, b.sig_hash);
        assert_eq!(a.decl_hashes, b.decl_hashes, "trimmed slices are offset-immune");
        assert_ne!(a.decl_starts, b.decl_starts);
    }

    #[test]
    fn plan_reuses_only_unchanged_decls() {
        let edited = TWO_FUNS.replace("sub(v, 1)", "sub(v, 0)");
        let a = fingerprint(TWO_FUNS, &parse(TWO_FUNS));
        let b = fingerprint(&edited, &parse(&edited));
        let state = FileState {
            sig_hash: a.sig_hash,
            decl_hashes: a.decl_hashes.clone(),
            verdict_buckets: vec![vec![Verdict::Proven; 2], vec![Verdict::Proven; 2]],
        };
        let plan = plan(&b, &state).expect("sig unchanged");
        assert!(plan.prior[0].is_some(), "decl 0 untouched");
        assert!(plan.prior[1].is_none(), "decl 1 edited");
    }
}
