//! The long-lived check session behind `dmlc serve`.
//!
//! A [`Session`] owns one reusable [`Compiler`] handle — one canonical
//! goal cache (optionally disk-backed), one gen-phase memo, one worker
//! pool — plus per-file incremental state and per-request statistics. The
//! transport layer ([`crate::serve::server`]) is a thin loop over it, and
//! it can just as well be embedded in-process (tests and benches do).

use super::incremental::{self, FileState};
use crate::pipeline::{Compiled, Compiler, PipelineError};
use crate::report::{check_report, CheckReport};
use dml_obs::json::{obj, Json};
use dml_obs::TimingHistogram;
use std::collections::HashMap;
use std::time::Instant;

/// Everything a `check` request reports back.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The rendered report, byte-identical in its stable body to one-shot
    /// `dmlc check` of the same source (see [`crate::report`]).
    pub report: CheckReport,
    /// Whether the program fully verified.
    pub fully_verified: bool,
    /// Whether any verdicts were reused from the file's previous check.
    pub incremental: bool,
    /// The compile's statistics (including `obligations_reused` and the
    /// solver cache counters for this request alone).
    pub stats: crate::pipeline::CompileStats,
}

/// Per-session counters, surfaced by the `stats` request.
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Requests handled, by method name.
    pub requests: HashMap<&'static str, u64>,
    /// Wall-clock latency of `check` requests.
    pub check_latency: TimingHistogram,
}

/// A persistent check service: one configured compiler session serving
/// many requests.
#[derive(Debug)]
pub struct Session {
    compiler: Compiler,
    files: HashMap<String, FileState>,
    stats: SessionStats,
    started: Instant,
}

impl Session {
    /// Wraps a configured compiler handle. The handle's solver session
    /// (and its caches) live as long as the `Session`. The solver worker
    /// pool is prewarmed eagerly so the first request doesn't pay the
    /// thread-spawn cost.
    pub fn new(compiler: Compiler) -> Session {
        dml_solver::pool::prewarm();
        Session {
            compiler,
            files: HashMap::new(),
            stats: SessionStats::default(),
            started: Instant::now(),
        }
    }

    /// The underlying compiler handle.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Checks `src`. With a `path`, the session remembers the file's
    /// declaration fingerprint and on later checks re-solves only changed
    /// declarations (see `serve/incremental.rs`); verdicts are identical
    /// to a from-scratch check either way.
    ///
    /// # Errors
    ///
    /// The rendered [`PipelineError`] — the same text one-shot `dmlc`
    /// prints — for parse/type/elaboration failures (and, under a strict
    /// compiler, unproven obligations). A failed check clears the file's
    /// incremental state.
    pub fn check(&mut self, path: Option<&str>, src: &str) -> Result<CheckOutcome, String> {
        let t0 = Instant::now();
        *self.stats.requests.entry("check").or_insert(0) += 1;

        let fingerprint = match dml_syntax::parse_program(src) {
            Ok(program) => Some(incremental::fingerprint(src, &program)),
            // Let the pipeline produce the canonical parse error below.
            Err(_) => None,
        };
        let plan = match (path, &fingerprint) {
            (Some(p), Some(fp)) => self.files.get(p).and_then(|prior| incremental::plan(fp, prior)),
            _ => None,
        };
        let compiled = match self.compiler.compile_incremental(src, plan.as_ref()) {
            Ok(c) => c,
            Err(e) => {
                if let Some(p) = path {
                    self.files.remove(p);
                }
                return Err(e.to_string());
            }
        };
        if let (Some(p), Some(fp)) = (path, &fingerprint) {
            self.files.insert(p.to_string(), incremental::remember(fp, compiled.obligations()));
        }
        let outcome = CheckOutcome {
            report: check_report(&compiled, src),
            fully_verified: compiled.fully_verified(),
            incremental: compiled.stats().obligations_reused > 0,
            stats: compiled.stats().clone(),
        };
        self.stats.check_latency.record(t0.elapsed());
        Ok(outcome)
    }

    /// Renders proof traces for `src` — byte-identical to one-shot
    /// `dmlc explain` (trace mode re-decides every goal, so neither the
    /// shared cache nor incremental state can perturb the output).
    ///
    /// # Errors
    ///
    /// The rendered compile error, or a goal-range message mirroring the
    /// CLI's when `goal` is out of range.
    pub fn explain(&mut self, src: &str, goal: Option<usize>) -> Result<String, String> {
        *self.stats.requests.entry("explain").or_insert(0) += 1;
        let compiled = self.compiler.clone().trace(true).compile(src).map_err(|e| e.to_string())?;
        if let Some(n) = goal {
            let total = compiled.goal_count();
            if n == 0 || n > total {
                return Err(match total {
                    0 => format!("goal {n} does not exist: the program has no solver goals"),
                    1 => format!("goal {n} does not exist: the only valid goal is 1"),
                    _ => format!("goal {n} does not exist: valid goals are 1..={total}"),
                });
            }
        }
        Ok(crate::trace::render_explain(&compiled, src, goal))
    }

    /// Runs annotation inference on `src`, returning the human report (or
    /// the JSON report when `json` is set) exactly as one-shot
    /// `dmlc infer` prints it.
    ///
    /// # Errors
    ///
    /// The rendered compile error.
    pub fn infer(&mut self, src: &str, json: bool) -> Result<String, String> {
        *self.stats.requests.entry("infer").or_insert(0) += 1;
        let compiled = self.compiler.clone().infer(true).compile(src).map_err(|e| e.to_string())?;
        let report = compiled
            .infer_report()
            .ok_or_else(|| "inference produced no report (internal error)".to_string())?;
        Ok(if json { report.render_json(src) + "\n" } else { report.render_human(src) })
    }

    /// The `stats` response payload: request counters, check latency, the
    /// goal cache's cumulative counters, and disk-tier state.
    pub fn stats_json(&self) -> Json {
        let cache = self.compiler.solver().cache();
        let mut methods: Vec<(&str, Json)> =
            self.stats.requests.iter().map(|(m, n)| (*m, Json::Int(*n as i64))).collect();
        methods.sort_by_key(|(m, _)| *m);
        let lat = &self.stats.check_latency;
        obj(vec![
            ("uptimeMs", Json::Num(self.started.elapsed().as_secs_f64() * 1e3)),
            ("requests", obj(methods)),
            ("checkLatency", obj(vec![("count", Json::Int(lat.count() as i64))])),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Int(cache.hits() as i64)),
                    ("misses", Json::Int(cache.misses() as i64)),
                    ("entries", Json::Int(cache.len() as i64)),
                    ("diskAttached", Json::Bool(cache.has_disk())),
                    ("diskHits", Json::Int(cache.disk_hits() as i64)),
                    ("diskLoaded", Json::Int(cache.disk_loaded() as i64)),
                ]),
            ),
            ("filesTracked", Json::Int(self.files.len() as i64)),
        ])
    }

    /// Writes pending verdicts to the attached disk store, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the store write.
    pub fn flush_disk(&self) -> std::io::Result<Option<usize>> {
        self.compiler.flush_disk()
    }

    /// Session statistics (for embedding; the wire shape is
    /// [`Session::stats_json`]).
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Compiles without any session side effects — the escape hatch for
    /// embedders needing a [`Compiled`] (machine construction, lints)
    /// rather than a report.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile(&self, src: &str) -> Result<Compiled, PipelineError> {
        self.compiler.compile(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_FUNS: &str = "\
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int

fun second(v) = sub(v, 1)
where second <| {n:nat | n > 1} int array(n) -> int
";

    #[test]
    fn repeat_check_is_fully_incremental() {
        let mut s = Session::new(Compiler::new());
        let first = s.check(Some("a.dml"), TWO_FUNS).unwrap();
        assert!(!first.incremental);
        assert!(first.fully_verified);
        let second = s.check(Some("a.dml"), TWO_FUNS).unwrap();
        assert!(second.incremental);
        assert_eq!(second.stats.obligations_reused, second.stats.constraints);
        assert_eq!(second.stats.goals, 0, "nothing reached the solver");
        assert_eq!(
            crate::report::stable_body(&first.report.text),
            crate::report::stable_body(&second.report.text),
        );
    }

    #[test]
    fn one_decl_edit_resolves_only_that_decl() {
        let mut s = Session::new(Compiler::new());
        let cold = s.check(Some("b.dml"), TWO_FUNS).unwrap();
        let edited = TWO_FUNS.replace("sub(v, 1)", "sub(v, 1 - 1 + 1)");
        let warm = s.check(Some("b.dml"), &edited).unwrap();
        assert!(warm.incremental);
        assert!(warm.stats.obligations_reused > 0, "first() verdicts reused");
        assert!(
            warm.stats.goals < cold.stats.goals,
            "only the edited decl's goals were solved: {} vs {}",
            warm.stats.goals,
            cold.stats.goals
        );
        assert!(warm.fully_verified);
    }

    #[test]
    fn pathless_checks_skip_incremental_state() {
        let mut s = Session::new(Compiler::new());
        s.check(None, TWO_FUNS).unwrap();
        let again = s.check(None, TWO_FUNS).unwrap();
        assert!(!again.incremental, "no path, no file state");
        // The goal cache still answers everything.
        assert_eq!(again.stats.solver.cache_misses, 0);
    }

    #[test]
    fn compile_error_clears_file_state() {
        let mut s = Session::new(Compiler::new());
        s.check(Some("c.dml"), TWO_FUNS).unwrap();
        assert!(s.check(Some("c.dml"), "fun broken(").is_err());
        let after = s.check(Some("c.dml"), TWO_FUNS).unwrap();
        assert!(!after.incremental, "state was cleared by the failed check");
    }

    #[test]
    fn explain_matches_one_shot_byte_for_byte() {
        let mut s = Session::new(Compiler::new());
        s.check(Some("d.dml"), TWO_FUNS).unwrap(); // warm the session
        let daemon = s.explain(TWO_FUNS, None).unwrap();
        let compiled = Compiler::new().trace(true).compile(TWO_FUNS).unwrap();
        let one_shot = crate::trace::render_explain(&compiled, TWO_FUNS, None);
        assert_eq!(daemon, one_shot);
    }
}
