//! Transport loops for the check service: line-delimited JSON over stdio
//! or a Unix socket, dispatching to a [`Session`].
//!
//! The daemon is deliberately sequential — one request at a time per
//! connection, connections accepted one after another. Parallelism lives
//! *below* this layer, in the solver's worker pool; serialising requests
//! keeps verdict output deterministic and the session state free of locks.

use super::protocol::{self, ErrorCode, Request, Value};
use super::session::{CheckOutcome, Session};
use dml_obs::json::{obj, Json};
use std::io::{self, BufRead, Write};

/// Serves one connection until EOF or a `shutdown` request. Returns
/// `Ok(true)` when the client asked the whole service to shut down,
/// `Ok(false)` on plain EOF (the session stays warm for the next
/// connection).
///
/// # Errors
///
/// Propagates transport I/O failures (a failed read or write). Protocol
/// and compile errors are answered in-band and never tear the loop down.
pub fn serve_connection<R: BufRead, W: Write>(
    session: &mut Session,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match protocol::parse_request(&line) {
            Ok(r) => r,
            Err((code, message, id)) => {
                write_response(writer, protocol::response_err(id.as_ref(), code, &message))?;
                continue;
            }
        };
        let id = request.id.clone();
        let shutdown = request.method == "shutdown";
        let response = match dispatch(session, &request) {
            Ok(result) => protocol::response_ok(id.as_ref(), result),
            Err((code, message)) => protocol::response_err(id.as_ref(), code, &message),
        };
        write_response(writer, response)?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves requests from stdin to stdout until EOF or `shutdown` — the
/// `dmlc serve` default, and what clients spawn for a private daemon.
///
/// # Errors
///
/// Propagates stdio failures.
pub fn serve_stdio(session: &mut Session) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(session, stdin.lock(), &mut stdout.lock())?;
    Ok(())
}

/// Binds `path` and serves connections sequentially until some client
/// sends `shutdown`. A stale socket file at `path` is replaced; the file
/// is removed again on orderly shutdown.
///
/// # Errors
///
/// Propagates bind/accept/transport failures.
#[cfg(unix)]
pub fn serve_unix(session: &mut Session, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = io::BufReader::new(stream.try_clone()?);
        let mut writer = io::BufWriter::new(stream);
        let shutdown = serve_connection(session, reader, &mut writer)?;
        writer.flush()?;
        if shutdown {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn write_response<W: Write>(writer: &mut W, response: String) -> io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

type MethodError = (ErrorCode, String);

fn dispatch(session: &mut Session, request: &Request) -> Result<Json, MethodError> {
    match request.method.as_str() {
        "check" => {
            let source = required_str(&request.params, "source")?;
            let path = optional_str(&request.params, "path")?;
            let outcome = session.check(path, source).map_err(|e| (ErrorCode::CompileError, e))?;
            Ok(check_json(&outcome))
        }
        "explain" => {
            let source = required_str(&request.params, "source")?;
            let goal = match request.params.get("goal") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_i64()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| bad_params("`goal` must be a positive integer"))?
                        as usize,
                ),
            };
            let text = session.explain(source, goal).map_err(|e| (ErrorCode::CompileError, e))?;
            Ok(obj(vec![("text", Json::Str(text))]))
        }
        "infer" => {
            let source = required_str(&request.params, "source")?;
            let json = match request.params.get("json") {
                None | Some(Value::Null) => false,
                Some(v) => v.as_bool().ok_or_else(|| bad_params("`json` must be a boolean"))?,
            };
            let text = session.infer(source, json).map_err(|e| (ErrorCode::CompileError, e))?;
            Ok(obj(vec![("text", Json::Str(text))]))
        }
        "stats" => Ok(session.stats_json()),
        "shutdown" => {
            let flushed = session
                .flush_disk()
                .map_err(|e| (ErrorCode::Internal, format!("disk cache flush failed: {e}")))?;
            Ok(obj(vec![
                ("ok", Json::Bool(true)),
                ("flushed", flushed.map(|n| Json::Int(n as i64)).unwrap_or(Json::Null)),
            ]))
        }
        other => Err((ErrorCode::UnknownMethod, format!("unknown method `{other}`"))),
    }
}

fn check_json(outcome: &CheckOutcome) -> Json {
    let s = &outcome.stats;
    obj(vec![
        ("report", Json::Str(outcome.report.text.clone())),
        ("ok", Json::Bool(outcome.report.ok)),
        ("fullyVerified", Json::Bool(outcome.fully_verified)),
        ("incremental", Json::Bool(outcome.incremental)),
        (
            "stats",
            obj(vec![
                ("constraints", Json::Int(s.constraints as i64)),
                ("goals", Json::Int(s.goals as i64)),
                ("obligationsReused", Json::Int(s.obligations_reused as i64)),
                ("cacheHits", Json::Int(s.solver.cache_hits as i64)),
                ("cacheMisses", Json::Int(s.solver.cache_misses as i64)),
                ("cacheDiskHits", Json::Int(s.solver.cache_disk_hits as i64)),
                ("generationMs", Json::Num(s.generation_time.as_secs_f64() * 1e3)),
                ("solveMs", Json::Num(s.solve_time.as_secs_f64() * 1e3)),
            ]),
        ),
    ])
}

fn required_str<'a>(params: &'a Value, key: &str) -> Result<&'a str, MethodError> {
    params
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| bad_params(&format!("missing required string param `{key}`")))
}

fn optional_str<'a>(params: &'a Value, key: &str) -> Result<Option<&'a str>, MethodError> {
    match params.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad_params(&format!("param `{key}` must be a string"))),
    }
}

fn bad_params(message: &str) -> MethodError {
    (ErrorCode::BadParams, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use std::io::Cursor;

    const VERIFIED: &str =
        "fun first(v) = sub(v, 0)\\nwhere first <| {n:nat | n > 0} int array(n) -> int\\n";

    fn drive(session: &mut Session, script: &str) -> (bool, Vec<Value>) {
        let mut out = Vec::new();
        let shutdown =
            serve_connection(session, Cursor::new(script.to_string()), &mut out).unwrap();
        let responses = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("server emits valid JSON"))
            .collect();
        (shutdown, responses)
    }

    #[test]
    fn check_stats_shutdown_round_trip() {
        let mut session = Session::new(Compiler::new());
        let script = format!(
            "{{\"schemaVersion\":1,\"id\":1,\"method\":\"check\",\
               \"params\":{{\"source\":\"{VERIFIED}\",\"path\":\"a.dml\"}}}}\n\
             {{\"schemaVersion\":1,\"id\":2,\"method\":\"check\",\
               \"params\":{{\"source\":\"{VERIFIED}\",\"path\":\"a.dml\"}}}}\n\
             {{\"schemaVersion\":1,\"id\":3,\"method\":\"stats\"}}\n\
             {{\"schemaVersion\":1,\"id\":4,\"method\":\"shutdown\"}}\n"
        );
        let (shutdown, rs) = drive(&mut session, &script);
        assert!(shutdown);
        assert_eq!(rs.len(), 4);

        let first = rs[0].get("result").expect("check 1 succeeds");
        assert_eq!(first.get("fullyVerified").and_then(Value::as_bool), Some(true));
        assert_eq!(first.get("incremental").and_then(Value::as_bool), Some(false));

        let second = rs[1].get("result").expect("check 2 succeeds");
        assert_eq!(second.get("incremental").and_then(Value::as_bool), Some(true));
        assert_eq!(
            second.get("stats").and_then(|s| s.get("goals")).and_then(Value::as_i64),
            Some(0),
            "warm re-check of an unchanged file solves nothing"
        );

        let stats = rs[2].get("result").expect("stats succeeds");
        assert_eq!(
            stats.get("requests").and_then(|r| r.get("check")).and_then(Value::as_i64),
            Some(2)
        );
        assert_eq!(rs[3].get("id").and_then(Value::as_i64), Some(4));
        assert!(rs[3].get("result").is_some(), "shutdown acknowledges");
    }

    #[test]
    fn errors_are_in_band_and_correlated() {
        let mut session = Session::new(Compiler::new());
        let script = "\
            not json at all\n\
            {\"schemaVersion\":1,\"id\":\"m\",\"method\":\"mystery\"}\n\
            {\"schemaVersion\":1,\"id\":5,\"method\":\"check\",\"params\":{}}\n\
            {\"schemaVersion\":1,\"id\":6,\"method\":\"check\",\
             \"params\":{\"source\":\"fun broken(\"}}\n";
        let (shutdown, rs) = drive(&mut session, script);
        assert!(!shutdown, "errors never kill the connection; EOF ends it");
        let codes: Vec<_> = rs
            .iter()
            .map(|r| {
                r.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .expect("all four are errors")
                    .to_string()
            })
            .collect();
        assert_eq!(codes, ["bad-request", "unknown-method", "bad-params", "compile-error"]);
        assert_eq!(rs[1].get("id").and_then(Value::as_str), Some("m"));
        assert_eq!(rs[2].get("id").and_then(Value::as_i64), Some(5));
    }

    #[test]
    fn explain_over_the_wire_matches_in_process() {
        let mut session = Session::new(Compiler::new());
        let script = format!(
            "{{\"schemaVersion\":1,\"id\":1,\"method\":\"explain\",\
               \"params\":{{\"source\":\"{VERIFIED}\",\"goal\":1}}}}\n"
        );
        let (_, rs) = drive(&mut session, &script);
        let text = rs[0]
            .get("result")
            .and_then(|r| r.get("text"))
            .and_then(Value::as_str)
            .expect("explain succeeds")
            .to_string();
        let direct =
            Session::new(Compiler::new()).explain(&VERIFIED.replace("\\n", "\n"), Some(1)).unwrap();
        assert_eq!(text, direct);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("dml-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("dmlc.sock");
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let mut session = Session::new(Compiler::new());
            serve_unix(&mut session, &sock_for_server).unwrap();
        });
        while !sock.exists() {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stream = UnixStream::connect(&sock).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(
                format!(
                    "{{\"schemaVersion\":1,\"id\":1,\"method\":\"check\",\
                       \"params\":{{\"source\":\"{VERIFIED}\"}}}}\n\
                     {{\"schemaVersion\":1,\"id\":2,\"method\":\"shutdown\"}}\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let check = Value::parse(line.trim()).unwrap();
        assert_eq!(
            check.get("result").and_then(|r| r.get("ok")).and_then(Value::as_bool),
            Some(true)
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"result\""), "shutdown acknowledged: {line}");
        server.join().unwrap();
        assert!(!sock.exists(), "socket file cleaned up on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
