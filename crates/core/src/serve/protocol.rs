//! The `dmlc serve` wire protocol: versioned JSON requests and responses,
//! one per line.
//!
//! # Message shapes
//!
//! Every request is a single-line JSON object:
//!
//! ```json
//! {"schemaVersion":1,"id":1,"method":"check","params":{"source":"..."}}
//! ```
//!
//! * `schemaVersion` (required) — the protocol version the client speaks.
//!   This module accepts exactly [`SCHEMA_VERSION`]; anything else is
//!   answered with an `unsupported-schema` error so old clients fail
//!   loudly instead of misparsing.
//! * `id` (optional) — a string or integer echoed verbatim on the
//!   response, for request/response correlation over a pipelined
//!   connection.
//! * `method` (required) — `check`, `infer`, `explain`, `stats`, or
//!   `shutdown`.
//! * `params` (optional object) — method-specific; see `docs/PROTOCOL.md`.
//!
//! Responses mirror the shape: `{"schemaVersion":1,"id":...,"result":{...}}`
//! on success, `{"schemaVersion":1,"id":...,"error":{"code":"...",
//! "message":"..."}}` on failure.
//!
//! **Unknown-field tolerance:** readers on both sides pick the fields they
//! know and ignore the rest, so adding response fields (or clients sending
//! extra hints) is not a breaking change. Removing or re-typing a field
//! bumps [`SCHEMA_VERSION`].
//!
//! The parser below is hand-rolled (the workspace takes zero third-party
//! dependencies) and accepts the full JSON grammar: nested
//! objects/arrays, escapes including `\uXXXX`, and number syntax per RFC
//! 8259. Emission reuses [`dml_obs::Json`].

use std::fmt;

pub use dml_obs::json::{obj, Json};

/// The wire-protocol version this build speaks. Bumped whenever a field is
/// removed or its meaning changes; additive fields do not bump it.
pub const SCHEMA_VERSION: i64 = 1;

/// A parsed JSON value (the read side; [`dml_obs::Json`] is the write
/// side).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with fields in source order (duplicates keep the first).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (rejects trailing non-whitespace).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.is_finite() => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if !fields.iter().any(|(k, _)| *k == key) {
                fields.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..DFFF`.
                            let c = if (0xD800..0xDC00).contains(&first) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + second.wrapping_sub(0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim: the
                    // input is a &str, so byte boundaries are valid.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(digits, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number `{text}`"))
    }
}

/// Renders a request line (the client side of the wire), newline included.
/// The id is echoed back on the matching response.
pub fn request_line(id: i64, method: &str, params: Vec<(&str, Json)>) -> String {
    obj(vec![
        ("schemaVersion", Json::Int(SCHEMA_VERSION)),
        ("id", Json::Int(id)),
        ("method", Json::Str(method.to_string())),
        ("params", obj(params)),
    ])
    .render()
        + "\n"
}

/// Machine-readable error category on an error response. The code set is
/// part of the stable protocol (`docs/PROTOCOL.md`); new codes may be
/// added, existing ones never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON, or lacks a `method`.
    BadRequest,
    /// `schemaVersion` is missing or not a version this server speaks.
    UnsupportedSchema,
    /// `method` names no known request type.
    UnknownMethod,
    /// `params` is missing a required field or a field has the wrong type.
    BadParams,
    /// The program failed to compile (parse/type/elaboration error, or an
    /// unproven obligation under `strict`). The message is the same text
    /// one-shot `dmlc` prints to stderr.
    CompileError,
    /// An I/O or internal failure while handling an otherwise valid
    /// request.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedSchema => "unsupported-schema",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::BadParams => "bad-params",
            ErrorCode::CompileError => "compile-error",
            ErrorCode::Internal => "internal-error",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A validated request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Correlation id to echo (string or integer), if the client sent one.
    pub id: Option<Json>,
    /// The method name.
    pub method: String,
    /// Method parameters (an empty object when absent).
    pub params: Value,
}

/// Parses and validates one request line. On error, returns the code, a
/// message, and the request id when one could still be extracted (so the
/// error response stays correlatable).
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] for malformed JSON or a missing/mistyped
/// `method`; [`ErrorCode::UnsupportedSchema`] for a missing or
/// incompatible `schemaVersion`.
pub fn parse_request(line: &str) -> Result<Request, (ErrorCode, String, Option<Json>)> {
    let v = Value::parse(line)
        .map_err(|e| (ErrorCode::BadRequest, format!("invalid JSON: {e}"), None))?;
    let id = extract_id(&v);
    match v.get("schemaVersion").and_then(Value::as_i64) {
        Some(SCHEMA_VERSION) => {}
        Some(other) => {
            return Err((
                ErrorCode::UnsupportedSchema,
                format!(
                    "schemaVersion {other} not supported (this server speaks {SCHEMA_VERSION})"
                ),
                id,
            ));
        }
        None => {
            return Err((
                ErrorCode::UnsupportedSchema,
                format!("missing schemaVersion (this server speaks {SCHEMA_VERSION})"),
                id,
            ));
        }
    }
    let method = match v.get("method").and_then(Value::as_str) {
        Some(m) => m.to_string(),
        None => return Err((ErrorCode::BadRequest, "missing `method` string".to_string(), id)),
    };
    let params = v.get("params").cloned().unwrap_or(Value::Object(Vec::new()));
    Ok(Request { id, method, params })
}

/// The echo-able request id: strings and whole numbers only (other JSON
/// types are ignored rather than rejected — id is a convenience).
fn extract_id(v: &Value) -> Option<Json> {
    match v.get("id") {
        Some(Value::Str(s)) => Some(Json::Str(s.clone())),
        Some(Value::Num(n)) if n.fract() == 0.0 && n.is_finite() => Some(Json::Int(*n as i64)),
        _ => None,
    }
}

/// Renders a success response line (newline included).
pub fn response_ok(id: Option<&Json>, result: Json) -> String {
    envelope(id, ("result", result))
}

/// Renders an error response line (newline included).
pub fn response_err(id: Option<&Json>, code: ErrorCode, message: &str) -> String {
    envelope(
        id,
        (
            "error",
            obj(vec![
                ("code", Json::Str(code.as_str().to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        ),
    )
}

fn envelope(id: Option<&Json>, payload: (&str, Json)) -> String {
    let mut fields = vec![("schemaVersion", Json::Int(SCHEMA_VERSION))];
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.push(payload);
    obj(fields).render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_json_with_escapes() {
        let v = Value::parse(r#"{"a":[1,-2.5,true,null],"s":"line\nbreak A😀","o":{"k":"v"}}"#)
            .unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("line\nbreak A😀"));
        assert_eq!(v.get("o").and_then(|o| o.get("k")).and_then(Value::as_str), Some("v"));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0].as_i64(), Some(1));
                assert_eq!(items[1], Value::Num(-2.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(Value::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn request_roundtrip_and_unknown_field_tolerance() {
        let line = r#"{"schemaVersion":1,"id":7,"method":"check",
            "futureField":{"x":[1]},"params":{"source":"fun id(x) = x","alsoNew":true}}"#
            .replace('\n', " ");
        let req = parse_request(&line).expect("tolerates unknown fields");
        assert_eq!(req.method, "check");
        assert_eq!(req.params.get("source").and_then(Value::as_str), Some("fun id(x) = x"));
        let ok = response_ok(req.id.as_ref(), obj(vec![("ok", Json::Bool(true))]));
        assert_eq!(ok, "{\"schemaVersion\":1,\"id\":7,\"result\":{\"ok\":true}}\n");
    }

    #[test]
    fn schema_version_is_enforced() {
        let (code, _, id) =
            parse_request(r#"{"schemaVersion":2,"id":"x","method":"check"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::UnsupportedSchema);
        assert_eq!(id, Some(Json::Str("x".to_string())));
        let (code, _, _) = parse_request(r#"{"method":"check"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::UnsupportedSchema);
        let (code, _, _) = parse_request(r#"{"schemaVersion":1}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }
}
