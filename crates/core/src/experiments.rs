//! Experiment drivers regenerating the paper's tables and figures.
//!
//! * [`table1`] — constraint generation/solving statistics per program
//!   (paper Table 1);
//! * [`table1_infer`] — the inference variant: every benchmark with its
//!   hand annotations stripped, recompiled with [`Compiler::infer`] on,
//!   reporting how much of the annotation burden interval inference
//!   recovers (`dmlc table 1 --infer`);
//! * [`table2`] / [`table3`] — run time with vs. without checks, % gain,
//!   and checks eliminated (paper Tables 2 and 3, which differ only in
//!   platform; reproduced as two per-check cost models);
//! * [`figure4`] — the constraints generated for binary search's `look`
//!   (paper Figure 4).
//!
//! Workloads follow the paper's shapes with sizes scaled by a factor so
//! the interpreter finishes in bench-friendly time; see `EXPERIMENTS.md`.

use crate::pipeline::{Compiled, Compiler};
use crate::table::Table;
use dml_eval::{Machine, Mode, Value};
use dml_programs as progs;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name.
    pub program: &'static str,
    /// Constraints (proof obligations) generated.
    pub constraints: usize,
    /// Solver goals after splitting.
    pub goals: usize,
    /// Constraint generation time.
    pub generation: Duration,
    /// Constraint solving time.
    pub solving: Duration,
    /// Goals answered from the verdict cache.
    pub cache_hits: usize,
    /// Goals decided from scratch.
    pub cache_misses: usize,
    /// Number of type annotations.
    pub annotations: usize,
    /// Lines occupied by annotations.
    pub annotation_lines: usize,
    /// Total program lines.
    pub total_lines: usize,
    /// Whether every constraint was proven.
    pub fully_verified: bool,
    /// Check sites whose bound/tag checks stay in the compiled program
    /// (unproven obligations — graceful degradation). Zero for fully
    /// verified programs.
    pub residual_sites: usize,
    /// Per-phase solver latency histograms (always recorded, only rendered
    /// by `dmlc table 1 --timings`; see [`table1_timings`]).
    pub phase_times: dml_solver::PhaseTimes,
}

/// Compiles every benchmark program and reports Table 1's columns.
pub fn table1() -> Vec<Table1Row> {
    benchmarks()
        .iter()
        .map(|b| {
            let compiled = compile_bench(b);
            let stats = compiled.stats();
            Table1Row {
                program: b.program.name,
                constraints: stats.constraints,
                goals: stats.goals,
                generation: stats.generation_time,
                solving: stats.solve_time,
                cache_hits: stats.solver.cache_hits,
                cache_misses: stats.solver.cache_misses,
                annotations: b.program.annotation_count(),
                annotation_lines: b.program.annotation_lines(),
                total_lines: b.program.line_count(),
                fully_verified: compiled.fully_verified(),
                residual_sites: compiled.residual_checks().len(),
                phase_times: stats.solver.phase_times.clone(),
            }
        })
        .collect()
}

/// Renders Table 1 in the paper's layout.
pub fn table1_rendered() -> Table {
    table1_rows_rendered(&table1())
}

/// Renders the per-phase solver timing histograms aggregated over every
/// Table 1 row (`dmlc table 1 --timings`). Timing buckets vary run to run,
/// so this never enters golden comparisons.
pub fn table1_timings(rows: &[Table1Row]) -> String {
    let mut total = dml_solver::PhaseTimes::default();
    for r in rows {
        total.merge(&r.phase_times);
    }
    let mut out = String::from("\nsolver phase timings (all programs):\n");
    for (label, hist) in total.phases() {
        out.push_str(&format!("  {label:<16} {hist}\n"));
    }
    out
}

/// Renders already-computed Table 1 rows in the paper's layout.
pub fn table1_rows_rendered(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(&[
        "program",
        "constraints",
        "gen/solve (ms)",
        "annotations",
        "anno lines",
        "code size",
        "verified",
    ]);
    for r in rows {
        // The cache rate rides in the timing column: like the times it
        // varies with solver configuration (cache on/off, warm vs cold),
        // while every other column is configuration-independent.
        let looked_up = r.cache_hits + r.cache_misses;
        let rate = (r.cache_hits * 100).checked_div(looked_up).unwrap_or(0);
        t.row(vec![
            r.program.to_string(),
            r.constraints.to_string(),
            format!(
                "{:.1}/{:.1} ({rate}% cached)",
                r.generation.as_secs_f64() * 1e3,
                r.solving.as_secs_f64() * 1e3
            ),
            r.annotations.to_string(),
            r.annotation_lines.to_string(),
            format!("{} lines", r.total_lines),
            // Fully verified rows render exactly as before; partially
            // verified ones name their residual-check count.
            if r.fully_verified {
                "yes".to_string()
            } else if r.residual_sites > 0 {
                format!("PARTIAL ({} residual)", r.residual_sites)
            } else {
                "PARTIAL".to_string()
            },
        ]);
    }
    t
}

/// One row of the Table 1 inference variant: a benchmark with its
/// hand-written annotations stripped, partially recovered by
/// [`Compiler::infer`].
#[derive(Debug, Clone)]
pub struct InferRow {
    /// Program name.
    pub program: &'static str,
    /// Hand-written annotations in the original source.
    pub hand_annotations: usize,
    /// Residual check sites compiling the stripped source plain.
    pub before: usize,
    /// Residual check sites once the accepted annotations are applied.
    pub after: usize,
    /// Accepted (solver-verified) inferred annotations.
    pub accepted: usize,
    /// Candidates proposed by the interval analysis but rejected by the
    /// solver's re-verification.
    pub rejected: usize,
    /// Residual sites in the hand-annotated original — the bar inference
    /// is measured against (zero for every seed benchmark).
    pub original_residual: usize,
}

/// Strips every benchmark's annotations and recompiles with
/// [`Compiler::infer`] on: how much of the hand-annotation burden does
/// interval inference recover? (`dmlc table 1 --infer`)
pub fn table1_infer() -> Vec<InferRow> {
    benchmarks()
        .iter()
        .map(|b| {
            let src = bench_source(&b.program);
            let stripped = dml_infer::strip_annotations(&src)
                .unwrap_or_else(|e| panic!("{} failed to strip: {e}", b.program.name));
            let compiled = Compiler::new()
                .infer(true)
                .compile(&stripped)
                .unwrap_or_else(|e| panic!("{} stripped compile: {e}", b.program.name));
            let report = compiled.infer_report().expect("infer(true) records a report");
            InferRow {
                program: b.program.name,
                hand_annotations: b.program.annotation_count(),
                before: report.before,
                after: report.after,
                accepted: report.accepted.len(),
                rejected: report.rejected.len(),
                original_residual: compile_bench(b).residual_checks().len(),
            }
        })
        .collect()
}

/// Renders the inference variant of Table 1.
pub fn table1_infer_rendered(rows: &[InferRow]) -> Table {
    let mut t = Table::new(&[
        "program",
        "hand annos",
        "residual (stripped)",
        "residual (inferred)",
        "accepted",
        "rejected",
        "recovered",
    ]);
    for r in rows {
        t.row(vec![
            r.program.to_string(),
            r.hand_annotations.to_string(),
            r.before.to_string(),
            r.after.to_string(),
            r.accepted.to_string(),
            r.rejected.to_string(),
            // "full" means inference reaches the hand-annotated original's
            // residual count; anything less is reported honestly.
            if r.after == r.original_residual {
                "full".to_string()
            } else {
                format!("partial ({} vs {})", r.after, r.original_residual)
            },
        ]);
    }
    t
}

/// One row of Table 2 / Table 3.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Program name.
    pub program: &'static str,
    /// Wall-clock time with all checks executed.
    pub with_checks: Duration,
    /// Wall-clock time with proven checks eliminated.
    pub without_checks: Duration,
    /// `(with − without) / with`, in percent.
    pub gain_percent: f64,
    /// Deterministic abstract-op gain: `(ops_with − ops_without)/ops_with`
    /// in percent, bit-for-bit reproducible across machines.
    pub ops_gain_percent: f64,
    /// Dynamic checks eliminated during the run.
    pub checks_eliminated: u64,
    /// Residual checks executed in eliminated mode: dynamic checks at
    /// unproven sites (graceful degradation). Explicitly-checked `*CK`
    /// sites are counted in [`RunRow::checks_executed`] but not here —
    /// they were never candidates for elimination.
    pub residual_checks: u64,
    /// All checks executed in eliminated mode (residual plus `*CK` sites).
    pub checks_executed: u64,
    /// Whether both modes computed identical results (must always hold).
    pub outputs_match: bool,
}

/// Table 2: the low-overhead platform model (DEC Alpha + SML/NJ in the
/// paper). Each bound check costs 300 comparison rounds (≈ a third of one
/// interpreted array access, the ballpark of a native check/access ratio).
pub fn table2(factor: u32) -> Vec<RunRow> {
    run_table(factor, 300)
}

/// Table 3: the higher-overhead platform model (SPARC + MLWorks in the
/// paper). Each bound check costs 900 comparison rounds (≈ one interpreted
/// array access).
pub fn table3(factor: u32) -> Vec<RunRow> {
    run_table(factor, 900)
}

/// Runs all eight benchmarks under a given per-check cost model, taking
/// the minimum of three timed repetitions per mode.
pub fn run_table(factor: u32, check_cost: u32) -> Vec<RunRow> {
    benchmarks().iter().map(|b| run_benchmark_with(b, factor, check_cost, 3)).collect()
}

/// Renders a Table-2/3-style report.
pub fn table_rendered(rows: &[RunRow]) -> Table {
    let mut t = Table::new(&[
        "program",
        "with checks (ms)",
        "without (ms)",
        "gain",
        "op gain",
        "checks eliminated",
        "residual",
        "match",
    ]);
    for r in rows {
        t.row(vec![
            r.program.to_string(),
            format!("{:.1}", r.with_checks.as_secs_f64() * 1e3),
            format!("{:.1}", r.without_checks.as_secs_f64() * 1e3),
            format!("{:.0}%", r.gain_percent),
            format!("{:.0}%", r.ops_gain_percent),
            r.checks_eliminated.to_string(),
            r.residual_checks.to_string(),
            if r.outputs_match { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Figure 4: the constraints generated while type-checking binary search's
/// `look`, rendered in the paper's quantified-implication form.
///
/// As in the paper, constraints are shown *after* existential-variable
/// elimination (the published figure contains only universal quantifiers).
pub fn figure4() -> Vec<String> {
    let compiled = Compiler::new().compile(progs::bsearch::SOURCE).expect("bsearch compiles");
    let mut out = Vec::new();
    for (o, r) in compiled
        .obligations()
        .iter()
        .filter(|(o, _)| o.in_fun == "look" && !matches!(o.kind, dml_elab::ObKind::TypeEq))
    {
        let mut stats = dml_solver::SolverStats::default();
        let reduced = dml_solver::goal::eliminate_existentials(&o.constraint, &mut stats);
        for goal in dml_solver::goal::split_goals(&reduced) {
            out.push(format!(
                "[{}] {}  ({})",
                o.kind,
                goal,
                if r.is_proven() { "valid" } else { "NOT PROVEN" }
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Benchmark drivers.
// ---------------------------------------------------------------------

/// A benchmark: its program plus a driver that runs the workload on a
/// machine and returns a checksum (used to compare the two modes).
pub struct Bench {
    /// Program metadata and source.
    pub program: progs::BenchProgram,
    /// Workload driver; `factor` scales the paper's workload down.
    pub run: fn(&mut Machine, factor: u32) -> i64,
}

/// The eight benchmarks of Tables 2 and 3, in table order.
pub fn benchmarks() -> Vec<Bench> {
    vec![
        Bench { program: progs::bcopy::PROGRAM, run: run_bcopy },
        Bench { program: progs::bsearch::PROGRAM, run: run_bsearch },
        Bench { program: progs::bubblesort::PROGRAM, run: run_bubblesort },
        Bench { program: progs::matmult::PROGRAM, run: run_matmult },
        Bench { program: progs::queens::PROGRAM, run: run_queens },
        Bench { program: progs::quicksort::PROGRAM, run: run_quicksort },
        Bench { program: progs::hanoi::PROGRAM, run: run_hanoi },
        Bench { program: progs::listaccess::PROGRAM, run: run_listaccess },
    ]
}

/// Compiles a benchmark (quicksort needs its integer driver appended).
pub fn compile_bench(b: &Bench) -> Compiled {
    let src = bench_source(&b.program);
    Compiler::new()
        .compile(&src)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.program.name))
}

/// The source actually compiled for a benchmark program.
pub fn bench_source(p: &progs::BenchProgram) -> String {
    if p.name == "quick sort" {
        format!("{}{}", p.source, progs::quicksort::INT_DRIVER)
    } else {
        p.source.to_string()
    }
}

/// Runs one benchmark in both modes (single repetition).
pub fn run_benchmark(b: &Bench, factor: u32, check_cost: u32) -> RunRow {
    run_benchmark_with(b, factor, check_cost, 1)
}

/// Runs one benchmark in both modes, timing the *minimum* over `repeats`
/// repetitions per mode (reduces scheduler noise on the small scaled-down
/// workloads).
pub fn run_benchmark_with(b: &Bench, factor: u32, check_cost: u32, repeats: u32) -> RunRow {
    let compiled = compile_bench(b);
    let run_mode = |mode: Mode| {
        let mut best = Duration::MAX;
        let mut checksum = 0;
        let mut counters = dml_eval::Counters::new();
        let mut ops = 0u64;
        for _ in 0..repeats.max(1) {
            let mut machine = compiled.machine_with(
                match mode {
                    Mode::Checked => dml_eval::CheckConfig::checked(),
                    Mode::Eliminated => dml_eval::CheckConfig::eliminated(Default::default()),
                }
                .with_check_cost(check_cost),
            );
            let start = Instant::now();
            checksum = (b.run)(&mut machine, factor);
            best = best.min(start.elapsed());
            counters = machine.counters;
            ops = machine.ops;
        }
        (best, checksum, counters, ops)
    };
    let (with_time, with_sum, _with_counters, with_ops) = run_mode(Mode::Checked);
    let (without_time, without_sum, counters, without_ops) = run_mode(Mode::Eliminated);
    let gain = if with_time.as_secs_f64() > 0.0 {
        (with_time.as_secs_f64() - without_time.as_secs_f64()) / with_time.as_secs_f64() * 100.0
    } else {
        0.0
    };
    let ops_gain = if with_ops > 0 {
        (with_ops as f64 - without_ops as f64) / with_ops as f64 * 100.0
    } else {
        0.0
    };
    RunRow {
        program: b.program.name,
        with_checks: with_time,
        without_checks: without_time,
        gain_percent: gain,
        ops_gain_percent: ops_gain,
        checks_eliminated: counters.eliminated(),
        residual_checks: counters.residual(),
        checks_executed: counters.executed(),
        outputs_match: with_sum == without_sum,
    }
}

fn pair(a: Value, b: Value) -> Value {
    Value::Tuple(Rc::new(vec![a, b]))
}

fn run_bcopy(m: &mut Machine, factor: u32) -> i64 {
    // Paper: copy 1M bytes 10 times. Scaled: 16384·f bytes, 4 rounds.
    let n = 16_384 * factor as usize;
    let data = progs::bcopy::workload(n, 42);
    let (args, dst) = progs::bcopy::args(&data);
    for _ in 0..4 {
        m.call("bcopy", vec![args.clone()]).expect("bcopy runs");
    }
    dst.int_array_to_vec().expect("int array").iter().sum()
}

fn run_bsearch(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 2^20 probes into a 2^20 array. Scaled: 4096·f each.
    let n = 4096 * factor as usize;
    let (arr, keys) = progs::bsearch::workload(n, n, 7);
    let arr_v = Value::int_array(arr.iter().copied());
    let mut found = 0i64;
    for key in keys {
        let r = m.call("isearch", vec![progs::bsearch::args(key, &arr_v)]).expect("isearch runs");
        if matches!(&r, Value::Con(n, Some(_)) if &**n == "FOUND") {
            found += 1;
        }
    }
    found
}

fn run_bubblesort(m: &mut Machine, factor: u32) -> i64 {
    // Paper: size 2^13. Scaled: 384·f (quadratic cost).
    let n = 384 * factor as usize;
    let data = progs::bubblesort::workload(n, 3);
    let arr = progs::bubblesort::args(&data);
    m.call("bubblesort", vec![arr.clone()]).expect("bubblesort runs");
    let out = arr.int_array_to_vec().expect("int array");
    out.iter().enumerate().fold(0i64, |acc, (i, v)| acc.wrapping_add(v.wrapping_mul(i as i64 + 1)))
}

fn run_matmult(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 256×256. Scaled: 24·f.
    let n = 24 * factor as usize;
    let a = progs::matmult::workload(n, 1);
    let b = progs::matmult::workload(n, 2);
    let (args, c) = progs::matmult::args(&a, &b);
    m.call("matmult", vec![args]).expect("matmult runs");
    progs::matmult::matrix_back(&c).expect("matrix").iter().flatten().sum()
}

fn run_queens(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 12×12. Scaled: 8×8 (f=1) or 9×9 (f≥2).
    let n = if factor >= 2 { 9 } else { 8 };
    m.call("queens", vec![progs::queens::args(n)]).expect("queens runs").as_int().unwrap()
}

fn run_quicksort(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 2^20-ish from the SML/NJ library. Scaled: 4096·f.
    let n = 4096 * factor as usize;
    let data = progs::quicksort::workload(n, 9);
    let arr = progs::quicksort::args(&data);
    m.call("isort", vec![arr.clone()]).expect("isort runs");
    let out = arr.int_array_to_vec().expect("int array");
    out.iter().enumerate().fold(0i64, |acc, (i, v)| acc.wrapping_add(v.wrapping_mul(i as i64 + 1)))
}

fn run_hanoi(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 24 disks. Scaled: 12 + f.
    let k = 12 + factor as usize;
    m.call("hanoi", vec![progs::hanoi::args(k)]).expect("hanoi runs").as_int().unwrap()
}

fn run_listaccess(m: &mut Machine, factor: u32) -> i64 {
    // Paper: 2^20 accesses (16 per round). Scaled: 1024·f rounds.
    let rounds = 1024 * factor as i64;
    let data = progs::listaccess::workload(64, 5);
    m.call("listaccess", vec![progs::listaccess::args(&data, rounds)])
        .expect("listaccess runs")
        .as_int()
        .unwrap()
}

// `pair` is used by future drivers; keep the helper exercised.
#[allow(dead_code)]
fn _pair_used(a: Value, b: Value) -> Value {
    pair(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_fully_verified() {
        for b in benchmarks() {
            let c = compile_bench(&b);
            assert!(
                c.fully_verified(),
                "{} not fully verified:\n{}",
                b.program.name,
                c.failures().map(|(o, r)| format!("{o} -- {r:?}")).collect::<Vec<_>>().join("\n")
            );
            assert!(!c.proven_sites().is_empty(), "{} eliminated no checks", b.program.name);
        }
    }

    #[test]
    fn kmp_verifies_with_residual_checked_sites() {
        let c = Compiler::new().compile(progs::kmp::SOURCE).unwrap();
        assert!(
            c.fully_verified(),
            "kmp failures:\n{}",
            c.failures().map(|(o, r)| format!("{o} -- {r:?}")).collect::<Vec<_>>().join("\n")
        );
        // The paper: most checks eliminated; `subCK` calls remain checked
        // at run time (they generate no obligations at all).
        assert!(!c.proven_sites().is_empty());
        let mut m = c.machine(Mode::Eliminated);
        let pat = [1, 2, 1];
        let text = progs::kmp::workload(120, &pat, Some(60), 4);
        m.call("kmpMatch", vec![progs::kmp::args(&text, &pat)]).unwrap();
        assert!(m.counters.array_checks_eliminated > 0, "most checks eliminated");
        assert!(m.counters.array_checks_executed > 0, "subCK residue stays checked");
        assert_eq!(
            m.counters.array_checks_residual, 0,
            "`subCK` checks are explicit, not residual — kmp is fully verified"
        );
    }

    #[test]
    fn expository_programs_fully_verified() {
        for p in [progs::dotprod::PROGRAM, progs::reverse::PROGRAM, progs::filter::PROGRAM] {
            let c = Compiler::new().compile(p.source).unwrap();
            assert!(
                c.fully_verified(),
                "{} failures:\n{}",
                p.name,
                c.failures().map(|(o, r)| format!("{o} -- {r:?}")).collect::<Vec<_>>().join("\n")
            );
        }
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.constraints > 0, "{}", r.program);
            assert!(r.fully_verified, "{}", r.program);
            assert_eq!(r.residual_sites, 0, "{} has residual checks", r.program);
            assert!(r.annotations >= 1);
        }
        let rendered = table1_rendered().to_string();
        assert!(rendered.contains("binary search"), "{rendered}");
    }

    #[test]
    fn table1_infer_never_regresses_and_accepts_annotations() {
        let rows = table1_infer();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.after <= r.before, "{}: inference added residuals", r.program);
            assert_eq!(r.original_residual, 0, "{}: seed benchmarks verify fully", r.program);
        }
        assert!(rows.iter().any(|r| r.accepted > 0), "inference accepted nothing: {rows:?}");
        let rendered = table1_infer_rendered(&rows).to_string();
        assert!(rendered.contains("recovered"), "{rendered}");
        assert!(rendered.contains("binary search"), "{rendered}");
    }

    #[test]
    fn figure4_lists_look_constraints() {
        let lines = figure4();
        assert!(lines.len() >= 5, "Figure 4 lists several constraints: {lines:#?}");
        assert!(lines.iter().all(|l| l.contains("valid")), "{lines:#?}");
        assert!(
            lines.iter().any(|l| l.contains("div")),
            "the midpoint division must appear: {lines:#?}"
        );
    }

    #[test]
    fn benchmarks_run_and_modes_agree() {
        for b in benchmarks() {
            // Smallest factor for test speed.
            let row = run_benchmark(&b, 1, 1);
            assert!(row.outputs_match, "{} modes disagree", row.program);
            assert!(row.checks_eliminated > 0, "{} eliminated nothing", row.program);
        }
    }
}
