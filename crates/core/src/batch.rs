//! Batched multi-file checking over one warm compiler session.
//!
//! `dmlc check --jobs N <files...>` is a *check farm*: every file in the
//! batch compiles against the same session solver, so canonically-equal
//! goals dedupe across files exactly as they do across requests of a
//! long-lived `dmlc serve` daemon. The fan-out is a work-stealing loop
//! over `N` worker threads, each holding a clone of the session handle
//! (cloning *after* the session solver exists shares its verdict cache
//! and worker pool — see [`Compiler`]).
//!
//! Reporting is deterministic: results come back in input order, each
//! file renders through the same [`check_report`] the single-file path
//! uses, and the merged text is byte-identical to a sequential loop of
//! `dmlc check <file>` calls modulo the volatile timing/cache lines
//! ([`crate::report::VOLATILE_PREFIXES`]) — which is exactly the
//! contract the `--jobs` regression test pins.

use crate::pipeline::Compiler;
use crate::report::{check_report, CheckReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One input of a batch: a display name (the path) and its source.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Display name used in the merged report's `== name ==` headers.
    pub name: String,
    /// DML source text.
    pub source: String,
}

/// Per-file outcome of a batch check.
#[derive(Debug)]
pub struct BatchFileResult {
    /// The entry's display name, in input order.
    pub name: String,
    /// The rendered report, when the pipeline ran to completion
    /// (permissive-mode residuals included).
    pub report: Option<CheckReport>,
    /// The pipeline error, otherwise (parse error, strict-mode
    /// rejection, ...), rendered exactly as the single-file path prints
    /// it to stderr.
    pub error: Option<String>,
    /// Obligations the file generated (0 on error).
    pub constraints: usize,
    /// Solver goals the file examined (0 on error).
    pub goals: usize,
}

impl BatchFileResult {
    /// `true` when the file checked cleanly (residual checks allowed in
    /// permissive mode, same as the single-file exit code).
    pub fn ok(&self) -> bool {
        self.report.as_ref().is_some_and(|r| r.ok)
    }
}

/// Whole-batch totals. Cache counters are measured on the shared session
/// solver across the entire batch, so they are exact even when per-file
/// attribution races under `--jobs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSummary {
    /// Files checked.
    pub files: usize,
    /// Files that failed (pipeline error or strict rejection).
    pub failed: usize,
    /// Total obligations generated.
    pub constraints: usize,
    /// Total solver goals examined.
    pub goals: usize,
    /// Session-cache hits across the batch.
    pub cache_hits: u64,
    /// Session-cache misses across the batch.
    pub cache_misses: u64,
    /// Verdicts served from the persistent disk tier across the batch.
    pub cache_disk_hits: u64,
}

impl BatchSummary {
    /// One-line human summary (stderr material: the counters are
    /// workload-dependent, not part of the deterministic report body).
    pub fn render(&self) -> String {
        format!(
            "batch: {} file(s), {} failed; {} constraints, {} goals; \
             solver cache: {} hits, {} misses, {} disk hits",
            self.files,
            self.failed,
            self.constraints,
            self.goals,
            self.cache_hits,
            self.cache_misses,
            self.cache_disk_hits
        )
    }
}

/// The result of [`check_batch`]: per-file results in input order plus
/// batch totals.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-file outcomes, in input order regardless of completion order.
    pub results: Vec<BatchFileResult>,
    /// Whole-batch totals.
    pub summary: BatchSummary,
}

impl BatchOutcome {
    /// `true` when every file checked cleanly.
    pub fn ok(&self) -> bool {
        self.summary.failed == 0
    }

    /// The deterministic merged report: per file, a `== name ==` header
    /// followed by its report text (or `error: ...` for pipeline
    /// failures). Stripping [`crate::report::VOLATILE_PREFIXES`] lines
    /// makes this byte-identical across jobs counts and cache states.
    pub fn merged_report(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!("== {} ==\n", r.name));
            match (&r.report, &r.error) {
                (Some(rep), _) => out.push_str(&rep.text),
                (None, Some(e)) => out.push_str(&format!("error: {e}\n")),
                (None, None) => out.push_str("error: skipped\n"),
            }
        }
        out
    }
}

/// Checks every entry against `compiler`'s session, fanning across
/// `jobs` worker threads (1 = sequential; the result is identical either
/// way, only wall time changes). The session solver is initialized
/// before any worker spawns, so all clones share one goal cache — and
/// one disk tier, when attached. Newly decided verdicts are *not*
/// flushed here; call [`Compiler::flush_disk`] after the batch.
pub fn check_batch(compiler: &Compiler, entries: &[BatchEntry], jobs: usize) -> BatchOutcome {
    // Force the session solver into existence so every clone below
    // shares it (cloning a virgin handle would fork the session).
    let cache = compiler.solver().cache();
    let snapshot = (cache.hits(), cache.misses(), cache.disk_hits());

    let jobs = jobs.clamp(1, entries.len().max(1));
    let slots: Vec<Mutex<Option<BatchFileResult>>> =
        entries.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let work = |compiler: Compiler| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= entries.len() {
            break;
        }
        let entry = &entries[i];
        let result = match compiler.compile(&entry.source) {
            Ok(compiled) => {
                let stats = compiled.stats();
                BatchFileResult {
                    name: entry.name.clone(),
                    report: Some(check_report(&compiled, &entry.source)),
                    error: None,
                    constraints: stats.constraints,
                    goals: stats.goals,
                }
            }
            Err(e) => BatchFileResult {
                name: entry.name.clone(),
                report: None,
                error: Some(e.to_string()),
                constraints: 0,
                goals: 0,
            },
        };
        *slots[i].lock().expect("batch slot poisoned") = Some(result);
    };

    if jobs == 1 {
        work(compiler.clone());
    } else {
        std::thread::scope(|s| {
            for _ in 0..jobs {
                let handle = compiler.clone();
                s.spawn(|| work(handle));
            }
        });
    }

    let results: Vec<BatchFileResult> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("batch slot poisoned").expect("batch slot unfilled"))
        .collect();
    let mut summary = BatchSummary {
        files: results.len(),
        cache_hits: cache.hits() - snapshot.0,
        cache_misses: cache.misses() - snapshot.1,
        cache_disk_hits: cache.disk_hits() - snapshot.2,
        ..BatchSummary::default()
    };
    for r in &results {
        if !r.ok() {
            summary.failed += 1;
        }
        summary.constraints += r.constraints;
        summary.goals += r.goals;
    }
    BatchOutcome { results, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::stable_body;

    /// `i + 1 < n ⊃ i < n` needs real Fourier–Motzkin work (a guard that
    /// syntactically contains the conclusion would take the assumption
    /// fast path and never touch the cache).
    const PROVEN: &str = "fun f(v, i) = sub(v, i)\n\
                          where f <| {n:nat, i:nat | i + 1 < n} int array(n) * int(i) -> int\n";
    const RESIDUAL: &str = "fun g(v, i) = sub(v, i)\n";
    /// α-equivalent to [`PROVEN`] under a different name: same canonical
    /// goals, so a shared session serves it from cache.
    const PROVEN_TWIN: &str = "fun ff(w, j) = sub(w, j)\n\
                               where ff <| {n:nat, i:nat | i + 1 < n} int array(n) * int(i) -> int\n";
    const BROKEN: &str = "fun h(v, i) = sub(v\n";

    fn entries() -> Vec<BatchEntry> {
        vec![
            BatchEntry { name: "a.dml".into(), source: PROVEN.into() },
            BatchEntry { name: "b.dml".into(), source: RESIDUAL.into() },
            BatchEntry { name: "c.dml".into(), source: PROVEN_TWIN.into() },
        ]
    }

    #[test]
    fn parallel_batch_matches_sequential_modulo_volatile_lines() {
        let entries = entries();
        let seq = check_batch(&Compiler::new().workers(1), &entries, 1);
        let par = check_batch(&Compiler::new().workers(1), &entries, 3);
        assert_eq!(stable_body(&seq.merged_report()), stable_body(&par.merged_report()));
        assert!(seq.ok() && par.ok());
        assert_eq!(seq.summary.files, 3);
        assert_eq!(seq.summary.constraints, par.summary.constraints);
    }

    #[test]
    fn results_come_back_in_input_order() {
        let entries = entries();
        let out = check_batch(&Compiler::new(), &entries, 2);
        let names: Vec<&str> = out.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a.dml", "b.dml", "c.dml"]);
    }

    #[test]
    fn pipeline_errors_mark_the_batch_failed_without_aborting_it() {
        let mut entries = entries();
        entries.push(BatchEntry { name: "d.dml".into(), source: BROKEN.into() });
        let out = check_batch(&Compiler::new().workers(1), &entries, 2);
        assert!(!out.ok());
        assert_eq!(out.summary.failed, 1);
        assert!(out.results[3].error.is_some());
        assert!(out.merged_report().contains("== d.dml ==\nerror: "));
        // The healthy files still checked.
        assert!(out.results[0].ok() && out.results[1].ok() && out.results[2].ok());
    }

    #[test]
    fn shared_session_dedupes_goals_across_files() {
        // `a.dml` and `c.dml` are α-equivalent: the second compile must
        // hit the session cache, not re-solve.
        let entries = entries();
        let compiler = Compiler::new().workers(1);
        let out = check_batch(&compiler, &entries, 1);
        assert!(out.summary.cache_hits > 0, "{:?}", out.summary);
    }
}
