//! Golden determinism tests for `dmlc explain` rendering: the proof-trace
//! output must be byte-identical across worker counts and cache
//! configurations (the observability determinism contract — see
//! `docs/ARCHITECTURE.md`).

use dml::{render_explain, Compiler, Solver, SolverOptions};

fn explain(src: &str, workers: usize, cache: bool) -> String {
    let c = Compiler::new()
        .trace(true)
        .workers(workers)
        .cache(cache)
        .compile(src)
        .expect("program compiles");
    render_explain(&c, src, None)
}

fn assert_config_independent(name: &str, src: &str) -> String {
    let base = explain(src, 1, true);
    assert!(base.contains("proof trace:"), "{name}: {base}");
    for (workers, cache) in [(1, false), (4, true), (4, false)] {
        let other = explain(src, workers, cache);
        assert_eq!(
            base, other,
            "{name}: explain output differs for workers={workers} cache={cache}"
        );
    }
    base
}

#[test]
fn bsearch_explain_is_byte_identical_across_configs() {
    let text = assert_config_independent("bsearch", dml_programs::bsearch::SOURCE);
    // The midpoint-division goals show real elimination work.
    assert!(text.contains("eliminate "), "{text}");
    assert!(text.contains("verdict: proven"), "{text}");
}

#[test]
fn residual_example_explain_is_byte_identical_across_configs() {
    let src = include_str!("../../../examples/residual.dml");
    let text = assert_config_independent("residual.dml", src);
    // Acceptance: the nonlinear `i*j` goal reports its Unknown reason and
    // the fuel spent on it.
    assert!(text.contains("non-linear constraint: i * j"), "{text}");
    assert!(text.contains("fuel: "), "{text}");
    assert!(text.contains("residual runtime checks:"), "{text}");
}

/// A warm shared cache must not change the rendering either: tracing
/// re-decides cache hits so every trace carries the full elimination story.
#[test]
fn warm_cache_explain_matches_cold() {
    let src = dml_programs::bsearch::SOURCE;
    let solver = Solver::new(SolverOptions::default().with_trace(true));
    let cold = Compiler::new().with_solver(&solver).compile(src).unwrap();
    let warm = Compiler::new().with_solver(&solver).compile(src).unwrap();
    assert!(warm.stats().solver.cache_hits > 0, "second compile hits the shared cache");
    assert_eq!(
        render_explain(&cold, src, None),
        render_explain(&warm, src, None),
        "warm-cache rendering is byte-identical to cold"
    );
}
