//! Golden determinism tests for `dmlc explain` rendering: the proof-trace
//! output must be byte-identical across worker counts, cache
//! configurations, and worker-pool states (the observability determinism
//! contract — see `docs/ARCHITECTURE.md`).
//!
//! The matrix is {workers = 1, 4, auto} × {cache on, off} × {pool cold,
//! pool warm}: the first parallel compile of the process spawns the
//! persistent worker pool's helper threads, the second pass re-runs every
//! configuration against the already-parked helpers. Because every
//! configuration recompiles the same source, the sweep also pins the
//! gen-phase memo: memo-cold and memo-warm elaborations must render the
//! same explain output byte for byte.

use dml::{render_explain, Compiler, Solver, SolverOptions};
use std::sync::Once;

/// A single-core machine gets a pool with zero helpers (the submitting
/// thread works every batch alone), so force helpers into existence before
/// anything touches the pool's one-time initializer. Every test in this
/// binary calls this first.
static FORCE_HELPERS: Once = Once::new();

fn force_helpers() {
    FORCE_HELPERS.call_once(|| {
        std::env::set_var("DML_SOLVER_HELPERS", "3");
    });
}

fn explain(src: &str, workers: Option<usize>, cache: bool) -> String {
    let mut compiler = Compiler::new().trace(true).cache(cache);
    if let Some(workers) = workers {
        compiler = compiler.workers(workers);
    }
    let c = compiler.compile(src).expect("program compiles");
    render_explain(&c, src, None)
}

fn assert_config_independent(name: &str, src: &str) -> String {
    force_helpers();
    let base = explain(src, Some(1), true);
    assert!(base.contains("proof trace:"), "{name}: {base}");
    // `None` is `workers=auto`. Two passes: the first covers the pool-cold
    // spawn (on the process's first parallel compile), the second the warm
    // pool with helpers parked on the condvar.
    for pass in ["pool cold", "pool warm"] {
        for (workers, label) in [(Some(1), "1"), (Some(4), "4"), (None, "auto")] {
            for cache in [true, false] {
                let other = explain(src, workers, cache);
                assert_eq!(
                    base, other,
                    "{name}: explain output differs for workers={label} cache={cache} ({pass})"
                );
            }
        }
        assert!(dml_solver::pool::is_warm(), "{name}: parallel compiles initialized the pool");
    }
    base
}

#[test]
fn bsearch_explain_is_byte_identical_across_configs() {
    let text = assert_config_independent("bsearch", dml_programs::bsearch::SOURCE);
    // The midpoint-division goals show real elimination work.
    assert!(text.contains("eliminate "), "{text}");
    assert!(text.contains("verdict: proven"), "{text}");
}

#[test]
fn residual_example_explain_is_byte_identical_across_configs() {
    let src = include_str!("../../../examples/residual.dml");
    let text = assert_config_independent("residual.dml", src);
    // Acceptance: the nonlinear `i*j` goal reports its Unknown reason and
    // the fuel spent on it.
    assert!(text.contains("non-linear constraint: i * j"), "{text}");
    assert!(text.contains("fuel: "), "{text}");
    assert!(text.contains("residual runtime checks:"), "{text}");
}

/// A warm shared cache must not change the rendering either: tracing
/// re-decides cache hits so every trace carries the full elimination story.
#[test]
fn warm_cache_explain_matches_cold() {
    force_helpers();
    let src = dml_programs::bsearch::SOURCE;
    let solver = Solver::new(SolverOptions::default().with_trace(true));
    let cold = Compiler::new().with_solver(&solver).compile(src).unwrap();
    let warm = Compiler::new().with_solver(&solver).compile(src).unwrap();
    assert!(warm.stats().solver.cache_hits > 0, "second compile hits the shared cache");
    assert_eq!(
        render_explain(&cold, src, None),
        render_explain(&warm, src, None),
        "warm-cache rendering is byte-identical to cold"
    );
}
