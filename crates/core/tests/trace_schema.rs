//! Validates `dmlc check --trace-out` output against the trace schema
//! documented in `docs/ARCHITECTURE.md` ("Trace-event schema"). The
//! workspace is dependency-free, so this test carries its own minimal JSON
//! parser rather than pulling in serde.

use dml::{chrome_trace, Compiler};

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (test-only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        self.bytes[self.pos]
    }

    fn eat(&mut self, b: u8) {
        self.ws();
        assert_eq!(self.bytes[self.pos], b, "expected {:?} at byte {}", b as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Value {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Value::Str(self.string()),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, text: &str, v: Value) -> Value {
        self.ws();
        assert_eq!(&self.bytes[self.pos..self.pos + text.len()], text.as_bytes());
        self.pos += text.len();
        v
    }

    fn number(&mut self) -> Value {
        self.ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Value::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text:?}")))
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            self.pos += 4;
                        }
                        c => out.push(c as char),
                    }
                    self.pos += 1;
                }
                c => {
                    // Multi-byte UTF-8 sequences pass through byte by byte;
                    // the producer only emits ASCII outside strings.
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Value {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Value::Arr(items);
        }
        loop {
            items.push(self.value());
            if self.peek() == b',' {
                self.pos += 1;
            } else {
                self.eat(b']');
                return Value::Arr(items);
            }
        }
    }

    fn object(&mut self) -> Value {
        self.eat(b'{');
        let mut pairs = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Value::Obj(pairs);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            pairs.push((key, self.value()));
            if self.peek() == b',' {
                self.pos += 1;
            } else {
                self.eat(b'}');
                return Value::Obj(pairs);
            }
        }
    }
}

fn parse(s: &str) -> Value {
    let mut p = Parser::new(s);
    let v = p.value();
    p.ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

// ---------------------------------------------------------------------
// Schema checks (mirroring docs/ARCHITECTURE.md "Trace-event schema").
// ---------------------------------------------------------------------

const KNOWN_TAGS: &[&str] = &[
    "obligation",
    "fast_path",
    "canonicalized",
    "cache",
    "hypothesis_dropped",
    "lowered",
    "dnf",
    "system_start",
    "tightened",
    "eliminate",
    "contradiction",
    "fuel",
    "witness",
    "residual",
    "verdict",
];

#[test]
fn trace_out_json_matches_documented_schema() {
    let src = include_str!("../../../examples/residual.dml");
    let compiled = Compiler::new().trace(true).compile(src).expect("compiles");
    let rendered = chrome_trace(&compiled, src, "residual.dml").render();
    let root = parse(&rendered);

    // Top level: traceEvents array, displayTimeUnit, otherData object.
    let events = root.get("traceEvents").expect("traceEvents").as_arr().expect("array");
    assert!(!events.is_empty());
    assert_eq!(root.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let other = root.get("otherData").expect("otherData");
    assert_eq!(other.get("schemaVersion").unwrap().as_num(), Some(1.0));
    for key in ["program", "constraints", "goals", "fuelSpent", "cacheShardSizes"] {
        assert!(other.get(key).is_some(), "otherData.{key} missing");
    }
    let shards = other.get("cacheShardSizes").unwrap().as_arr().unwrap();
    assert_eq!(shards.len(), 16, "one entry per verdict-cache shard");

    // Every event: ph in X|i|M, integer pid/tid; spans carry ts+dur+args.
    let mut goal_spans = 0usize;
    for ev in events {
        let ph = ev.get("ph").expect("ph").as_str().expect("ph is a string");
        assert!(matches!(ph, "X" | "i" | "M"), "unknown phase {ph:?}");
        assert!(ev.get("pid").unwrap().as_num().is_some());
        assert!(ev.get("tid").unwrap().as_num().is_some());
        match ph {
            "X" => {
                assert!(ev.get("ts").unwrap().as_num().is_some());
                assert!(ev.get("dur").unwrap().as_num().is_some());
                let name = ev.get("name").unwrap().as_str().unwrap();
                if let Some(rest) = name.strip_prefix("goal ") {
                    goal_spans += 1;
                    assert!(rest.parse::<usize>().is_ok(), "goal span name {name:?}");
                    let args = ev.get("args").unwrap();
                    assert!(args.get("verdict").unwrap().as_str().is_some());
                    assert!(args.get("fuel").unwrap().as_num().is_some());
                    assert!(args.get("wall_ns").unwrap().as_num().is_some());
                    for entry in args.get("events").unwrap().as_arr().unwrap() {
                        let tag = entry.get("tag").unwrap().as_str().unwrap();
                        assert!(KNOWN_TAGS.contains(&tag), "unknown event tag {tag:?}");
                        assert!(entry.get("args").is_some());
                    }
                }
            }
            "i" => {
                assert_eq!(ev.get("s").unwrap().as_str(), Some("g"));
                assert!(ev.get("ts").unwrap().as_num().is_some());
            }
            "M" => assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name")),
            _ => unreachable!(),
        }
    }
    assert_eq!(goal_spans, compiled.stats().goals, "one span per solver goal");

    // The residual example keeps a nonlinear check: a residual instant and
    // a nonzero Unknown verdict must be present.
    assert!(rendered.contains(r#""name":"residual: sub""#), "{rendered}");
    assert!(rendered.contains("non-linear"), "{rendered}");
}
