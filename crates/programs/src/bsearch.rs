//! Figure 3: binary search through a sorted array.
//!
//! The midpoint arithmetic `lo + (hi - lo) div 2` is the paper's flagship
//! constraint (Figure 4 lists the generated goals); the `div` is handled by
//! the solver's quotient-remainder lowering plus tightening.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};
use std::rc::Rc;

/// The DML source, including the `order`-returning integer comparator and a
/// monomorphic driver (`isearch`).
pub const SOURCE: &str = r#"
datatype 'a answer = NOTFOUND | FOUND of int * 'a

fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let val m = lo + (hi - lo) div 2
          val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => FOUND(m, x)
        | GREATER => look(m+1, hi)
      end
    else NOTFOUND
  where look <| {l:nat | l <= size} {h:int | 0 <= h+1 && h+1 <= size}
                int(l) * int(h) -> 'a answer
in
  look (0, length arr - 1)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> 'a answer

fun icmp(x, y) = if x < y then LESS else if x > y then GREATER else EQUAL

fun isearch(key, arr) = bsearch icmp (key, arr)
where isearch <| {size:nat} int * int array(size) -> int answer
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "binary search",
    source: SOURCE,
    workload: "search 2^20 random keys in a random sorted array of size 2^20 (paper)",
};

/// Builds a sorted array of `n` distinct-ish values plus `probes` keys.
pub fn workload(n: usize, probes: usize, seed: u64) -> (Vec<i64>, Vec<i64>) {
    let mut rng = XorShift::new(seed);
    let mut arr = rng.int_vec(n, (n as i64) * 4 + 1);
    arr.sort_unstable();
    let keys = rng.int_vec(probes, (n as i64) * 4 + 1);
    (arr, keys)
}

/// The argument tuple `(key, arr)` for `isearch`.
pub fn args(key: i64, arr: &Value) -> Value {
    Value::Tuple(Rc::new(vec![Value::Int(key), arr.clone()]))
}

/// Reference implementation: whether `key` occurs in the sorted slice.
pub fn reference(arr: &[i64], key: i64) -> bool {
    arr.binary_search(&key).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn finds_exactly_the_present_keys() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let (arr, keys) = workload(256, 100, 11);
        let arr_v = Value::int_array(arr.iter().copied());
        for key in keys {
            let r = m.call("isearch", vec![args(key, &arr_v)]).unwrap();
            let found = matches!(&r, Value::Con(n, Some(_)) if &**n == "FOUND");
            assert_eq!(found, reference(&arr, key), "key {key}");
        }
    }

    #[test]
    fn empty_array_not_found() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let arr_v = Value::int_array([]);
        let r = m.call("isearch", vec![args(5, &arr_v)]).unwrap();
        assert!(matches!(&r, Value::Con(n, None) if &**n == "NOTFOUND"));
    }

    #[test]
    fn found_index_is_correct() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let arr: Vec<i64> = (0..50).map(|i| i * 2).collect();
        let arr_v = Value::int_array(arr.iter().copied());
        let r = m.call("isearch", vec![args(48, &arr_v)]).unwrap();
        match r {
            Value::Con(n, Some(pair)) if &*n == "FOUND" => match pair.as_ref() {
                Value::Tuple(vs) => {
                    assert_eq!(vs[0].as_int(), Some(24));
                    assert_eq!(vs[1].as_int(), Some(48));
                }
                other => panic!("bad payload {other:?}"),
            },
            other => panic!("expected FOUND, got {other}"),
        }
    }
}
