//! The benchmark programs of the paper's §4 evaluation, in DML concrete
//! syntax, together with deterministic workload builders.
//!
//! Eight programs appear in Tables 1–3: `bcopy`, `binary search`,
//! `bubble sort`, `matrix mult`, `queen`, `quick sort`, `hanoi towers`,
//! and `list access`. The module set also includes the three expository
//! programs of §2 (`dotprod`, `reverse`, `filter`) and Appendix A's
//! Knuth–Morris–Pratt matcher.
//!
//! Annotation style: as in the paper, inner loops carry `where` clauses
//! whose index bounds are tied to the *enclosing* function's index
//! parameters (e.g. `{n:nat | n <= p}` for `dotprod`'s loop), which is what
//! makes every array access provably in bounds.
//!
//! Each module exposes `SOURCE` (the program text), workload builders
//! producing [`dml_eval::Value`]s, and a reference implementation in Rust
//! used by the correctness tests.

pub mod bcopy;
pub mod bsearch;
pub mod bubblesort;
pub mod dotprod;
pub mod extra;
pub mod filter;
pub mod hanoi;
pub mod kmp;
pub mod listaccess;
pub mod matmult;
pub mod queens;
pub mod quicksort;
pub mod reverse;

/// Metadata for one benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct BenchProgram {
    /// Program name as it appears in the paper's tables.
    pub name: &'static str,
    /// DML source text.
    pub source: &'static str,
    /// Short description of the paper's workload.
    pub workload: &'static str,
}

impl BenchProgram {
    /// Number of source lines (the paper's "code size" column).
    pub fn line_count(&self) -> usize {
        self.source.trim().lines().count()
    }

    /// Number of `where`/`assert`/`typeref`/`:`-annotation occurrences (the
    /// paper's "type annotations" column analogue).
    pub fn annotation_count(&self) -> usize {
        let src = self.source;
        src.matches("where ").count()
            + src.matches("assert ").count()
            + src.matches("typeref ").count()
    }

    /// Number of source lines occupied by annotations (counting each
    /// `where`/`assert` clause's lines).
    pub fn annotation_lines(&self) -> usize {
        let mut count = 0;
        let mut in_anno = false;
        for line in self.source.lines() {
            let t = line.trim_start();
            if t.starts_with("where ") || t.starts_with("assert ") || t.starts_with("typeref ") {
                in_anno = true;
            }
            if in_anno {
                count += 1;
                // An annotation continues while lines end in a connective.
                let end = line.trim_end();
                if !(end.ends_with("->")
                    || end.ends_with("&&")
                    || end.ends_with('*')
                    || end.ends_with('|')
                    || end.ends_with('}'))
                {
                    in_anno = false;
                }
            }
        }
        count
    }
}

/// The eight programs of Tables 1–3, in table order.
pub fn table_programs() -> Vec<BenchProgram> {
    vec![
        bcopy::PROGRAM,
        bsearch::PROGRAM,
        bubblesort::PROGRAM,
        matmult::PROGRAM,
        queens::PROGRAM,
        quicksort::PROGRAM,
        hanoi::PROGRAM,
        listaccess::PROGRAM,
    ]
}

/// All programs including the §2 expository examples and KMP.
pub fn all_programs() -> Vec<BenchProgram> {
    let mut v = vec![dotprod::PROGRAM, reverse::PROGRAM, filter::PROGRAM];
    v.extend(table_programs());
    v.push(kmp::PROGRAM);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn all_programs_parse() {
        for p in all_programs() {
            dml_syntax::parse_program(p.source)
                .unwrap_or_else(|e| panic!("{} failed to parse:\n{}", p.name, e.render(p.source)));
        }
    }

    #[test]
    fn all_programs_load_into_the_interpreter() {
        for p in all_programs() {
            let ast = dml_syntax::parse_program(p.source).unwrap();
            Machine::load(&ast, CheckConfig::checked())
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", p.name));
        }
    }

    #[test]
    fn metadata_is_sensible() {
        for p in all_programs() {
            assert!(p.line_count() > 3, "{} suspiciously small", p.name);
            assert!(p.annotation_count() >= 1, "{} has no annotations", p.name);
            assert!(p.annotation_lines() >= 1, "{}", p.name);
        }
        assert_eq!(table_programs().len(), 8);
        assert_eq!(all_programs().len(), 12);
    }
}
