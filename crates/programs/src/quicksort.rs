//! Quicksort on arrays (SML/NJ library style, polymorphic with a
//! comparison function), Lomuto partition.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};

/// The DML source. The partition loop's result type is an existential
/// `[s:nat | lo <= s && s <= hi] int(s)` — the store index is statically
/// unknown but bounded, exactly the idiom of §2.4.
pub const SOURCE: &str = r#"
fun('a){size:nat} quicksort cmp a = let
  fun swap(i, j) =
    let val t = sub(a, i) in
      (update(a, i, sub(a, j)); update(a, j, t))
    end
  where swap <| {i:nat | i < size} {j:nat | j < size} int(i) * int(j) -> unit
  fun part(j, store, lo, hi, pivot) =
    if j < hi then
      (if cmp(sub(a, j), pivot) then
         (swap(j, store); part(j+1, store+1, lo, hi, pivot))
       else part(j+1, store, lo, hi, pivot))
    else store
  where part <| {lo:nat} {hi:int | lo <= hi && hi < size} {store:nat | lo <= store}
                {j:nat | store <= j && j <= hi}
                int(j) * int(store) * int(lo) * int(hi) * 'a ->
                [s:nat | lo <= s && s <= hi] int(s)
  fun qsort(lo, hi) =
    if lo < hi then
      let val pivot = sub(a, hi)
          val s = part(lo, lo, lo, hi, pivot)
      in
        (swap(s, hi); qsort(lo, s - 1); qsort(s + 1, hi))
      end
    else ()
  where qsort <| {lo:nat | lo <= size} {hi:int | 0 <= hi+1 && hi < size}
                 int(lo) * int(hi) -> unit
in
  qsort(0, length a - 1)
end
where quicksort <| ('a * 'a -> bool) -> 'a array(size) -> unit
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "quick sort",
    source: SOURCE,
    workload: "sort a random integer array (paper: size 2^20 from the SML/NJ library code)",
};

/// Builds a random array of `n` elements.
pub fn workload(n: usize, seed: u64) -> Vec<i64> {
    XorShift::new(seed).int_vec(n, 1_000_000)
}

/// Builds the array argument.
pub fn args(data: &[i64]) -> Value {
    Value::int_array(data.iter().copied())
}

/// The integer `<=` comparator as DML source to append for drivers.
pub const INT_DRIVER: &str = "\nfun isort(a) = quicksort (fn (x, y) => x <= y) a\n\
                              where isort <| {size:nat} int array(size) -> unit\n";

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    fn sort(data: &[i64]) -> Vec<i64> {
        let src = format!("{SOURCE}{INT_DRIVER}");
        let ast = dml_syntax::parse_program(&src).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let arr = args(data);
        m.call("isort", vec![arr.clone()]).unwrap();
        arr.int_array_to_vec().unwrap()
    }

    #[test]
    fn sorts_random_data() {
        let data = workload(500, 13);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sort(&data), expect);
    }

    #[test]
    fn sorts_edge_cases() {
        assert_eq!(sort(&[]), Vec::<i64>::new());
        assert_eq!(sort(&[2, 1]), vec![1, 2]);
        assert_eq!(sort(&[1, 1, 1, 1]), vec![1, 1, 1, 1]);
        let descending: Vec<i64> = (0..100).rev().collect();
        assert_eq!(sort(&descending), (0..100).collect::<Vec<i64>>());
    }
}
