//! The n-queens problem (paper: a 12×12 board), counting placements.

use crate::BenchProgram;
use dml_eval::Value;

/// The DML source.
pub const SOURCE: &str = r#"
fun queens(board) = let
  val n = length board
  fun ok(i, r, c) =
    if i < r then
      let val bi = sub(board, i) in
        if bi = c then false
        else if bi + (r - i) = c then false
        else if bi - (r - i) = c then false
        else ok(i+1, r, c)
      end
    else true
  where ok <| {r:nat | r <= size} {i:nat | i <= r} int(i) * int(r) * int -> bool
  fun cols(c, r, acc) =
    if c < n then
      (if ok(0, r, c) then
         (update(board, r, c); cols(c+1, r, acc + place(r+1)))
       else cols(c+1, r, acc))
    else acc
  where cols <| {r:nat | r < size} {c:nat | c <= size} int(c) * int(r) * int -> int
  and place(r) =
    if r = n then 1 else cols(0, r, 0)
  where place <| {r:nat | r <= size} int(r) -> int
in
  place(0)
end
where queens <| {size:nat} int array(size) -> int
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "queen",
    source: SOURCE,
    workload: "count placements on a 12x12 board (paper)",
};

/// Builds the board argument for an `n`×`n` instance.
pub fn args(n: usize) -> Value {
    Value::int_array(std::iter::repeat_n(0, n))
}

/// Reference solution counts for small boards.
pub fn reference(n: usize) -> u64 {
    // OEIS A000170.
    const COUNTS: [u64; 13] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200];
    COUNTS[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    fn solve(n: usize) -> i64 {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        m.call("queens", vec![args(n)]).unwrap().as_int().unwrap()
    }

    #[test]
    fn known_solution_counts() {
        for n in 1..=8 {
            assert_eq!(solve(n) as u64, reference(n), "n = {n}");
        }
    }

    #[test]
    fn zero_board_has_one_empty_placement() {
        assert_eq!(solve(0), 1);
    }
}
