//! Figure 1: the dot product function.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};

/// The DML source. The loop annotation ties `n` to the first array's size
/// `p` (this is the invariant that makes both `sub` calls provably safe).
pub const SOURCE: &str = r#"
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram =
    BenchProgram { name: "dotprod", source: SOURCE, workload: "dot product of two random vectors" };

/// Builds the two input vectors.
pub fn workload(n: usize, seed: u64) -> (Vec<i64>, Vec<i64>) {
    let mut rng = XorShift::new(seed);
    (rng.int_vec(n, 100), rng.int_vec(n, 100))
}

/// The argument tuple for `dotprod`.
pub fn args(v1: &[i64], v2: &[i64]) -> Value {
    Value::Tuple(std::rc::Rc::new(vec![
        Value::int_array(v1.iter().copied()),
        Value::int_array(v2.iter().copied()),
    ]))
}

/// Reference implementation.
pub fn reference(v1: &[i64], v2: &[i64]) -> i64 {
    v1.iter().zip(v2).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn computes_dot_product() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let (v1, v2) = workload(100, 7);
        let r = m.call("dotprod", vec![args(&v1, &v2)]).unwrap();
        assert_eq!(r.as_int(), Some(reference(&v1, &v2)));
        assert_eq!(m.counters.array_checks_executed, 200, "two subs per element");
    }

    #[test]
    fn empty_vectors() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let r = m.call("dotprod", vec![args(&[], &[])]).unwrap();
        assert_eq!(r.as_int(), Some(0));
    }

    #[test]
    fn long_vectors_need_tail_calls() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let (v1, v2) = workload(200_000, 3);
        let r = m.call("dotprod", vec![args(&v1, &v2)]).unwrap();
        assert_eq!(r.as_int(), Some(reference(&v1, &v2)));
    }
}
