//! Figure 2: list reverse, with the length-indexed `typeref`'d list.

use crate::BenchProgram;
use dml_eval::Value;

/// The DML source, verbatim from Figure 2 (modulo concrete syntax).
pub const SOURCE: &str = r#"
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram =
    BenchProgram { name: "reverse", source: SOURCE, workload: "list reversal" };

/// Builds an integer list value `[0, 1, ..., n-1]`.
pub fn workload(n: usize) -> Value {
    Value::list((0..n as i64).map(Value::Int))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn reverses() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let r = m.call("reverse", vec![workload(5)]).unwrap();
        let out: Vec<i64> = r.list_to_vec().unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(out, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn reverse_empty() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let r = m.call("reverse", vec![workload(0)]).unwrap();
        assert!(r.list_to_vec().unwrap().is_empty());
    }
}
