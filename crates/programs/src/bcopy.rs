//! The optimised byte-copy function (Fox project style): a four-way
//! unrolled word loop plus a byte tail. The unrolled loop's index is the
//! singleton `int(4*q)`, whose constraints exercise the solver's integer
//! tightening (§3.2's modular-arithmetic transformation).

use crate::BenchProgram;
use dml_eval::{Value, XorShift};
use std::rc::Rc;

/// The DML source. The word loop counts in words (`qi`) and rebuilds the
/// byte index as the singleton product `4 * qi`; proving `0 <= lim` for the
/// tail loop requires the solver's integer tightening (`4d >= -3` must
/// shrink to `d >= 0`), which is exactly the modular-arithmetic situation
/// §3.2 reports for the optimised byte copy.
pub const SOURCE: &str = r#"
fun bcopy(src, dst) = let
  val n = length src
  val lim = 4 * (n div 4)
  fun copy4(qi) = let
    val i = 4 * qi
  in
    if i + 4 <= lim then
      (update(dst, i, sub(src, i));
       update(dst, i+1, sub(src, i+1));
       update(dst, i+2, sub(src, i+2));
       update(dst, i+3, sub(src, i+3));
       copy4(qi + 1))
    else ()
  end
  where copy4 <| {q:nat} int(q) -> unit
  fun copy1(i) =
    if i < n then (update(dst, i, sub(src, i)); copy1(i+1)) else ()
  where copy1 <| {i:nat | i <= m} int(i) -> unit
in
  (copy4(0); copy1(lim))
end
where bcopy <| {m:nat} {k:nat | m <= k} int array(m) * int array(k) -> unit
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "bcopy",
    source: SOURCE,
    workload: "copy a byte buffer (paper: 1M bytes x 10, byte-by-byte)",
};

/// Builds a source buffer of `n` pseudo-random bytes.
pub fn workload(n: usize, seed: u64) -> Vec<i64> {
    XorShift::new(seed).int_vec(n, 256)
}

/// The argument tuple `(src, dst)`; returns the destination handle too.
pub fn args(src: &[i64]) -> (Value, Value) {
    let dst = Value::int_array(std::iter::repeat_n(0, src.len()));
    let tuple = Value::Tuple(Rc::new(vec![Value::int_array(src.iter().copied()), dst.clone()]));
    (tuple, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    fn run(src_bytes: &[i64]) -> Vec<i64> {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let (tuple, dst) = args(src_bytes);
        m.call("bcopy", vec![tuple]).unwrap();
        dst.int_array_to_vec().unwrap()
    }

    #[test]
    fn copies_exactly() {
        let data = workload(1003, 5);
        assert_eq!(run(&data), data, "1003 = 4*250 + 3 exercises both loops");
    }

    #[test]
    fn copies_word_multiples() {
        let data = workload(64, 9);
        assert_eq!(run(&data), data);
    }

    #[test]
    fn copies_tiny_buffers() {
        for n in 0..8 {
            let data = workload(n, 2);
            assert_eq!(run(&data), data, "n = {n}");
        }
    }

    #[test]
    fn check_counts_match_accesses() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let data = workload(100, 1);
        let (tuple, _) = args(&data);
        m.call("bcopy", vec![tuple]).unwrap();
        // One sub + one update per element copied.
        assert_eq!(m.counters.array_checks_executed, 200);
    }
}
