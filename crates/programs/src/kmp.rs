//! Appendix A: Knuth–Morris–Pratt string matching.
//!
//! The prefix table's elements live in the existential subset type
//! `[i:int | 0 <= i+1] int(i)` (the paper's `intPrefix`), written inline.
//! As in the paper, "several array bound checks in the body of
//! `computePrefix` cannot be eliminated" — those use `subCK`, while every
//! access in `kmpMatch`'s scan loop verifies and uses the unchecked `sub`.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};
use std::rc::Rc;

/// The DML source.
pub const SOURCE: &str = r#"
fun computePrefix(pat) = let
  val plen = length pat
  val pa : [s:nat] ([i:int | 0 <= i+1] int(i)) array(s) =
    array(plen, (~1 : [i:int | 0 <= i+1] int(i)))
  fun adjust(k, q) =
    if k >= 0 andalso subCK(pat, k+1) <> sub(pat, q) then adjust(subCK(pa, k), q)
    else k
  where adjust <| {q:nat | q < p} ([i:int | 0 <= i+1] int(i)) * int(q)
                  -> [i:int | 0 <= i+1] int(i)
  fun loop(k, q) =
    if q < plen then
      let val k1 = adjust(k, q)
          val k2 : [i:int | 0 <= i+1] int(i) =
            if k1 + 1 < plen andalso subCK(pat, k1+1) = sub(pat, q)
            then k1 + 1 else k1
      in
        (update(pa, q, k2); loop(k2, q+1))
      end
    else ()
  where loop <| {q:nat | q >= 1} ([i:int | 0 <= i+1] int(i)) * int(q) -> unit
in
  (loop(~1, 1); pa)
end
where computePrefix <| {p:nat} int array(p) -> ([i:int | 0 <= i+1] int(i)) array(p)

fun kmpMatch(str, pat) = let
  val strLen = length str
  val patLen = length pat
  val pa = computePrefix(pat)
  fun loop(s, p) =
    if s < strLen then
      if p < patLen then
        (if sub(str, s) = sub(pat, p) then loop(s+1, p+1)
         else if p = 0 then loop(s+1, 0)
         else let val k : [i:int | 0 <= i+1] int(i) = sub(pa, p - 1)
              in loop(s, k + 1) end)
      else s - patLen
    else (if p = patLen andalso patLen > 0 then s - patLen else ~1)
  where loop <| {s:nat} {q:nat} int(s) * int(q) -> int
in
  loop(0, 0)
end
where kmpMatch <| {sl:nat} {pl:nat} int array(sl) * int array(pl) -> int
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "kmp",
    source: SOURCE,
    workload: "Knuth-Morris-Pratt string matching (Appendix A)",
};

/// Builds a text of length `n` over a small alphabet, with `pat` embedded
/// at `embed_at` when given.
pub fn workload(n: usize, pat: &[i64], embed_at: Option<usize>, seed: u64) -> Vec<i64> {
    let mut rng = XorShift::new(seed);
    let mut text = rng.int_vec(n, 4);
    if let Some(at) = embed_at {
        text[at..at + pat.len()].copy_from_slice(pat);
    }
    text
}

/// Builds the `(str, pat)` argument.
pub fn args(text: &[i64], pat: &[i64]) -> Value {
    Value::Tuple(Rc::new(vec![
        Value::int_array(text.iter().copied()),
        Value::int_array(pat.iter().copied()),
    ]))
}

/// Reference: index of the first occurrence, or −1.
pub fn reference(text: &[i64], pat: &[i64]) -> i64 {
    if pat.is_empty() {
        return 0;
    }
    text.windows(pat.len()).position(|w| w == pat).map(|i| i as i64).unwrap_or(-1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    fn matcher(text: &[i64], pat: &[i64]) -> i64 {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        m.call("kmpMatch", vec![args(text, pat)]).unwrap().as_int().unwrap()
    }

    #[test]
    fn finds_embedded_pattern() {
        let pat = [1, 2, 1, 1, 2];
        let text = workload(300, &pat, Some(137), 3);
        let found = matcher(&text, &pat);
        let expect = reference(&text, &pat);
        assert_eq!(found, expect);
        assert!(found >= 0);
    }

    #[test]
    fn reports_absent_pattern() {
        // Alphabet {0..3}; a pattern containing 9 never occurs.
        let text = workload(200, &[], None, 5);
        assert_eq!(matcher(&text, &[9, 9]), -1);
    }

    #[test]
    fn matches_against_reference_on_many_cases() {
        let mut rng = XorShift::new(77);
        for case in 0..30 {
            let n = 20 + (case * 7) % 100;
            let plen = 1 + (case % 5);
            let pat: Vec<i64> = (0..plen).map(|_| rng.int_below(3)).collect();
            let text = workload(n, &[], None, 1000 + case as u64);
            assert_eq!(
                matcher(&text, &pat),
                reference(&text, &pat),
                "case {case}: text={text:?} pat={pat:?}"
            );
        }
    }

    #[test]
    fn overlapping_prefix_patterns() {
        let text = [1, 1, 1, 2, 1, 1, 2, 2];
        let pat = [1, 1, 2, 2];
        assert_eq!(matcher(&text, &pat), reference(&text, &pat));
        let pat2 = [1, 2, 1, 1];
        assert_eq!(matcher(&text, &pat2), reference(&text, &pat2));
    }
}
