//! Towers of Hanoi (paper: 24 disks) with array-backed poles.
//!
//! Pole selectors are singleton-typed naturals below 3, so the `tops` and
//! `poles` accesses verify outright; disk moves between pole arrays are
//! guarded by boolean-singleton conditionals, which is what lets their
//! accesses verify too (the guard plays the role of a hoisted check, and
//! this is why hanoi shows the smallest relative gain in the paper's
//! tables).

use crate::BenchProgram;
use dml_eval::Value;
use std::rc::Rc;

/// The DML source.
pub const SOURCE: &str = r#"
fun hanoi(poles, tops, k, f, t, v) =
  if k = 0 then 0
  else
    let val a = hanoi(poles, tops, k - 1, f, v, t)
        val ft = sub(tops, f)
        val tt = sub(tops, t)
        val pf = sub(poles, f)
        val pt = sub(poles, t)
    in
      ((if 0 < ft andalso ft - 1 < length pf
           andalso 0 <= tt andalso tt < length pt then
          (update(pt, tt, sub(pf, ft - 1));
           update(tops, f, ft - 1);
           update(tops, t, tt + 1))
        else ());
       a + 1 + hanoi(poles, tops, k - 1, v, t, f))
    end
where hanoi <| {n:nat} {k:nat} {f:nat | f < 3} {t:nat | t < 3} {v:nat | v < 3}
               int array(n) array(3) * int array(3) * int(k) * int(f) * int(t) * int(v) ->
               int
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "hanoi towers",
    source: SOURCE,
    workload: "move k disks across three poles (paper: 24 disks)",
};

/// Builds `(poles, tops)` for `k` disks: pole 0 holds `k..1`, the rest are
/// empty.
pub fn args(k: usize) -> Value {
    let pole0: Vec<i64> = (1..=k as i64).rev().collect();
    let poles = Value::array(vec![
        Value::int_array(pole0),
        Value::int_array(std::iter::repeat_n(0, k)),
        Value::int_array(std::iter::repeat_n(0, k)),
    ]);
    let tops = Value::int_array([k as i64, 0, 0]);
    Value::Tuple(Rc::new(vec![
        poles,
        tops,
        Value::Int(k as i64),
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
    ]))
}

/// Number of moves for `k` disks.
pub fn reference(k: u32) -> i64 {
    (1i64 << k) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn move_counts_match() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        for k in 0..10u32 {
            let r = m.call("hanoi", vec![args(k as usize)]).unwrap();
            assert_eq!(r.as_int(), Some(reference(k)), "k = {k}");
        }
    }

    #[test]
    fn disks_end_on_target_pole() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let k = 6usize;
        let tuple = args(k);
        let (poles, tops) = match &tuple {
            Value::Tuple(vs) => (vs[0].clone(), vs[1].clone()),
            _ => unreachable!(),
        };
        m.call("hanoi", vec![tuple.clone()]).unwrap();
        assert_eq!(tops.int_array_to_vec().unwrap(), vec![0, 6, 0]);
        match &poles {
            Value::Array(ps) => {
                let target = ps.borrow()[1].int_array_to_vec().unwrap();
                assert_eq!(target, (1..=k as i64).rev().collect::<Vec<_>>());
            }
            _ => unreachable!(),
        }
    }
}
