//! Bubble sort on an integer array.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};

/// The DML source.
pub const SOURCE: &str = r#"
fun bubblesort(a) = let
  val n = length a
  fun inner(j, lim) =
    if j < lim then
      (if sub(a, j) > sub(a, j+1) then
         let val t = sub(a, j) in
           (update(a, j, sub(a, j+1)); update(a, j+1, t))
         end
       else ();
       inner(j+1, lim))
    else ()
  where inner <| {lim:nat | lim < size} {j:nat | j <= lim} int(j) * int(lim) -> unit
  fun outer(i) =
    if i > 0 then (inner(0, i); outer(i-1)) else ()
  where outer <| {i:int | 0 <= i+1 && i < size} int(i) -> unit
in
  if n > 0 then outer(n - 1) else ()
end
where bubblesort <| {size:nat} int array(size) -> unit
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "bubble sort",
    source: SOURCE,
    workload: "sort a random array of size 2^13 (paper)",
};

/// Builds a random array of `n` elements.
pub fn workload(n: usize, seed: u64) -> Vec<i64> {
    XorShift::new(seed).int_vec(n, 1_000_000)
}

/// Builds the array argument, returning the handle for inspection.
pub fn args(data: &[i64]) -> Value {
    Value::int_array(data.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    fn sort(data: &[i64]) -> Vec<i64> {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let arr = args(data);
        m.call("bubblesort", vec![arr.clone()]).unwrap();
        arr.int_array_to_vec().unwrap()
    }

    #[test]
    fn sorts_random_data() {
        let data = workload(200, 4);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sort(&data), expect);
    }

    #[test]
    fn sorts_edge_cases() {
        assert_eq!(sort(&[]), Vec::<i64>::new());
        assert_eq!(sort(&[1]), vec![1]);
        assert_eq!(sort(&[3, 2, 1]), vec![1, 2, 3]);
        assert_eq!(sort(&[5, 5, 5]), vec![5, 5, 5]);
    }
}
