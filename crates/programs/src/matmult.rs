//! Matrix multiplication on two-dimensional integer arrays
//! (`int array(size) array(size)`): the element type of the outer array is
//! itself indexed, so row accesses propagate the inner length and every
//! inner access verifies.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};
use std::rc::Rc;

/// The DML source.
pub const SOURCE: &str = r#"
fun matmult(a, b, c) = let
  val n = length a
  fun loopk(i, j, k, sum) =
    if k < n then loopk(i, j, k+1, sum + sub(sub(a, i), k) * sub(sub(b, k), j))
    else update(sub(c, i), j, sum)
  where loopk <| {i:nat | i < size} {j:nat | j < size} {k:nat | k <= size}
                 int(i) * int(j) * int(k) * int -> unit
  fun loopj(i, j) =
    if j < n then (loopk(i, j, 0, 0); loopj(i, j+1)) else ()
  where loopj <| {i:nat | i < size} {j:nat | j <= size} int(i) * int(j) -> unit
  fun loopi(i) =
    if i < n then (loopj(i, 0); loopi(i+1)) else ()
  where loopi <| {i:nat | i <= size} int(i) -> unit
in
  loopi(0)
end
where matmult <| {size:nat}
                 int array(size) array(size) * int array(size) array(size) * int array(size) array(size) ->
                 unit
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "matrix mult",
    source: SOURCE,
    workload: "multiply two random 256x256 matrices (paper)",
};

/// Builds a random `n`×`n` matrix.
pub fn workload(n: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = XorShift::new(seed);
    (0..n).map(|_| rng.int_vec(n, 100)).collect()
}

/// Converts a matrix to a value.
pub fn matrix_value(m: &[Vec<i64>]) -> Value {
    Value::array(m.iter().map(|row| Value::int_array(row.iter().copied())).collect())
}

/// Builds the `(a, b, c)` argument; `c` is returned for inspection.
pub fn args(a: &[Vec<i64>], b: &[Vec<i64>]) -> (Value, Value) {
    let n = a.len();
    let c = matrix_value(&vec![vec![0; n]; n]);
    (Value::Tuple(Rc::new(vec![matrix_value(a), matrix_value(b), c.clone()])), c)
}

/// Extracts a matrix value back to vectors.
pub fn matrix_back(v: &Value) -> Option<Vec<Vec<i64>>> {
    match v {
        Value::Array(rows) => rows.borrow().iter().map(|r| r.int_array_to_vec()).collect(),
        _ => None,
    }
}

/// Reference multiplication.
pub fn reference(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let n = a.len();
    let mut c = vec![vec![0i64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0;
            for (k, bk) in b.iter().enumerate() {
                sum += a[i][k] * bk[j];
            }
            c[i][j] = sum;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn multiplies_correctly() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let a = workload(8, 1);
        let b = workload(8, 2);
        let (tuple, c) = args(&a, &b);
        m.call("matmult", vec![tuple]).unwrap();
        assert_eq!(matrix_back(&c).unwrap(), reference(&a, &b));
    }

    #[test]
    fn identity_matrix() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let n = 5;
        let a = workload(n, 3);
        let mut eye = vec![vec![0i64; n]; n];
        for (i, row) in eye.iter_mut().enumerate() {
            row[i] = 1;
        }
        let (tuple, c) = args(&a, &eye);
        m.call("matmult", vec![tuple]).unwrap();
        assert_eq!(matrix_back(&c).unwrap(), a);
    }

    #[test]
    fn check_counts() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let n = 4usize;
        let a = workload(n, 5);
        let b = workload(n, 6);
        let (tuple, _) = args(&a, &b);
        m.call("matmult", vec![tuple]).unwrap();
        // Per (i,j,k): 4 subs; per (i,j): 1 sub + 1 update.
        let expected = (n * n * n * 4 + n * n * 2) as u64;
        assert_eq!(m.counters.array_checks_executed, expected);
    }
}
