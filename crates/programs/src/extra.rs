//! Additional fully-verified DML programs beyond the paper's benchmarks —
//! the kind of library code a DML user would write day to day. Each is
//! exercised by the pipeline tests (compile → fully verified → run).

use crate::BenchProgram;

/// `zip` of two equal-length lists, with the length equality in the type
/// (the motivating example for index equality constraints on datatypes).
pub const ZIP: &str = r#"
datatype 'a pairlist = pnil | pcons of 'a * 'a * 'a pairlist
typeref 'a pairlist of nat with
  pnil <| 'a pairlist(0)
| pcons <| {n:nat} 'a * 'a * 'a pairlist(n) -> 'a pairlist(n+1)

fun zip(l1, l2) = case l1 of
    nil => pnil
  | x :: xs => (case l2 of
        y :: ys => pcons(x, y, zip(xs, ys))
      | nil => pnil)
where zip <| {n:nat} 'a list(n) * 'a list(n) -> 'a pairlist(n)
"#;

/// Insertion sort on length-indexed lists: sorting preserves length.
pub const INSERTION_SORT: &str = r#"
fun insert(x, l) = case l of
    nil => x :: nil
  | y :: ys => if x <= y then x :: y :: ys else y :: insert(x, ys)
where insert <| {n:nat} int * int list(n) -> int list(n+1)

fun isort(l) = case l of
    nil => nil
  | x :: xs => insert(x, isort(xs))
where isort <| {n:nat} int list(n) -> int list(n)
"#;

/// Maximum of a non-empty array, with the emptiness precondition in the
/// index domain.
pub const ARRAY_MAX: &str = r#"
fun amax(v) = let
  val n = length v
  fun go(i, best) =
    if i < n then go(i+1, imax(best, sub(v, i))) else best
  where go <| {i:nat | i <= m} int(i) * int -> int
in
  go(1, sub(v, 0))
end
where amax <| {m:nat | m > 0} int array(m) -> int
"#;

/// In-place reversal of an array using two proven indices.
pub const ARRAY_REVERSE: &str = r#"
fun arev(v) = let
  val n = length v
  fun go(i, j) =
    if i < j then
      let val t = sub(v, i) in
        (update(v, i, sub(v, j)); update(v, j, t); go(i+1, j-1))
      end
    else ()
  where go <| {i:nat | i <= m} {j:int | 0 <= j+1 && j < m} int(i) * int(j) -> unit
in
  if n > 0 then go(0, n - 1) else ()
end
where arev <| {m:nat} int array(m) -> unit
"#;

/// Row sums of a square matrix into a fresh array (allocation guard plus
/// nested-index propagation, as in matmult).
pub const ROW_SUMS: &str = r#"
fun rowsums(m) = let
  val n = length m
  val out = array(n, 0)
  fun inner(i, j, acc) =
    if j < n then inner(i, j+1, acc + sub(sub(m, i), j))
    else update(out, i, acc)
  where inner <| {i:nat | i < size} {j:nat | j <= size} int(i) * int(j) * int -> unit
  fun outer(i) =
    if i < n then (inner(i, 0, 0); outer(i+1)) else ()
  where outer <| {i:nat | i <= size} int(i) -> unit
in
  (outer(0); out)
end
where rowsums <| {size:nat} int array(size) array(size) -> int array(size)
"#;

/// Clamped binary search returning the insertion point — a variant whose
/// result is an existential `[r:nat | r <= size] int(r)`.
pub const LOWER_BOUND: &str = r#"
fun lower_bound(v, key) = let
  fun go(lo, hi) =
    if lo < hi then
      let val mid = lo + (hi - lo) div 2 in
        if sub(v, mid) < key then go(mid + 1, hi) else go(lo, mid)
      end
    else lo
  where go <| {l:nat | l <= size} {h:nat | l <= h && h <= size}
              int(l) * int(h) -> [r:nat | r <= size] int(r)
in
  go(0, length v)
end
where lower_bound <| {size:nat} int array(size) * int -> [r:nat | r <= size] int(r)
"#;

/// Heap sort on an array: sift-down with `2*i+1`/`2*i+2` child indices,
/// every access proven (children guarded by comparisons against the heap
/// size, which the short-circuit `andalso` refinement carries into the
/// right-hand operand).
pub const HEAPSORT: &str = r#"
fun heapsort(a) = let
  val n = length a
  fun swap(i, j) =
    let val t = sub(a, i) in
      (update(a, i, sub(a, j)); update(a, j, t))
    end
  where swap <| {i:nat | i < size} {j:nat | j < size} int(i) * int(j) -> unit
  fun sift(i, m) =
    let val l = 2*i + 1
        val r = 2*i + 2
    in
      if l < m then
        let val big : [k:nat | k < h] int(k) =
              if r < m andalso sub(a, r) > sub(a, l) then r else l
        in
          if sub(a, big) > sub(a, i) then (swap(i, big); sift(big, m)) else ()
        end
      else ()
    end
  where sift <| {h:nat | h <= size} {i:nat | i < h} int(i) * int(h) -> unit
  fun build(i) =
    if i >= 0 then (sift(i, n); build(i - 1)) else ()
  where build <| {i:int | 0 <= i+1 && i < size} int(i) -> unit
  fun extract(m) =
    if m > 1 then (swap(0, m - 1); sift(0, m - 1); extract(m - 1)) else ()
  where extract <| {m:nat | m <= size} int(m) -> unit
in
  if n > 1 then (build(n div 2); extract(n)) else ()
end
where heapsort <| {size:nat} int array(size) -> unit
"#;

/// All the extra programs, named.
pub fn all() -> Vec<BenchProgram> {
    vec![
        BenchProgram { name: "zip", source: ZIP, workload: "zip two equal-length lists" },
        BenchProgram {
            name: "insertion sort",
            source: INSERTION_SORT,
            workload: "sort a list, preserving length",
        },
        BenchProgram {
            name: "array max",
            source: ARRAY_MAX,
            workload: "maximum of a non-empty array",
        },
        BenchProgram {
            name: "array reverse",
            source: ARRAY_REVERSE,
            workload: "in-place array reversal",
        },
        BenchProgram {
            name: "row sums",
            source: ROW_SUMS,
            workload: "row sums of a square matrix",
        },
        BenchProgram {
            name: "lower bound",
            source: LOWER_BOUND,
            workload: "insertion-point search",
        },
        BenchProgram { name: "heap sort", source: HEAPSORT, workload: "in-place heap sort" },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine, Value};
    use std::rc::Rc;

    fn machine(src: &str) -> Machine {
        let ast = dml_syntax::parse_program(src).unwrap();
        Machine::load(&ast, CheckConfig::checked()).unwrap()
    }

    fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(Rc::new(vec![a, b]))
    }

    #[test]
    fn all_extra_programs_parse_and_load() {
        for p in all() {
            let ast = dml_syntax::parse_program(p.source)
                .unwrap_or_else(|e| panic!("{}: {}", p.name, e.render(p.source)));
            Machine::load(&ast, CheckConfig::checked())
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn zip_pairs_up() {
        let mut m = machine(ZIP);
        let l1 = Value::list([Value::Int(1), Value::Int(2)]);
        let l2 = Value::list([Value::Int(10), Value::Int(20)]);
        let r = m.call("zip", vec![pair(l1, l2)]).unwrap();
        let s = r.to_string();
        assert!(s.contains("pcons"), "{s}");
        assert!(s.contains('1') && s.contains("20"), "{s}");
    }

    #[test]
    fn insertion_sort_sorts() {
        let mut m = machine(INSERTION_SORT);
        let l = Value::list([5, 3, 9, 1, 3].map(Value::Int));
        let r = m.call("isort", vec![l]).unwrap();
        let out: Vec<i64> = r.list_to_vec().unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(out, vec![1, 3, 3, 5, 9]);
    }

    #[test]
    fn array_max_finds_maximum() {
        let mut m = machine(ARRAY_MAX);
        let v = Value::int_array([3, 9, 2, 9, 1]);
        assert_eq!(m.call("amax", vec![v]).unwrap().as_int(), Some(9));
        let single = Value::int_array([-4]);
        assert_eq!(m.call("amax", vec![single]).unwrap().as_int(), Some(-4));
    }

    #[test]
    fn array_reverse_reverses() {
        let mut m = machine(ARRAY_REVERSE);
        for data in [vec![], vec![1], vec![1, 2], vec![1, 2, 3, 4, 5]] {
            let v = Value::int_array(data.iter().copied());
            m.call("arev", vec![v.clone()]).unwrap();
            let mut expect = data.clone();
            expect.reverse();
            assert_eq!(v.int_array_to_vec().unwrap(), expect);
        }
    }

    #[test]
    fn row_sums_sums_rows() {
        let mut m = machine(ROW_SUMS);
        let mat = Value::array(vec![
            Value::int_array([1, 2, 3]),
            Value::int_array([4, 5, 6]),
            Value::int_array([7, 8, 9]),
        ]);
        let r = m.call("rowsums", vec![mat]).unwrap();
        assert_eq!(r.int_array_to_vec().unwrap(), vec![6, 15, 24]);
    }

    #[test]
    fn heapsort_sorts() {
        let mut m = machine(HEAPSORT);
        for (i, data) in [
            vec![],
            vec![1],
            vec![2, 1],
            vec![5, 3, 9, 1, 3, 9, 0],
            (0..60).rev().collect::<Vec<i64>>(),
        ]
        .into_iter()
        .enumerate()
        {
            let v = Value::int_array(data.iter().copied());
            m.call("heapsort", vec![v.clone()]).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(v.int_array_to_vec().unwrap(), expect, "case {i}");
        }
        // Random data too.
        let mut rng = dml_eval::XorShift::new(5);
        let data = rng.int_vec(300, 1000);
        let v = Value::int_array(data.iter().copied());
        m.call("heapsort", vec![v.clone()]).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(v.int_array_to_vec().unwrap(), expect);
    }

    #[test]
    fn lower_bound_matches_std() {
        let mut m = machine(LOWER_BOUND);
        let data = [1i64, 3, 3, 7, 10];
        let v = Value::int_array(data.iter().copied());
        for key in [0i64, 1, 2, 3, 4, 7, 10, 11] {
            let r = m
                .call("lower_bound", vec![pair(v.clone(), Value::Int(key))])
                .unwrap()
                .as_int()
                .unwrap();
            let expect = data.partition_point(|x| *x < key) as i64;
            assert_eq!(r, expect, "key {key}");
        }
    }
}
