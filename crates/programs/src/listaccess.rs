//! List access: fetch the first sixteen elements of a random list,
//! repeatedly (paper: 2^20 total accesses). This is the benchmark whose
//! *tag* checks `nth` eliminates.

use crate::BenchProgram;
use dml_eval::{Value, XorShift};
use std::rc::Rc;

/// The DML source.
pub const SOURCE: &str = r#"
fun listaccess(l, rounds) = let
  fun inner(i, acc) =
    if i < 16 then inner(i+1, acc + nth(l, i)) else acc
  where inner <| {i:nat | i <= 16} int(i) * int -> int
  fun outer(r, acc) =
    if r > 0 then outer(r - 1, acc + inner(0, 0)) else acc
  where outer <| {r:int | r >= 0} int(r) * int -> int
in
  outer(rounds, 0)
end
where listaccess <| {n:nat | n >= 16} {r:nat} int list(n) * int(r) -> int
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram = BenchProgram {
    name: "list access",
    source: SOURCE,
    workload: "access the first 16 elements of a random list, 2^20 / 16 rounds (paper)",
};

/// Builds a random list of `n ≥ 16` elements.
pub fn workload(n: usize, seed: u64) -> Vec<i64> {
    assert!(n >= 16, "the benchmark requires at least 16 elements");
    XorShift::new(seed).int_vec(n, 1000)
}

/// Builds the `(list, rounds)` argument.
pub fn args(data: &[i64], rounds: i64) -> Value {
    Value::Tuple(Rc::new(vec![
        Value::list(data.iter().copied().map(Value::Int)),
        Value::Int(rounds),
    ]))
}

/// Reference result.
pub fn reference(data: &[i64], rounds: i64) -> i64 {
    data[..16].iter().sum::<i64>() * rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn sums_first_sixteen() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let data = workload(40, 21);
        let r = m.call("listaccess", vec![args(&data, 5)]).unwrap();
        assert_eq!(r.as_int(), Some(reference(&data, 5)));
        assert_eq!(m.counters.tag_checks_executed, 5 * 16);
    }

    #[test]
    fn zero_rounds() {
        let ast = dml_syntax::parse_program(SOURCE).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let data = workload(16, 22);
        let r = m.call("listaccess", vec![args(&data, 0)]).unwrap();
        assert_eq!(r.as_int(), Some(0));
    }
}
