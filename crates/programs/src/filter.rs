//! §2.4: the filter function with an existentially quantified result
//! length (`[n:nat | n <= m] 'a list(n)`).

use crate::BenchProgram;
use dml_eval::Value;

/// The DML source.
pub const SOURCE: &str = r#"
fun filter p l = case l of
    nil => nil
  | x :: xs => if p(x) then x :: filter p xs else filter p xs
where filter <| {m:nat} ('a -> bool) -> 'a list(m) -> [n:nat | n <= m] 'a list(n)
"#;

/// Program metadata.
pub const PROGRAM: BenchProgram =
    BenchProgram { name: "filter", source: SOURCE, workload: "filtering a list with a predicate" };

/// Builds the input list `[0..n)`.
pub fn workload(n: usize) -> Value {
    Value::list((0..n as i64).map(Value::Int))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_eval::{CheckConfig, Machine};

    #[test]
    fn filters_with_a_predicate() {
        let src = format!("{SOURCE}\nfun evens(l) = filter (fn x => x mod 2 = 0) l");
        let ast = dml_syntax::parse_program(&src).unwrap();
        let mut m = Machine::load(&ast, CheckConfig::checked()).unwrap();
        let r = m.call("evens", vec![workload(10)]).unwrap();
        let out: Vec<i64> = r.list_to_vec().unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }
}
