//! Run-time values.

use dml_syntax::ast::Pat;
use dml_syntax::Expr;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A run-time value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Machine integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// The unit value.
    Unit,
    /// Tuple (length ≥ 2).
    Tuple(Rc<Vec<Value>>),
    /// Datatype constructor application (`nil`, `x :: xs`, `SOME v`, ...).
    Con(Rc<str>, Option<Rc<Value>>),
    /// Mutable array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// A function closure: an index into the machine's closure arena.
    /// (Closures are arena-allocated rather than `Rc`-shared because a
    /// recursive closure's captured environment refers back to the closure
    /// itself — an `Rc` cycle that would leak; see `interp::Machine`.)
    Closure(ClosureId),
    /// A partial application of a multi-parameter (curried) closure.
    Partial(ClosureId, Rc<Vec<Value>>),
    /// A unary datatype constructor used as a first-class function.
    ConFn(Rc<str>),
    /// A built-in primitive, applied by name.
    Prim(&'static str),
}

/// An index into the machine's closure arena.
pub type ClosureId = u32;

impl Value {
    /// Builds a list value from a vector.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        let items: Vec<Value> = items.into_iter().collect();
        let mut acc = Value::Con("nil".into(), None);
        for v in items.into_iter().rev() {
            acc = Value::Con("::".into(), Some(Rc::new(Value::Tuple(Rc::new(vec![v, acc])))));
        }
        acc
    }

    /// Builds an array value from a vector.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Builds an integer array.
    pub fn int_array(items: impl IntoIterator<Item = i64>) -> Value {
        Value::array(items.into_iter().map(Value::Int).collect())
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Converts a list value back into a vector (for assertions in tests).
    pub fn list_to_vec(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Con(ref name, None) if &**name == "nil" => return Some(out),
                Value::Con(ref name, Some(ref arg)) if &**name == "::" => match arg.as_ref() {
                    Value::Tuple(pair) if pair.len() == 2 => {
                        out.push(pair[0].clone());
                        cur = pair[1].clone();
                    }
                    _ => return None,
                },
                _ => return None,
            }
        }
    }

    /// Extracts an integer array's contents.
    pub fn int_array_to_vec(&self) -> Option<Vec<i64>> {
        match self {
            Value::Array(cells) => cells.borrow().iter().map(Value::as_int).collect(),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Unit => write!(f, "()"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (k, v) in vs.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Con(name, None) => write!(f, "{name}"),
            Value::Con(name, Some(arg)) if &**name == "::" => {
                // Render lists with the usual bracket syntax.
                match self.list_to_vec() {
                    Some(items) => {
                        write!(f, "[")?;
                        for (k, v) in items.iter().enumerate() {
                            if k > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, "]")
                    }
                    None => write!(f, ":: {arg}"),
                }
            }
            Value::Con(name, Some(arg)) => write!(f, "{name} {arg}"),
            Value::Array(cells) => {
                write!(f, "[|")?;
                for (k, v) in cells.borrow().iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "|]")
            }
            Value::Closure(id) => write!(f, "<fun #{id}>"),
            Value::Partial(id, args) => write!(f, "<fun #{id}/{}>", args.len()),
            Value::ConFn(name) => write!(f, "<con {name}>"),
            Value::Prim(name) => write!(f, "<prim {name}>"),
        }
    }
}

/// Structural equality used by tests (closures/prims are never equal).
pub fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Unit, Value::Unit) => true,
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| value_eq(x, y))
        }
        (Value::Con(n, None), Value::Con(m, None)) => n == m,
        (Value::Con(n, Some(x)), Value::Con(m, Some(y))) => n == m && value_eq(x, y),
        (Value::Array(x), Value::Array(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| value_eq(a, b))
        }
        _ => false,
    }
}

/// Matches a value against a pattern, extending `bindings` on success.
///
/// `is_con` distinguishes nullary constructor patterns (which the parser
/// cannot tell apart from variables) from genuine variable bindings.
pub fn match_pattern(
    p: &Pat,
    v: &Value,
    is_con: &dyn Fn(&str) -> bool,
    bindings: &mut Vec<(String, Value)>,
) -> bool {
    match (p, v) {
        (Pat::Wild(_), _) => true,
        (Pat::Int(n, _), Value::Int(m)) => n == m,
        (Pat::Bool(b, _), Value::Bool(c)) => b == c,
        (Pat::Tuple(ps, _), Value::Unit) => ps.is_empty(),
        (Pat::Tuple(ps, _), Value::Tuple(vs)) => {
            ps.len() == vs.len()
                && ps.iter().zip(vs.iter()).all(|(p, v)| match_pattern(p, v, is_con, bindings))
        }
        (Pat::Con(name, None, _), Value::Con(cname, None)) => name.name == **cname,
        (Pat::Con(name, Some(arg), _), Value::Con(cname, Some(carg))) => {
            name.name == **cname && match_pattern(arg, carg, is_con, bindings)
        }
        (Pat::Var(id), _) if is_con(&id.name) => {
            matches!(v, Value::Con(cname, None) if id.name == **cname)
        }
        (Pat::Var(id), _) => {
            bindings.push((id.name.clone(), v.clone()));
            true
        }
        (Pat::Anno(inner, _, _), _) => match_pattern(inner, v, is_con, bindings),
        _ => false,
    }
}

/// The body expression type re-exported for closure construction.
pub type Body = Expr;

/// Exhaustive-match helper: `true` if a value is a function-like value.
pub fn is_function(v: &Value) -> bool {
    matches!(v, Value::Closure(_) | Value::Partial(_, _) | Value::ConFn(_) | Value::Prim(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::ast::Ident;
    use dml_syntax::Span;

    #[test]
    fn list_round_trip() {
        let l = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let v = l.list_to_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].as_int(), Some(1));
        assert_eq!(l.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn array_display_and_eq() {
        let a = Value::int_array([1, 2]);
        let b = Value::int_array([1, 2]);
        let c = Value::int_array([1, 3]);
        assert!(value_eq(&a, &b));
        assert!(!value_eq(&a, &c));
        assert_eq!(a.to_string(), "[|1, 2|]");
    }

    #[test]
    fn match_tuple_pattern() {
        let p = Pat::Tuple(
            vec![Pat::Var(Ident::synth("x")), Pat::Int(2, Span::default())],
            Span::default(),
        );
        let v = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Int(2)]));
        let no_cons = |_: &str| false;
        let mut binds = Vec::new();
        assert!(match_pattern(&p, &v, &no_cons, &mut binds));
        assert_eq!(binds.len(), 1);
        assert_eq!(binds[0].0, "x");
        let v2 = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Int(3)]));
        assert!(!match_pattern(&p, &v2, &no_cons, &mut Vec::new()));
    }

    #[test]
    fn match_cons_pattern() {
        let p = Pat::Con(
            Ident::synth("::"),
            Some(Box::new(Pat::Tuple(
                vec![Pat::Var(Ident::synth("x")), Pat::Var(Ident::synth("xs"))],
                Span::default(),
            ))),
            Span::default(),
        );
        let v = Value::list([Value::Int(7)]);
        let mut binds = Vec::new();
        assert!(match_pattern(&p, &v, &|_| false, &mut binds));
        assert_eq!(binds[0].1.as_int(), Some(7));
        assert!(matches!(&binds[1].1, Value::Con(n, None) if &**n == "nil"));
    }

    #[test]
    fn nullary_con_pattern_via_var() {
        let p = Pat::Var(Ident::synth("nil"));
        let v = Value::Con("nil".into(), None);
        let is_con = |n: &str| n == "nil" || n == "LESS";
        let mut binds = Vec::new();
        assert!(match_pattern(&p, &v, &is_con, &mut binds));
        assert!(binds.is_empty(), "constructor patterns bind nothing");
        // A *different* nullary constructor must not match.
        let p2 = Pat::Var(Ident::synth("LESS"));
        assert!(!match_pattern(&p2, &v, &is_con, &mut Vec::new()));
    }

    #[test]
    fn unit_matches_empty_tuple_pattern() {
        let p = Pat::Tuple(vec![], Span::default());
        assert!(match_pattern(&p, &Value::Unit, &|_| false, &mut Vec::new()));
    }
}
