//! An instrumented interpreter for elaborated DML programs.
//!
//! The paper's evaluation compiles each benchmark twice — once with the
//! standard, *checked* array/list primitives and once with the unchecked
//! primitives of `Unsafe.Array`, legal only because dependent type-checking
//! proved every eliminated access safe (§4). This crate reproduces that
//! setup on an interpreter:
//!
//! * [`Machine`] evaluates a parsed program with a [`CheckConfig`] that
//!   says, per call site (identified by the application's source span,
//!   matching `dml-elab`'s obligation sites), whether the bound/tag check
//!   was proven and may be skipped.
//! * Checked accesses execute the bounds comparison (optionally repeated
//!   `check_cost` times, modelling platforms where a check is a larger
//!   fraction of an access — the knob that distinguishes the paper's
//!   Table 2 and Table 3 hardware); eliminated accesses skip it.
//! * [`Counters`] records exactly how many checks were executed and how
//!   many were eliminated, reproducing the "checks eliminated" columns.
//! * With [`CheckConfig::validate`] set, even "eliminated" accesses are
//!   verified and an out-of-bounds access aborts the run — the harness the
//!   property tests use to show that elimination never fires on an access
//!   that could fault.

pub mod counter;
pub mod error;
pub mod interp;
pub mod prims;
pub mod rng;
pub mod value;

pub use counter::Counters;
pub use error::EvalError;
pub use interp::{CheckConfig, Machine, Mode};
pub use rng::XorShift;
pub use value::Value;
