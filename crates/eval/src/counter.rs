//! Check accounting: how many bound/tag checks were executed vs eliminated.

use std::fmt;

/// Counters for dynamic checks, reproducing the "checks eliminated" columns
/// of the paper's Tables 2 and 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Array bound checks actually executed (checked primitives, or
    /// unproven sites in eliminated mode).
    pub array_checks_executed: u64,
    /// Array bound checks skipped because the site was proven safe.
    pub array_checks_eliminated: u64,
    /// The subset of executed array checks that are *residual*: the solver
    /// could not prove the site in eliminated mode, so its check stayed in
    /// the compiled program (graceful degradation). Explicitly-checked
    /// `*CK` primitives are not residual — they were never candidates for
    /// elimination.
    pub array_checks_residual: u64,
    /// List tag checks executed.
    pub tag_checks_executed: u64,
    /// List tag checks eliminated.
    pub tag_checks_eliminated: u64,
    /// The subset of executed tag checks that are residual (see
    /// [`Counters::array_checks_residual`]).
    pub tag_checks_residual: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Total checks executed (array + tag).
    pub fn executed(&self) -> u64 {
        self.array_checks_executed + self.tag_checks_executed
    }

    /// Total checks eliminated (array + tag).
    pub fn eliminated(&self) -> u64 {
        self.array_checks_eliminated + self.tag_checks_eliminated
    }

    /// Total residual checks executed (array + tag).
    pub fn residual(&self) -> u64 {
        self.array_checks_residual + self.tag_checks_residual
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "array checks: {} executed / {} eliminated; tag checks: {} executed / {} eliminated",
            self.array_checks_executed,
            self.array_checks_eliminated,
            self.tag_checks_executed,
            self.tag_checks_eliminated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut c = Counters {
            array_checks_executed: 3,
            array_checks_eliminated: 5,
            array_checks_residual: 2,
            tag_checks_executed: 1,
            tag_checks_eliminated: 2,
            tag_checks_residual: 1,
        };
        assert_eq!(c.executed(), 4);
        assert_eq!(c.eliminated(), 7);
        assert_eq!(c.residual(), 3);
        c.reset();
        assert_eq!(c, Counters::new());
    }
}
