//! Built-in primitives: the refined standard basis at run time.
//!
//! `sub`/`update`/`nth` are the *eliminable-check* primitives: their bound
//! check executes or is skipped according to the machine's
//! [`CheckConfig`](crate::interp::CheckConfig).
//! `subCK`/`updateCK`/`nthCK` always check (the escape hatch of the KMP
//! example). Arithmetic follows SML semantics (`div`/`mod` floor).

use crate::error::EvalError;
use crate::interp::{Machine, Mode};
use crate::value::Value;
use dml_syntax::Span;

/// All primitive names.
pub const PRIM_NAMES: &[&str] = &[
    "+",
    "-",
    "*",
    "div",
    "mod",
    "neg",
    "iabs",
    "imin",
    "imax",
    "=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "not",
    "length",
    "sub",
    "update",
    "array",
    "subCK",
    "updateCK",
    "llength",
    "nth",
    "nthCK",
    "print_int",
];

/// `true` if `name` names a primitive.
pub fn is_prim(name: &str) -> bool {
    PRIM_NAMES.contains(&name)
}

/// Returns the interned static name (panics if not a primitive; callers
/// check [`is_prim`] first).
pub fn intern(name: &str) -> &'static str {
    PRIM_NAMES
        .iter()
        .find(|n| **n == name)
        .copied()
        .unwrap_or_else(|| panic!("`{name}` is not a primitive"))
}

fn int2(arg: &Value, span: Span) -> Result<(i64, i64), EvalError> {
    match arg {
        Value::Tuple(vs) if vs.len() == 2 => match (&vs[0], &vs[1]) {
            (Value::Int(a), Value::Int(b)) => Ok((*a, *b)),
            _ => Err(EvalError::Type("expected a pair of integers".into(), span)),
        },
        _ => Err(EvalError::Type("expected a pair of integers".into(), span)),
    }
}

fn int1(arg: &Value, span: Span) -> Result<i64, EvalError> {
    arg.as_int().ok_or_else(|| EvalError::Type("expected an integer".into(), span))
}

/// SML flooring division.
fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Executes (or skips) a bound/tag check for index `i` against `len`.
/// Returns `true` if the access may proceed.
fn run_check(
    m: &mut Machine,
    i: i64,
    len: usize,
    site: Span,
    always_check: bool,
    is_array: bool,
) -> Result<(), EvalError> {
    let skip =
        !always_check && m.config.mode == Mode::Eliminated && m.config.proven.contains(&site);
    if skip {
        if is_array {
            m.counters.array_checks_eliminated += 1;
        } else {
            m.counters.tag_checks_eliminated += 1;
        }
        if m.config.validate && (i < 0 || i as usize >= len) {
            return Err(EvalError::UnsoundElimination { index: i, len, site });
        }
        return Ok(());
    }
    if is_array {
        m.counters.array_checks_executed += 1;
    } else {
        m.counters.tag_checks_executed += 1;
    }
    // In eliminated mode an executed non-`*CK` check is a *residual* check:
    // the solver left it in the program instead of proving it away.
    if !always_check && m.config.mode == Mode::Eliminated {
        if is_array {
            m.counters.array_checks_residual += 1;
        } else {
            m.counters.tag_checks_residual += 1;
        }
    }
    // The abstract cost model charges a fixed 4 ops per executed check
    // (compare, compare, branch, branch) regardless of the wall-clock
    // `check_cost` knob, so the deterministic op-gain metric reflects a
    // native-like check/access ratio.
    m.ops += 4;
    // The check itself, repeated `check_cost` times with a data dependency
    // to model platforms where a bound check is a larger fraction of an
    // access (the interpreter's per-access overhead is ~1µs, so `cost`
    // iterations of ~1ns each make a check cost/1000 of an access).
    let mut fail = false;
    let mut x = i;
    for _ in 0..m.config.check_cost.max(1) {
        x = std::hint::black_box(x);
        fail |= x < 0 || x as usize >= len;
    }
    if fail {
        if is_array {
            Err(EvalError::BoundsViolation { index: i, len, site })
        } else {
            Err(EvalError::TagViolation { index: i, site })
        }
    } else {
        Ok(())
    }
}

/// Applies primitive `name` to `arg`.
///
/// # Errors
///
/// Returns bound/tag violations, division by zero, or dynamic type errors
/// (the latter unreachable after phase-1 checking).
pub fn apply(m: &mut Machine, name: &str, arg: Value, span: Span) -> Result<Value, EvalError> {
    match name {
        "+" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Int(a.wrapping_add(b)))
        }
        "-" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Int(a.wrapping_sub(b)))
        }
        "*" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Int(a.wrapping_mul(b)))
        }
        "div" => {
            let (a, b) = int2(&arg, span)?;
            if b == 0 {
                return Err(EvalError::DivisionByZero(span));
            }
            Ok(Value::Int(floor_div(a, b)))
        }
        "mod" => {
            let (a, b) = int2(&arg, span)?;
            if b == 0 {
                return Err(EvalError::DivisionByZero(span));
            }
            Ok(Value::Int(a - b * floor_div(a, b)))
        }
        "neg" => Ok(Value::Int(-int1(&arg, span)?)),
        "iabs" => Ok(Value::Int(int1(&arg, span)?.abs())),
        "imin" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Int(a.min(b)))
        }
        "imax" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Int(a.max(b)))
        }
        "=" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a == b))
        }
        "<>" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a != b))
        }
        "<" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a < b))
        }
        "<=" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a <= b))
        }
        ">" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a > b))
        }
        ">=" => {
            let (a, b) = int2(&arg, span)?;
            Ok(Value::Bool(a >= b))
        }
        "not" => match arg {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EvalError::Type(format!("not on `{other}`"), span)),
        },
        "length" => match arg {
            Value::Array(cells) => Ok(Value::Int(cells.borrow().len() as i64)),
            other => Err(EvalError::Type(format!("length on `{other}`"), span)),
        },
        "array" => match arg {
            Value::Tuple(vs) if vs.len() == 2 => {
                let n = int1(&vs[0], span)?;
                if n < 0 {
                    return Err(EvalError::NegativeArraySize(n, span));
                }
                Ok(Value::array(vec![vs[1].clone(); n as usize]))
            }
            other => Err(EvalError::Type(format!("array on `{other}`"), span)),
        },
        "sub" | "subCK" => match arg {
            Value::Tuple(vs) if vs.len() == 2 => {
                let i = int1(&vs[1], span)?;
                match &vs[0] {
                    Value::Array(cells) => {
                        let len = cells.borrow().len();
                        run_check(m, i, len, span, name == "subCK", true)?;
                        cells
                            .borrow()
                            .get(i as usize)
                            .cloned()
                            .ok_or(EvalError::UnsoundElimination { index: i, len, site: span })
                    }
                    other => Err(EvalError::Type(format!("sub on `{other}`"), span)),
                }
            }
            other => Err(EvalError::Type(format!("sub on `{other}`"), span)),
        },
        "update" | "updateCK" => match arg {
            Value::Tuple(vs) if vs.len() == 3 => {
                let i = int1(&vs[1], span)?;
                match &vs[0] {
                    Value::Array(cells) => {
                        let len = cells.borrow().len();
                        run_check(m, i, len, span, name == "updateCK", true)?;
                        match cells.borrow_mut().get_mut(i as usize) {
                            Some(cell) => {
                                *cell = vs[2].clone();
                                Ok(Value::Unit)
                            }
                            None => {
                                Err(EvalError::UnsoundElimination { index: i, len, site: span })
                            }
                        }
                    }
                    other => Err(EvalError::Type(format!("update on `{other}`"), span)),
                }
            }
            other => Err(EvalError::Type(format!("update on `{other}`"), span)),
        },
        "llength" => {
            let mut n = 0i64;
            let mut cur = arg;
            loop {
                match cur {
                    Value::Con(ref c, None) if &**c == "nil" => return Ok(Value::Int(n)),
                    Value::Con(ref c, Some(ref pair)) if &**c == "::" => match pair.as_ref() {
                        Value::Tuple(vs) if vs.len() == 2 => {
                            n += 1;
                            cur = vs[1].clone();
                        }
                        _ => return Err(EvalError::Type("malformed list".into(), span)),
                    },
                    other => return Err(EvalError::Type(format!("llength on `{other}`"), span)),
                }
            }
        }
        "nth" | "nthCK" => match arg {
            Value::Tuple(vs) if vs.len() == 2 => {
                let i = int1(&vs[1], span)?;
                // One tag check per access, as in the paper's list-access
                // benchmark; the length is only computed when checking.
                let always = name == "nthCK";
                let checking =
                    always || m.config.mode == Mode::Checked || !m.config.proven.contains(&span);
                let len = if checking || m.config.validate {
                    list_len(&vs[0])
                        .ok_or_else(|| EvalError::Type("nth on a non-list".into(), span))?
                } else {
                    usize::MAX
                };
                run_check(m, i, len, span, always, false)?;
                nth_unchecked(&vs[0], i, span)
            }
            other => Err(EvalError::Type(format!("nth on `{other}`"), span)),
        },
        "print_int" => Ok(Value::Unit),
        other => Err(EvalError::Type(format!("unknown primitive `{other}`"), span)),
    }
}

fn list_len(v: &Value) -> Option<usize> {
    let mut n = 0usize;
    let mut cur = v.clone();
    loop {
        match cur {
            Value::Con(ref c, None) if &**c == "nil" => return Some(n),
            Value::Con(ref c, Some(ref pair)) if &**c == "::" => match pair.as_ref() {
                Value::Tuple(vs) if vs.len() == 2 => {
                    n += 1;
                    cur = vs[1].clone();
                }
                _ => return None,
            },
            _ => return None,
        }
    }
}

fn nth_unchecked(v: &Value, i: i64, span: Span) -> Result<Value, EvalError> {
    let mut cur = v.clone();
    let mut k = i;
    loop {
        match cur {
            Value::Con(ref c, Some(ref pair)) if &**c == "::" => match pair.as_ref() {
                Value::Tuple(vs) if vs.len() == 2 => {
                    if k == 0 {
                        return Ok(vs[0].clone());
                    }
                    k -= 1;
                    cur = vs[1].clone();
                }
                _ => return Err(EvalError::Type("malformed list".into(), span)),
            },
            _ => return Err(EvalError::TagViolation { index: i, site: span }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CheckConfig;
    use dml_syntax::parse_program;
    use std::rc::Rc;

    fn empty_machine() -> Machine {
        let p = parse_program("").unwrap();
        Machine::load(&p, CheckConfig::checked()).unwrap()
    }

    fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(Rc::new(vec![a, b]))
    }

    #[test]
    fn arithmetic_prims() {
        let mut m = empty_machine();
        let s = Span::default();
        assert_eq!(
            apply(&mut m, "+", pair(Value::Int(2), Value::Int(3)), s).unwrap().as_int(),
            Some(5)
        );
        assert_eq!(
            apply(&mut m, "imin", pair(Value::Int(2), Value::Int(-3)), s).unwrap().as_int(),
            Some(-3)
        );
        assert_eq!(apply(&mut m, "neg", Value::Int(7), s).unwrap().as_int(), Some(-7));
        assert_eq!(apply(&mut m, "iabs", Value::Int(-7), s).unwrap().as_int(), Some(7));
    }

    #[test]
    fn floor_div_mod() {
        let mut m = empty_machine();
        let s = Span::default();
        assert_eq!(
            apply(&mut m, "div", pair(Value::Int(-7), Value::Int(2)), s).unwrap().as_int(),
            Some(-4)
        );
        assert_eq!(
            apply(&mut m, "mod", pair(Value::Int(-7), Value::Int(2)), s).unwrap().as_int(),
            Some(1)
        );
    }

    #[test]
    fn array_prims_and_counters() {
        let mut m = empty_machine();
        let s = Span::new(1, 5);
        let arr = apply(&mut m, "array", pair(Value::Int(4), Value::Int(0)), s).unwrap();
        assert_eq!(apply(&mut m, "length", arr.clone(), s).unwrap().as_int(), Some(4));
        apply(
            &mut m,
            "update",
            Value::Tuple(Rc::new(vec![arr.clone(), Value::Int(2), Value::Int(9)])),
            s,
        )
        .unwrap();
        let v = apply(&mut m, "sub", pair(arr.clone(), Value::Int(2)), s).unwrap();
        assert_eq!(v.as_int(), Some(9));
        assert_eq!(m.counters.array_checks_executed, 2);
        assert_eq!(m.counters.array_checks_eliminated, 0);
    }

    #[test]
    fn eliminated_mode_skips_proven_sites() {
        let mut m = empty_machine();
        let site = Span::new(10, 20);
        let mut proven = std::collections::HashSet::new();
        proven.insert(site);
        m.config = CheckConfig::eliminated(proven);
        let arr = Value::int_array([1, 2, 3]);
        let v = apply(&mut m, "sub", pair(arr.clone(), Value::Int(1)), site).unwrap();
        assert_eq!(v.as_int(), Some(2));
        assert_eq!(m.counters.array_checks_eliminated, 1);
        assert_eq!(m.counters.array_checks_executed, 0);
        // An unproven site still checks.
        let other = Span::new(30, 40);
        apply(&mut m, "sub", pair(arr, Value::Int(1)), other).unwrap();
        assert_eq!(m.counters.array_checks_executed, 1);
    }

    #[test]
    fn subck_always_checks() {
        let mut m = empty_machine();
        let site = Span::new(10, 20);
        let mut proven = std::collections::HashSet::new();
        proven.insert(site);
        m.config = CheckConfig::eliminated(proven);
        let arr = Value::int_array([1]);
        apply(&mut m, "subCK", pair(arr, Value::Int(0)), site).unwrap();
        assert_eq!(m.counters.array_checks_executed, 1);
        assert_eq!(m.counters.array_checks_eliminated, 0);
    }

    #[test]
    fn validation_catches_unsound_elimination() {
        let mut m = empty_machine();
        let site = Span::new(10, 20);
        let mut proven = std::collections::HashSet::new();
        proven.insert(site);
        m.config = CheckConfig::eliminated(proven).with_validation();
        let arr = Value::int_array([1]);
        let err = apply(&mut m, "sub", pair(arr, Value::Int(5)), site).unwrap_err();
        assert!(matches!(err, EvalError::UnsoundElimination { .. }));
    }

    #[test]
    fn list_prims() {
        let mut m = empty_machine();
        let s = Span::default();
        let l = Value::list([Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(apply(&mut m, "llength", l.clone(), s).unwrap().as_int(), Some(3));
        assert_eq!(
            apply(&mut m, "nth", pair(l.clone(), Value::Int(1)), s).unwrap().as_int(),
            Some(20)
        );
        assert_eq!(m.counters.tag_checks_executed, 1);
        let err = apply(&mut m, "nth", pair(l, Value::Int(9)), s).unwrap_err();
        assert!(matches!(err, EvalError::TagViolation { index: 9, .. }));
    }

    #[test]
    fn negative_array_size_rejected() {
        let mut m = empty_machine();
        let s = Span::default();
        let err = apply(&mut m, "array", pair(Value::Int(-1), Value::Int(0)), s).unwrap_err();
        assert!(matches!(err, EvalError::NegativeArraySize(-1, _)));
    }

    #[test]
    fn check_cost_repeats_comparison() {
        // Behaviourally invisible; just exercise the loop.
        let mut m = empty_machine();
        m.config = CheckConfig::checked().with_check_cost(8);
        let s = Span::default();
        let arr = Value::int_array([1, 2]);
        assert!(apply(&mut m, "sub", pair(arr, Value::Int(1)), s).is_ok());
        assert_eq!(m.counters.array_checks_executed, 1);
    }
}
