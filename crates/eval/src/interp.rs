//! The tree-walking interpreter.

use crate::counter::Counters;
use crate::error::EvalError;
use crate::prims;
use crate::value::{match_pattern, ClosureId, Value};
use dml_syntax::ast as sast;
use dml_syntax::Span;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Whether proven checks are actually skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every bound/tag check executes (the paper's "with checks" column).
    Checked,
    /// Checks at proven sites are skipped (the "without checks" column).
    Eliminated,
}

/// Configuration for check behaviour.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Checked vs eliminated execution.
    pub mode: Mode,
    /// Call sites (application spans) whose bound obligations were proven.
    pub proven: HashSet<Span>,
    /// How many times the bounds comparison is repeated per check — the
    /// platform cost model distinguishing the paper's Table 2 (DEC Alpha /
    /// SML-NJ) from Table 3 (SPARC / MLWorks). `1` is the physical
    /// interpreter cost.
    pub check_cost: u32,
    /// Verify even eliminated accesses, turning any out-of-bounds
    /// "unchecked" access into [`EvalError::UnsoundElimination`].
    pub validate: bool,
}

impl CheckConfig {
    /// Fully-checked execution (no elimination).
    pub fn checked() -> CheckConfig {
        CheckConfig { mode: Mode::Checked, proven: HashSet::new(), check_cost: 1, validate: false }
    }

    /// Eliminated execution for the given proven sites.
    pub fn eliminated(proven: HashSet<Span>) -> CheckConfig {
        CheckConfig { mode: Mode::Eliminated, proven, check_cost: 1, validate: false }
    }

    /// Sets the per-check cost factor.
    pub fn with_check_cost(mut self, cost: u32) -> CheckConfig {
        self.check_cost = cost;
        self
    }

    /// Enables validation of eliminated accesses.
    pub fn with_validation(mut self) -> CheckConfig {
        self.validate = true;
        self
    }
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig::checked()
    }
}

/// A persistent (linked) environment.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: String,
    value: Value,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: impl Into<String>, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode { name: name.into(), value, next: self.clone() })))
    }

    /// Looks up a name.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        let mut cur = self;
        while let Env(Some(node)) = cur {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }
}

/// An arena-allocated closure: clauses plus captured environment. The
/// environment is backpatched after a recursive `fun` group is built
/// (Landin's knot) — arena indices instead of `Rc` back-references keep the
/// heap cycle-free, so machines release all memory when dropped.
#[derive(Debug)]
pub struct ClosureData {
    /// Function name, for diagnostics ("fn" for anonymous functions).
    pub name: String,
    /// Clauses: parameter patterns (curried) and body (shared with the
    /// machine's clause cache, so re-evaluating a `let fun` is cheap).
    pub clauses: Rc<Vec<sast::Clause>>,
    /// Captured environment.
    pub env: Env,
}

/// The interpreter: global environment + check configuration + counters.
#[derive(Debug)]
pub struct Machine {
    globals: Env,
    cons: HashSet<String>,
    closures: Vec<ClosureData>,
    clause_cache: HashMap<Span, Rc<Vec<sast::Clause>>>,
    /// Check behaviour; mutable so harnesses can switch modes between runs.
    pub config: CheckConfig,
    /// Check counters.
    pub counters: Counters,
    /// Deterministic abstract cost: one unit per expression evaluated and
    /// per application, plus a fixed 4 units per executed bound/tag check.
    /// Unlike wall-clock time this is bit-for-bit reproducible, so the
    /// Table 2/3 "op gain" column has no scheduler noise.
    pub ops: u64,
    fuel: Option<u64>,
}

impl Machine {
    /// Loads a program: registers its datatypes and evaluates its top-level
    /// declarations.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if a top-level `val` fails to evaluate.
    pub fn load(program: &sast::Program, config: CheckConfig) -> Result<Machine, EvalError> {
        let mut cons: HashSet<String> =
            ["nil", "::", "LESS", "EQUAL", "GREATER"].iter().map(|s| s.to_string()).collect();
        for d in &program.decls {
            if let sast::Decl::Datatype(dd) = d {
                for c in &dd.cons {
                    cons.insert(c.name.name.clone());
                }
            }
        }
        let mut m = Machine {
            globals: Env::new(),
            cons,
            closures: Vec::new(),
            clause_cache: HashMap::new(),
            config,
            counters: Counters::new(),
            ops: 0,
            fuel: None,
        };
        let mut env = m.globals.clone();
        for d in &program.decls {
            env = m.eval_decl(d, env)?;
        }
        m.globals = env;
        Ok(m)
    }

    /// Limits evaluation steps (for property tests on possibly-looping
    /// programs).
    pub fn with_fuel(mut self, fuel: u64) -> Machine {
        self.fuel = Some(fuel);
        self
    }

    /// `true` if `name` is a datatype constructor.
    pub fn is_constructor(&self, name: &str) -> bool {
        self.cons.contains(name)
    }

    /// Looks up a global binding.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals.lookup(name).cloned()
    }

    /// Calls a global function with the given (curried) arguments.
    ///
    /// # Errors
    ///
    /// Propagates any run-time error from the callee.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let mut f = self
            .global(name)
            .ok_or_else(|| EvalError::Unbound(name.to_string(), Span::default()))?;
        for a in args {
            f = self.apply(f, a, Span::default())?;
        }
        Ok(f)
    }

    /// Resets the check counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn burn(&mut self) -> Result<(), EvalError> {
        if let Some(f) = &mut self.fuel {
            if *f == 0 {
                return Err(EvalError::OutOfFuel);
            }
            *f -= 1;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Declarations.
    // -----------------------------------------------------------------

    fn eval_decl(&mut self, d: &sast::Decl, env: Env) -> Result<Env, EvalError> {
        match d {
            sast::Decl::Datatype(_)
            | sast::Decl::Typeref(_)
            | sast::Decl::Assert(_)
            | sast::Decl::Exception(_) => Ok(env),
            sast::Decl::Fun(funs) => Ok(self.bind_fun_group(funs, env)),
            sast::Decl::Val(v) => {
                let value = self.eval(&v.expr, &env)?;
                let mut bindings = Vec::new();
                let cons = self.cons.clone();
                if !match_pattern(&v.pat, &value, &|n| cons.contains(n), &mut bindings) {
                    return Err(EvalError::MatchFailure(v.span));
                }
                let mut env = env;
                for (n, val) in bindings {
                    env = env.bind(n, val);
                }
                Ok(env)
            }
        }
    }

    /// Shared (cached) clause vector for a function declaration or `fn`
    /// expression, keyed by its source span.
    fn cached_clauses(
        &mut self,
        key: Span,
        build: impl FnOnce() -> Vec<sast::Clause>,
    ) -> Rc<Vec<sast::Clause>> {
        self.clause_cache.entry(key).or_insert_with(|| Rc::new(build())).clone()
    }

    fn alloc_closure(
        &mut self,
        name: String,
        clauses: Rc<Vec<sast::Clause>>,
        env: Env,
    ) -> ClosureId {
        let id = self.closures.len() as ClosureId;
        self.closures.push(ClosureData { name, clauses, env });
        id
    }

    /// Builds the closures of a (mutually recursive) `fun` group and ties
    /// the recursive knot by backpatching their captured environments.
    fn bind_fun_group(&mut self, funs: &[sast::FunDecl], env: Env) -> Env {
        let ids: Vec<ClosureId> = funs
            .iter()
            .map(|f| {
                let clauses = self.cached_clauses(f.name.span, || f.clauses.clone());
                self.alloc_closure(f.name.name.clone(), clauses, env.clone())
            })
            .collect();
        let mut new_env = env;
        for (f, id) in funs.iter().zip(&ids) {
            new_env = new_env.bind(f.name.name.clone(), Value::Closure(*id));
        }
        for id in ids {
            self.closures[id as usize].env = new_env.clone();
        }
        new_env
    }

    // -----------------------------------------------------------------
    // Expressions.
    // -----------------------------------------------------------------

    /// Evaluates an expression in an environment.
    ///
    /// # Errors
    ///
    /// Returns the first run-time error.
    pub fn eval(&mut self, e: &sast::Expr, env: &Env) -> Result<Value, EvalError> {
        self.burn()?;
        self.ops += 1;
        match e {
            sast::Expr::Var(id) => {
                if let Some(v) = env.lookup(&id.name) {
                    return Ok(v.clone());
                }
                if self.cons.contains(&id.name) {
                    // Nullary constructors are values; unary ones are
                    // functions. We cannot know the arity here, so nullary
                    // is the default and `ConFn` is produced on demand by
                    // application of a constructor name — instead, produce
                    // `ConFn` and let pattern/match code treat a `ConFn`
                    // that is never applied as the nullary constructor.
                    // Simpler and correct: unary constructors only ever
                    // appear applied, so a bare constructor name denotes
                    // the nullary value.
                    return Ok(Value::Con(Rc::from(id.name.as_str()), None));
                }
                if prims::is_prim(&id.name) {
                    return Ok(Value::Prim(prims::intern(&id.name)));
                }
                Err(EvalError::Unbound(id.name.clone(), id.span))
            }
            sast::Expr::Int(n, _) => Ok(Value::Int(*n)),
            sast::Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            sast::Expr::App(f, a, span) => {
                // Constructor application is recognised syntactically so
                // that unary constructors work as expected.
                if let sast::Expr::Var(id) = f.as_ref() {
                    if self.cons.contains(&id.name) && env.lookup(&id.name).is_none() {
                        let arg = self.eval(a, env)?;
                        return Ok(Value::Con(Rc::from(id.name.as_str()), Some(Rc::new(arg))));
                    }
                }
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                self.apply(fv, av, *span)
            }
            sast::Expr::Tuple(es, _) => {
                if es.is_empty() {
                    return Ok(Value::Unit);
                }
                let vs = es.iter().map(|x| self.eval(x, env)).collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Tuple(Rc::new(vs)))
            }
            sast::Expr::If(c, t, f, span) => match self.eval(c, env)? {
                Value::Bool(true) => self.eval(t, env),
                Value::Bool(false) => self.eval(f, env),
                other => {
                    Err(EvalError::Type(format!("if condition evaluated to `{other}`"), *span))
                }
            },
            sast::Expr::Case(scrut, arms, span) => {
                let v = self.eval(scrut, env)?;
                let cons = self.cons.clone();
                for (p, body) in arms {
                    let mut bindings = Vec::new();
                    if match_pattern(p, &v, &|n| cons.contains(n), &mut bindings) {
                        let mut aenv = env.clone();
                        for (n, val) in bindings {
                            aenv = aenv.bind(n, val);
                        }
                        return self.eval(body, &aenv);
                    }
                }
                Err(EvalError::MatchFailure(*span))
            }
            sast::Expr::Let(decls, body, _) => {
                let mut lenv = env.clone();
                for d in decls {
                    lenv = self.eval_decl(d, lenv)?;
                }
                self.eval(body, &lenv)
            }
            sast::Expr::Fn(arms, span) => {
                let clauses = self.cached_clauses(*span, || {
                    arms.iter()
                        .map(|(p, b)| sast::Clause { params: vec![p.clone()], body: b.clone() })
                        .collect()
                });
                Ok(Value::Closure(self.alloc_closure("fn".to_string(), clauses, env.clone())))
            }
            sast::Expr::Seq(es, _) => {
                let mut last = Value::Unit;
                for x in es {
                    last = self.eval(x, env)?;
                }
                Ok(last)
            }
            sast::Expr::Anno(inner, _, _) => self.eval(inner, env),
            sast::Expr::Andalso(a, b, span) => match self.eval(a, env)? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) => self.eval(b, env),
                other => Err(EvalError::Type(format!("andalso on `{other}`"), *span)),
            },
            sast::Expr::Orelse(a, b, span) => match self.eval(a, env)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) => self.eval(b, env),
                other => Err(EvalError::Type(format!("orelse on `{other}`"), *span)),
            },
            sast::Expr::Raise(name, span) => Err(EvalError::Raised(name.name.clone(), *span)),
            sast::Expr::Handle(body, arms, _) => match self.eval(body, env) {
                Ok(v) => Ok(v),
                Err(e) => {
                    if let Some(exn) = e.exception_name() {
                        for (name, handler) in arms {
                            if name.name == exn {
                                return self.eval(handler, env);
                            }
                        }
                    }
                    Err(e)
                }
            },
        }
    }

    /// Applies a function value to one argument.
    ///
    /// # Errors
    ///
    /// Returns a run-time error from the callee, or a type error for
    /// non-functions.
    pub fn apply(&mut self, f: Value, arg: Value, span: Span) -> Result<Value, EvalError> {
        self.burn()?;
        self.ops += 1;
        match f {
            Value::Prim(name) => prims::apply(self, name, arg, span),
            Value::ConFn(name) => Ok(Value::Con(name, Some(Rc::new(arg)))),
            Value::Closure(id) => {
                let arity = self.arity(id);
                if arity == 1 {
                    self.run_clauses(id, &[arg], span)
                } else {
                    Ok(Value::Partial(id, Rc::new(vec![arg])))
                }
            }
            Value::Partial(id, args) => {
                let arity = self.arity(id);
                let mut all = args.as_ref().clone();
                all.push(arg);
                if all.len() == arity {
                    self.run_clauses(id, &all, span)
                } else {
                    Ok(Value::Partial(id, Rc::new(all)))
                }
            }
            other => Err(EvalError::Type(format!("applied non-function `{other}`"), span)),
        }
    }

    fn arity(&self, id: ClosureId) -> usize {
        self.closures[id as usize].clauses.first().map(|cl| cl.params.len()).unwrap_or(1)
    }

    /// Runs a saturated closure call with **tail-call optimisation**: when
    /// a clause body ends in another saturated closure call, the loop
    /// rebinds and continues instead of growing the Rust stack. This is
    /// what lets the benchmarks' tail-recursive loops iterate millions of
    /// times (`loop(i+1, n, ...)` in `dotprod`, the copy loop of `bcopy`).
    fn run_clauses(
        &mut self,
        c: ClosureId,
        args: &[Value],
        span: Span,
    ) -> Result<Value, EvalError> {
        let cons = self.cons.clone();
        let mut closure = c;
        let mut args: Vec<Value> = args.to_vec();
        'outer: loop {
            self.burn()?;
            self.ops += 1;
            let data = &self.closures[closure as usize];
            let clauses = data.clauses.clone();
            let base = data.env.clone();
            let mut selected: Option<(usize, Vec<(String, Value)>)> = None;
            for (k, clause) in clauses.iter().enumerate() {
                let mut bindings = Vec::new();
                let matched = clause
                    .params
                    .iter()
                    .zip(&args)
                    .all(|(p, v)| match_pattern(p, v, &|n| cons.contains(n), &mut bindings));
                if matched {
                    selected = Some((k, bindings));
                    break;
                }
            }
            let Some((k, bindings)) = selected else {
                return Err(EvalError::MatchFailure(span));
            };
            let mut env = base;
            for (n, v) in bindings {
                env = env.bind(n, v);
            }
            match self.eval_tail(&clauses[k].body, &env)? {
                Tail::Val(v) => return Ok(v),
                Tail::Call(fv, av, call_span) => {
                    // Resolve the tail application without recursing.
                    match fv {
                        Value::Prim(name) => return prims::apply(self, name, av, call_span),
                        Value::ConFn(name) => return Ok(Value::Con(name, Some(Rc::new(av)))),
                        Value::Closure(c2) => {
                            if self.arity(c2) == 1 {
                                closure = c2;
                                args = vec![av];
                                continue 'outer;
                            }
                            return Ok(Value::Partial(c2, Rc::new(vec![av])));
                        }
                        Value::Partial(c2, prev) => {
                            let mut all = prev.as_ref().clone();
                            all.push(av);
                            if all.len() == self.arity(c2) {
                                closure = c2;
                                args = all;
                                continue 'outer;
                            }
                            return Ok(Value::Partial(c2, Rc::new(all)));
                        }
                        other => {
                            return Err(EvalError::Type(
                                format!("applied non-function `{other}`"),
                                call_span,
                            ))
                        }
                    }
                }
            }
        }
    }

    /// Evaluates an expression in *tail position*: instead of performing a
    /// final application, returns it to the driving loop.
    fn eval_tail(&mut self, e: &sast::Expr, env: &Env) -> Result<Tail, EvalError> {
        match e {
            sast::Expr::App(f, a, span) => {
                if let sast::Expr::Var(id) = f.as_ref() {
                    if self.cons.contains(&id.name) && env.lookup(&id.name).is_none() {
                        let arg = self.eval(a, env)?;
                        return Ok(Tail::Val(Value::Con(
                            Rc::from(id.name.as_str()),
                            Some(Rc::new(arg)),
                        )));
                    }
                }
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                Ok(Tail::Call(fv, av, *span))
            }
            sast::Expr::If(c, t, f, span) => match self.eval(c, env)? {
                Value::Bool(true) => self.eval_tail(t, env),
                Value::Bool(false) => self.eval_tail(f, env),
                other => {
                    Err(EvalError::Type(format!("if condition evaluated to `{other}`"), *span))
                }
            },
            sast::Expr::Case(scrut, arms, span) => {
                let v = self.eval(scrut, env)?;
                let cons = self.cons.clone();
                for (p, body) in arms {
                    let mut bindings = Vec::new();
                    if match_pattern(p, &v, &|n| cons.contains(n), &mut bindings) {
                        let mut aenv = env.clone();
                        for (n, val) in bindings {
                            aenv = aenv.bind(n, val);
                        }
                        return self.eval_tail(body, &aenv);
                    }
                }
                Err(EvalError::MatchFailure(*span))
            }
            sast::Expr::Let(decls, body, _) => {
                let mut lenv = env.clone();
                for d in decls {
                    lenv = self.eval_decl(d, lenv)?;
                }
                self.eval_tail(body, &lenv)
            }
            sast::Expr::Seq(es, _) => {
                let (last, init) = es.split_last().expect("parser ensures non-empty");
                for x in init {
                    self.eval(x, env)?;
                }
                self.eval_tail(last, env)
            }
            sast::Expr::Anno(inner, _, _) => self.eval_tail(inner, env),
            other => Ok(Tail::Val(self.eval(other, env)?)),
        }
    }
}

/// Result of evaluating a tail position.
enum Tail {
    /// A finished value.
    Val(Value),
    /// A pending application `f a` at the given span.
    Call(Value, Value, Span),
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::parse_program;

    fn machine(src: &str) -> Machine {
        let p = parse_program(src).unwrap();
        Machine::load(&p, CheckConfig::checked()).unwrap()
    }

    #[test]
    fn factorial() {
        let mut m = machine("fun fact(n) = if n = 0 then 1 else n * fact(n - 1)");
        let r = m.call("fact", vec![Value::Int(10)]).unwrap();
        assert_eq!(r.as_int(), Some(3_628_800));
    }

    #[test]
    fn mutual_recursion() {
        let src = "fun even(n) = if n = 0 then true else odd(n - 1) \
                   and odd(n) = if n = 0 then false else even(n - 1)";
        let mut m = machine(src);
        assert_eq!(m.call("even", vec![Value::Int(10)]).unwrap().as_bool(), Some(true));
        assert_eq!(m.call("odd", vec![Value::Int(10)]).unwrap().as_bool(), Some(false));
    }

    #[test]
    fn list_reverse() {
        let src = "fun rev(nil, ys) = ys | rev(x::xs, ys) = rev(xs, x::ys) \
                   fun reverse(l) = rev(l, nil)";
        let mut m = machine(src);
        let l = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let r = m.call("reverse", vec![l]).unwrap();
        let out: Vec<i64> = r.list_to_vec().unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(out, vec![3, 2, 1]);
    }

    #[test]
    fn curried_functions_partial_application() {
        let src = "fun add x y = x + y  val inc = add 1";
        let mut m = machine(src);
        let r = m.call("inc", vec![Value::Int(41)]).unwrap();
        assert_eq!(r.as_int(), Some(42));
    }

    #[test]
    fn higher_order_fn_expressions() {
        let src = "fun apply f x = f x  val r = apply (fn n => n * 2) 21";
        let m = machine(src);
        assert_eq!(m.global("r").unwrap().as_int(), Some(42));
    }

    #[test]
    fn case_on_constructors() {
        let src = r#"
datatype 'a option = NONE | SOME of 'a
fun getOr(x, d) = case x of SOME v => v | NONE => d
val a = getOr(SOME 5, 0)
val b = getOr(NONE, 7)
"#;
        let mut m = machine(src);
        assert_eq!(m.global("a").unwrap().as_int(), Some(5));
        assert_eq!(m.global("b").unwrap().as_int(), Some(7));
        let _ = &mut m;
    }

    #[test]
    fn nullary_constructor_arms_do_not_shadow() {
        let src = r#"
fun f(x) = case x of LESS => 1 | EQUAL => 2 | GREATER => 3
"#;
        let mut m = machine(src);
        let r = m.call("f", vec![Value::Con("GREATER".into(), None)]).unwrap();
        assert_eq!(r.as_int(), Some(3), "GREATER must not match the LESS arm");
    }

    #[test]
    fn sequencing_and_update() {
        let src = "fun bump(a) = (update(a, 0, sub(a, 0) + 1); sub(a, 0))";
        let mut m = machine(src);
        let arr = Value::int_array([41]);
        assert_eq!(m.call("bump", vec![arr]).unwrap().as_int(), Some(42));
        assert_eq!(m.counters.array_checks_executed, 3, "two subs and one update");
    }

    #[test]
    fn bounds_violation_detected() {
        let src = "fun get(a, i) = sub(a, i)";
        let mut m = machine(src);
        let arr = Value::int_array([1, 2, 3]);
        let args = Value::Tuple(Rc::new(vec![arr, Value::Int(7)]));
        let err = m.call("get", vec![args]).unwrap_err();
        assert!(matches!(err, EvalError::BoundsViolation { index: 7, len: 3, .. }));
    }

    #[test]
    fn division_semantics_and_by_zero() {
        let mut m = machine("fun f(a, b) = a div b  fun g(a, b) = a mod b");
        let pair = |a: i64, b: i64| Value::Tuple(Rc::new(vec![Value::Int(a), Value::Int(b)]));
        assert_eq!(m.call("f", vec![pair(-7, 2)]).unwrap().as_int(), Some(-4));
        assert_eq!(m.call("g", vec![pair(-7, 2)]).unwrap().as_int(), Some(1));
        assert!(matches!(m.call("f", vec![pair(1, 0)]), Err(EvalError::DivisionByZero(_))));
    }

    #[test]
    fn fuel_limits_runaway_recursion() {
        let src = "fun spin(n) = spin(n + 1)";
        let p = parse_program(src).unwrap();
        let mut m = Machine::load(&p, CheckConfig::checked()).unwrap().with_fuel(10_000);
        assert!(matches!(m.call("spin", vec![Value::Int(0)]), Err(EvalError::OutOfFuel)));
    }

    #[test]
    fn top_level_val_bindings() {
        let mut m = machine("val x = 3 val y = x + 4 fun get() = y");
        // `fun get()` has a unit parameter.
        let r = m.call("get", vec![Value::Unit]).unwrap();
        assert_eq!(r.as_int(), Some(7));
    }

    #[test]
    fn env_lookup_shadowing() {
        let e = Env::new().bind("x", Value::Int(1)).bind("x", Value::Int(2));
        assert_eq!(e.lookup("x").unwrap().as_int(), Some(2));
        assert!(e.lookup("y").is_none());
    }
}
