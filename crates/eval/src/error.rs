//! Run-time errors.

use dml_syntax::Span;
use std::fmt;

/// A run-time evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An array access failed its bound check.
    BoundsViolation {
        /// Index requested.
        index: i64,
        /// Array length.
        len: usize,
        /// Call site.
        site: Span,
    },
    /// A list access failed its tag check (index ≥ length).
    TagViolation {
        /// Index requested.
        index: i64,
        /// Call site.
        site: Span,
    },
    /// An *eliminated* access was out of bounds — only observable with
    /// [`CheckConfig::validate`](crate::CheckConfig) set; indicates a
    /// soundness bug in the pipeline and fails property tests loudly.
    UnsoundElimination {
        /// Index requested.
        index: i64,
        /// Array length.
        len: usize,
        /// Call site.
        site: Span,
    },
    /// Integer division or modulus by zero.
    DivisionByZero(Span),
    /// No clause/arm matched the scrutinee.
    MatchFailure(Span),
    /// Unbound variable at run time (elaboration bug or raw-AST misuse).
    Unbound(String, Span),
    /// Dynamic type error (applying a non-function, bad primitive
    /// argument); unreachable for programs that passed phase 1.
    Type(String, Span),
    /// Negative size passed to `array`.
    NegativeArraySize(i64, Span),
    /// A user exception raised by `raise E` and not (yet) handled.
    Raised(String, Span),
    /// Fuel exhausted (runaway recursion guard in tests).
    OutOfFuel,
}

impl EvalError {
    /// The SML-basis exception name a `handle` arm can catch this error
    /// under, if any. `UnsoundElimination` and `OutOfFuel` are deliberately
    /// uncatchable (the first is a pipeline soundness bug, the second a
    /// test harness guard).
    pub fn exception_name(&self) -> Option<&str> {
        match self {
            EvalError::BoundsViolation { .. } | EvalError::TagViolation { .. } => Some("Subscript"),
            EvalError::DivisionByZero(_) => Some("Div"),
            EvalError::NegativeArraySize(_, _) => Some("Size"),
            EvalError::MatchFailure(_) => Some("Match"),
            EvalError::Raised(name, _) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BoundsViolation { index, len, site } => {
                write!(f, "array bound violation at {site}: index {index}, length {len}")
            }
            EvalError::TagViolation { index, site } => {
                write!(f, "list tag violation at {site}: index {index}")
            }
            EvalError::UnsoundElimination { index, len, site } => write!(
                f,
                "UNSOUND ELIMINATION at {site}: unchecked access with index {index}, length {len}"
            ),
            EvalError::DivisionByZero(site) => write!(f, "division by zero at {site}"),
            EvalError::MatchFailure(site) => write!(f, "match failure at {site}"),
            EvalError::Unbound(name, site) => write!(f, "unbound variable `{name}` at {site}"),
            EvalError::Type(msg, site) => write!(f, "type error at {site}: {msg}"),
            EvalError::NegativeArraySize(n, site) => {
                write!(f, "negative array size {n} at {site}")
            }
            EvalError::Raised(name, site) => write!(f, "uncaught exception {name} at {site}"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let s = Span::new(1, 2);
        for e in [
            EvalError::BoundsViolation { index: 9, len: 3, site: s },
            EvalError::TagViolation { index: 9, site: s },
            EvalError::UnsoundElimination { index: 9, len: 3, site: s },
            EvalError::DivisionByZero(s),
            EvalError::MatchFailure(s),
            EvalError::Unbound("x".into(), s),
            EvalError::Type("bad".into(), s),
            EvalError::NegativeArraySize(-1, s),
            EvalError::Raised("E".into(), s),
            EvalError::OutOfFuel,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn exception_names() {
        let s = Span::new(1, 2);
        assert_eq!(
            EvalError::BoundsViolation { index: 1, len: 0, site: s }.exception_name(),
            Some("Subscript")
        );
        assert_eq!(EvalError::DivisionByZero(s).exception_name(), Some("Div"));
        assert_eq!(EvalError::Raised("E".into(), s).exception_name(), Some("E"));
        assert_eq!(
            EvalError::UnsoundElimination { index: 1, len: 0, site: s }.exception_name(),
            None,
            "soundness bugs are uncatchable"
        );
        assert_eq!(EvalError::OutOfFuel.exception_name(), None);
    }
}
