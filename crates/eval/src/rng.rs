//! A deterministic xorshift64* RNG for workload generation.
//!
//! The paper's workloads use "randomly generated" arrays and lists; the
//! exact generator is unspecified, so a fixed-seed xorshift keeps every run
//! of the reproduction identical across machines.

/// A xorshift64* pseudo-random generator.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator; a zero seed is replaced by a fixed constant.
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// A non-negative `i64` below `bound`.
    pub fn int_below(&mut self, bound: i64) -> i64 {
        self.below(bound as u64) as i64
    }

    /// A vector of `n` integers in `[0, bound)`.
    pub fn int_vec(&mut self, n: usize, bound: i64) -> Vec<i64> {
        (0..n).map(|_| self.int_below(bound)).collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

impl Default for XorShift {
    fn default() -> Self {
        XorShift::new(0x1234_5678_9ABC_DEF0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.int_below(100);
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = XorShift::new(3);
        let mut v: Vec<i64> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<i64>>());
        assert_ne!(v, sorted, "overwhelmingly likely to be non-identity");
    }

    #[test]
    fn int_vec_length_and_range() {
        let mut r = XorShift::default();
        let v = r.int_vec(64, 8);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|x| (0..8).contains(x)));
    }
}
