//! Reference decider (a): brute-force bounded-domain model enumeration.
//!
//! Walks every integer assignment in `[-bound, bound]^n` (booleans get
//! `{false, true}`) and evaluates the propositions with the *surface*
//! semantics of `dml_index::Prop::eval` — checked `i64` arithmetic, SML
//! flooring `div`/`mod` — not the solver's linearized view. A found model
//! of `hyps ∧ ¬concl` is a concrete counterexample certificate: the goal
//! is definitely not valid, whatever the solver claims.
//!
//! Finding *no* model proves nothing globally (a countermodel may live
//! outside the box); the exact-rational eliminator covers the validity
//! direction.

use dml_index::{Prop, Sort, Var};
use std::collections::BTreeMap;

/// Hard cap on enumerated points so a miscalled bound cannot hang a test.
const MAX_POINTS: u64 = 2_000_000;

/// Searches `[-bound, bound]` per integer variable for an assignment
/// satisfying every proposition. Variables free in `props` but missing
/// from `vars` are enumerated as integers too. Returns the first model in
/// lexicographic order (deterministic), or `None`.
pub fn find_model(vars: &[(Var, Sort)], props: &[Prop], bound: i64) -> Option<BTreeMap<Var, i64>> {
    let mut domain: Vec<(Var, Sort)> = vars.to_vec();
    for p in props {
        for v in p.free_vars() {
            if !domain.iter().any(|(w, _)| *w == v) {
                domain.push((v, Sort::Int));
            }
        }
    }
    let width = 2 * bound as u64 + 1;
    let mut points: u64 = 1;
    for (_, s) in &domain {
        points = points.saturating_mul(if s.is_int() { width } else { 2 });
        if points > MAX_POINTS {
            return None;
        }
    }
    let mut assignment: Vec<i64> =
        domain.iter().map(|(_, s)| if s.is_int() { -bound } else { 0 }).collect();
    loop {
        if satisfies(&domain, &assignment, props) {
            return Some(
                domain.iter().map(|(v, _)| v.clone()).zip(assignment.iter().copied()).collect(),
            );
        }
        // Odometer increment in lexicographic order.
        let mut i = domain.len();
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            let hi = if domain[i].1.is_int() { bound } else { 1 };
            let lo = if domain[i].1.is_int() { -bound } else { 0 };
            if assignment[i] < hi {
                assignment[i] += 1;
                break;
            }
            assignment[i] = lo;
        }
    }
}

fn satisfies(domain: &[(Var, Sort)], assignment: &[i64], props: &[Prop]) -> bool {
    let ienv = |v: &Var| -> Option<i64> {
        domain.iter().position(|(w, s)| w == v && s.is_int()).map(|i| assignment[i])
    };
    let benv = |v: &Var| -> Option<bool> {
        domain.iter().position(|(w, s)| w == v && !s.is_int()).map(|i| assignment[i] != 0)
    };
    // A proposition that fails to evaluate (overflow, div by zero) does not
    // certify a model — skip the point.
    props.iter().all(|p| p.eval(&ienv, &benv) == Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{IExp, VarGen};

    #[test]
    fn finds_a_model_in_the_box() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let props = [
            Prop::le(IExp::lit(2), IExp::var(x.clone())),
            Prop::lt(IExp::var(x.clone()), IExp::lit(4)),
        ];
        let m = find_model(&[(x.clone(), Sort::Int)], &props, 5).unwrap();
        assert_eq!(m[&x], 2, "first model in lexicographic order");
    }

    #[test]
    fn reports_no_model_when_unsat() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let props = [
            Prop::lt(IExp::var(x.clone()), IExp::lit(0)),
            Prop::lt(IExp::lit(0), IExp::var(x.clone())),
        ];
        assert!(find_model(&[(x, Sort::Int)], &props, 5).is_none());
    }

    #[test]
    fn integer_gap_has_no_model() {
        // 2x = 1 has no integer solution anywhere, a fortiori in the box.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let props = [Prop::eq(IExp::lit(2) * IExp::var(x.clone()), IExp::lit(1))];
        assert!(find_model(&[(x, Sort::Int)], &props, 8).is_none());
    }

    #[test]
    fn booleans_enumerate_both_values() {
        let mut g = VarGen::new();
        let b = g.fresh("b");
        let props = [Prop::Not(Box::new(Prop::BVar(b.clone())))];
        let m = find_model(&[(b.clone(), Sort::Bool)], &props, 1).unwrap();
        assert_eq!(m[&b], 0);
    }

    #[test]
    fn free_vars_outside_ctx_are_enumerated() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let props = [Prop::eq(IExp::var(x.clone()), IExp::lit(3))];
        let m = find_model(&[], &props, 5).unwrap();
        assert_eq!(m[&x], 3);
    }

    #[test]
    fn nonlinear_props_use_surface_semantics() {
        // x * x = 4 with x in [-5, 5]: first model is x = -2.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let props = [Prop::eq(IExp::var(x.clone()) * IExp::var(x.clone()), IExp::lit(4))];
        let m = find_model(&[(x.clone(), Sort::Int)], &props, 5).unwrap();
        assert_eq!(m[&x], -2);
    }
}
