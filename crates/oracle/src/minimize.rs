//! Greedy shrinking of diverging goals.
//!
//! Given a goal and a predicate ("this goal still reproduces the
//! divergence"), repeatedly applies reductions — drop a hypothesis,
//! replace a disjunctive hypothesis with one branch, drop an unused
//! context variable, pull every literal halfway toward zero — keeping any
//! reduction under which the predicate still holds, until a fixpoint. The
//! result is the goal written to the repro file, so reports stay small and
//! readable.

use dml_index::{IExp, Prop};
use dml_solver::Goal;

/// Upper bound on accepted reductions, a safety valve against predicates
/// that oscillate.
const MAX_STEPS: usize = 200;

/// Shrinks `goal` while `still_diverges` holds. The returned goal always
/// satisfies the predicate (it is the input if nothing shrinks).
pub fn minimize(goal: &Goal, mut still_diverges: impl FnMut(&Goal) -> bool) -> Goal {
    let mut cur = goal.clone();
    let mut steps = 0;
    loop {
        let mut shrunk = false;
        for candidate in candidates(&cur) {
            if still_diverges(&candidate) {
                cur = candidate;
                shrunk = true;
                steps += 1;
                break;
            }
        }
        if !shrunk || steps >= MAX_STEPS {
            return cur;
        }
    }
}

/// Candidate one-step reductions, smallest-effect first.
fn candidates(goal: &Goal) -> Vec<Goal> {
    let mut out = Vec::new();
    // Drop each hypothesis.
    for i in 0..goal.hyps.len() {
        let mut g = goal.clone();
        g.hyps.remove(i);
        out.push(g);
    }
    // Replace each Or-hypothesis with a single branch.
    for (i, h) in goal.hyps.iter().enumerate() {
        if let Prop::Or(a, b) = h {
            for branch in [a, b] {
                let mut g = goal.clone();
                g.hyps[i] = (**branch).clone();
                out.push(g);
            }
        }
    }
    // Drop context variables no proposition mentions.
    for i in 0..goal.ctx.len() {
        let v = &goal.ctx[i].0;
        let used =
            goal.hyps.iter().chain(std::iter::once(&goal.concl)).any(|p| p.free_vars().contains(v));
        if !used {
            let mut g = goal.clone();
            g.ctx.remove(i);
            out.push(g);
        }
    }
    // Halve every literal toward zero (a coarse global shrink).
    let halved = Goal {
        ctx: goal.ctx.clone(),
        hyps: goal.hyps.iter().map(shrink_prop).collect(),
        concl: shrink_prop(&goal.concl),
        residual_existential: goal.residual_existential,
    };
    if halved != *goal {
        out.push(halved);
    }
    out
}

fn shrink_prop(p: &Prop) -> Prop {
    match p {
        Prop::True | Prop::False | Prop::BVar(_) => p.clone(),
        Prop::Not(q) => Prop::Not(Box::new(shrink_prop(q))),
        Prop::And(a, b) => Prop::And(Box::new(shrink_prop(a)), Box::new(shrink_prop(b))),
        Prop::Or(a, b) => Prop::Or(Box::new(shrink_prop(a)), Box::new(shrink_prop(b))),
        Prop::Cmp(op, a, b) => Prop::Cmp(*op, shrink_iexp(a), shrink_iexp(b)),
    }
}

fn shrink_iexp(e: &IExp) -> IExp {
    match e {
        IExp::Var(_) => e.clone(),
        IExp::Lit(n) => IExp::lit(n / 2),
        IExp::Add(a, b) => IExp::Add(Box::new(shrink_iexp(a)), Box::new(shrink_iexp(b))),
        IExp::Sub(a, b) => IExp::Sub(Box::new(shrink_iexp(a)), Box::new(shrink_iexp(b))),
        IExp::Mul(a, b) => IExp::Mul(Box::new(shrink_iexp(a)), Box::new(shrink_iexp(b))),
        IExp::Div(a, b) => shrink_iexp(a).div(shrink_iexp(b)),
        IExp::Mod(a, b) => shrink_iexp(a).modulo(shrink_iexp(b)),
        IExp::Min(a, b) => shrink_iexp(a).min(shrink_iexp(b)),
        IExp::Max(a, b) => shrink_iexp(a).max(shrink_iexp(b)),
        IExp::Abs(a) => shrink_iexp(a).abs(),
        IExp::Sgn(a) => shrink_iexp(a).sgn(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{Sort, VarGen};

    #[test]
    fn drops_irrelevant_hypotheses() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let goal = Goal {
            ctx: vec![(x.clone(), Sort::Int), (y.clone(), Sort::Int)],
            hyps: vec![
                Prop::le(IExp::var(y.clone()), IExp::lit(6)),
                Prop::le(IExp::lit(1), IExp::var(x.clone())),
                Prop::le(IExp::var(y), IExp::lit(4)),
            ],
            concl: Prop::le(IExp::lit(0), IExp::var(x.clone())),
            residual_existential: false,
        };
        // Predicate: the goal still mentions x in a hypothesis (a stand-in
        // for "still diverges").
        let min = minimize(&goal, |g| g.hyps.iter().any(|h| h.free_vars().contains(&x)));
        assert_eq!(min.hyps.len(), 1, "irrelevant hyps dropped: {min}");
        assert_eq!(min.ctx.len(), 1, "unused ctx var dropped");
    }

    #[test]
    fn keeps_the_input_when_nothing_shrinks() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let goal = Goal {
            ctx: vec![(x.clone(), Sort::Int)],
            hyps: vec![],
            concl: Prop::le(IExp::lit(0), IExp::var(x)),
            residual_existential: false,
        };
        let min = minimize(&goal, |g| g == &goal);
        assert_eq!(min, goal);
    }

    #[test]
    fn shrinks_literals_toward_zero() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let goal = Goal {
            ctx: vec![(x.clone(), Sort::Int)],
            hyps: vec![],
            concl: Prop::le(IExp::lit(100), IExp::var(x.clone())),
            residual_existential: false,
        };
        let min = minimize(&goal, |g| matches!(&g.concl, Prop::Cmp(_, IExp::Lit(n), _) if *n > 3));
        match &min.concl {
            Prop::Cmp(_, IExp::Lit(n), _) => assert!(*n > 3 && *n <= 6, "halved down: {n}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
