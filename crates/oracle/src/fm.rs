//! Reference decider (b): exact-rational Fourier–Motzkin elimination.
//!
//! This is an independent reimplementation — it shares no code with
//! `crates/solver`: its own constraint representation (exact [`Rat`]
//! coefficients instead of `i64`, explicit strict/non-strict bounds
//! instead of the integer `a < b ⇒ a + 1 ≤ b` rewrite), no integer
//! tightening, no fuel metering, no parallelism, no caching. Over the
//! rationals FM is a complete decision procedure, so the verdict is exact:
//!
//! * `Unsat` — the system has **no rational solution**, hence no integer
//!   solution either. If the system is the negation `hyps ∧ ¬concl` of a
//!   goal, the goal is definitely valid over the integers.
//! * `Sat` — a rational solution exists. The *integers* may still be
//!   unsatisfiable (`2x = 1` is the canonical example — exactly the gap
//!   the production solver's tightening step closes), so `Sat` alone says
//!   nothing about the goal; the bounded enumerator covers that side.
//!
//! Elimination can square the constraint count each round, so a hard cap
//! guards against pathological inputs; hitting it (or `i128` overflow)
//! yields [`RatSat::Unknown`] — the oracle declines rather than guesses.

use crate::rat::Rat;
use std::collections::{BTreeMap, BTreeSet};

/// One rational constraint `Σ cᵢ·xᵢ + k ≤ 0` (or `< 0` when `strict`).
/// Variables are plain `u32` ids; the caller keeps the name map.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RatConstraint {
    /// Variable coefficients (zero coefficients are never stored).
    pub coeffs: BTreeMap<u32, Rat>,
    /// The constant term `k`.
    pub constant: Rat,
    /// `true` for a strict bound (`< 0`), `false` for `≤ 0`.
    pub strict: bool,
}

impl RatConstraint {
    /// A constraint with no variables.
    pub fn constant(k: Rat, strict: bool) -> RatConstraint {
        RatConstraint { coeffs: BTreeMap::new(), constant: k, strict }
    }

    /// Adds `c·x` to the constraint (dropping the term if it cancels).
    pub fn add_term(&mut self, x: u32, c: Rat) -> Option<()> {
        let cur = self.coeffs.remove(&x).unwrap_or_else(Rat::zero);
        let next = cur.add(&c)?;
        if !next.is_zero() {
            self.coeffs.insert(x, next);
        }
        Some(())
    }

    /// `true` if the constraint mentions no variables.
    pub fn is_ground(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// A ground constraint that can never hold (`k ≤ 0` with `k > 0`, or
    /// `k < 0` with `k ≥ 0`).
    fn is_contradiction(&self) -> bool {
        debug_assert!(self.is_ground());
        if self.strict {
            !self.constant.is_negative()
        } else {
            self.constant.is_positive()
        }
    }
}

/// The three-way satisfiability answer of the rational eliminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatSat {
    /// A rational solution exists.
    Sat,
    /// No rational solution exists (a proof of integer unsatisfiability).
    Unsat,
    /// The eliminator declined (constraint-count cap or `i128` overflow).
    Unknown,
}

/// Hard cap on live constraints during elimination; pathological systems
/// decline with [`RatSat::Unknown`] instead of running away.
const MAX_CONSTRAINTS: usize = 100_000;

/// Decides rational satisfiability of a conjunction of constraints by
/// eliminating variables one at a time.
pub fn rational_sat(constraints: &[RatConstraint]) -> RatSat {
    let mut live: BTreeSet<RatConstraint> = constraints.iter().cloned().collect();
    loop {
        // Ground constraints either contradict (UNSAT) or are discharged.
        for c in &live {
            if c.is_ground() && c.is_contradiction() {
                return RatSat::Unsat;
            }
        }
        live.retain(|c| !c.is_ground());
        // Pick the variable appearing in the fewest constraints — a greedy
        // heuristic keeping the cross-product small.
        let Some(&x) = live
            .iter()
            .flat_map(|c| c.coeffs.keys())
            .fold(BTreeMap::<u32, usize>::new(), |mut m, &v| {
                *m.entry(v).or_default() += 1;
                m
            })
            .iter()
            .min_by_key(|&(_, n)| *n)
            .map(|(v, _)| v)
        else {
            // No variables left and no contradiction: satisfiable.
            return RatSat::Sat;
        };
        let (with_x, rest): (Vec<_>, Vec<_>) =
            live.into_iter().partition(|c| c.coeffs.contains_key(&x));
        let mut next: BTreeSet<RatConstraint> = rest.into_iter().collect();
        // Normalize each x-constraint to a bound on x: coeff > 0 gives an
        // upper bound, coeff < 0 a lower bound.
        let mut uppers = Vec::new();
        let mut lowers = Vec::new();
        for c in with_x {
            let coeff = c.coeffs[&x];
            if coeff.is_positive() {
                uppers.push(c);
            } else {
                lowers.push(c);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                let Some(combined) = combine(up, lo, x) else {
                    return RatSat::Unknown;
                };
                if combined.is_ground() {
                    if combined.is_contradiction() {
                        return RatSat::Unsat;
                    }
                } else {
                    next.insert(combined);
                }
                if next.len() > MAX_CONSTRAINTS {
                    return RatSat::Unknown;
                }
            }
        }
        live = next;
    }
}

/// Combines an upper bound (`a·x + p ≤ 0`, `a > 0`) with a lower bound
/// (`b·x + q ≤ 0`, `b < 0`): `(-b)·p + a·q {≤,<} 0`, strict if either side
/// was. `None` on overflow.
fn combine(up: &RatConstraint, lo: &RatConstraint, x: u32) -> Option<RatConstraint> {
    let a = up.coeffs[&x];
    let b = lo.coeffs[&x];
    debug_assert!(a.is_positive() && b.is_negative());
    let k = b.neg().mul(&up.constant)?.add(&a.mul(&lo.constant)?)?;
    let mut out = RatConstraint::constant(k, up.strict || lo.strict);
    for (&v, c) in &up.coeffs {
        if v != x {
            out.add_term(v, b.neg().mul(c)?)?;
        }
    }
    for (&v, c) in &lo.coeffs {
        if v != x {
            out.add_term(v, a.mul(c)?)?;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(terms: &[(u32, i64)], k: i64, strict: bool) -> RatConstraint {
        let mut out = RatConstraint::constant(Rat::int(k), strict);
        for &(v, n) in terms {
            out.add_term(v, Rat::int(n)).unwrap();
        }
        out
    }

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(rational_sat(&[]), RatSat::Sat);
    }

    #[test]
    fn ground_contradiction_is_unsat() {
        // 1 ≤ 0
        assert_eq!(rational_sat(&[c(&[], 1, false)]), RatSat::Unsat);
        // 0 < 0
        assert_eq!(rational_sat(&[c(&[], 0, true)]), RatSat::Unsat);
        // 0 ≤ 0 holds
        assert_eq!(rational_sat(&[c(&[], 0, false)]), RatSat::Sat);
    }

    #[test]
    fn box_constraints_sat() {
        // 0 ≤ x ≤ 5  ⟺  -x ≤ 0, x - 5 ≤ 0
        assert_eq!(rational_sat(&[c(&[(0, -1)], 0, false), c(&[(0, 1)], -5, false)]), RatSat::Sat);
    }

    #[test]
    fn contradictory_bounds_unsat() {
        // x ≤ 0 and x ≥ 1: x ≤ 0, 1 - x ≤ 0
        assert_eq!(rational_sat(&[c(&[(0, 1)], 0, false), c(&[(0, -1)], 1, false)]), RatSat::Unsat);
    }

    #[test]
    fn strictness_matters_over_rationals() {
        // x ≤ 0 ∧ x ≥ 0 is SAT (x = 0) but x < 0 ∧ x ≥ 0 is UNSAT.
        assert_eq!(rational_sat(&[c(&[(0, 1)], 0, false), c(&[(0, -1)], 0, false)]), RatSat::Sat);
        assert_eq!(rational_sat(&[c(&[(0, 1)], 0, true), c(&[(0, -1)], 0, false)]), RatSat::Unsat);
    }

    #[test]
    fn integer_gap_is_rationally_sat() {
        // 2x = 1: 2x - 1 ≤ 0 ∧ 1 - 2x ≤ 0. Rationally SAT at x = 1/2 —
        // the enumerator, not this eliminator, rules out integer models.
        assert_eq!(rational_sat(&[c(&[(0, 2)], -1, false), c(&[(0, -2)], 1, false)]), RatSat::Sat);
    }

    #[test]
    fn transitive_chain_unsat() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x - 1 is UNSAT:
        // x - y ≤ 0, y - z ≤ 0, z - x + 1 ≤ 0.
        let sys = [
            c(&[(0, 1), (1, -1)], 0, false),
            c(&[(1, 1), (2, -1)], 0, false),
            c(&[(2, 1), (0, -1)], 1, false),
        ];
        assert_eq!(rational_sat(&sys), RatSat::Unsat);
    }

    #[test]
    fn multi_var_sat() {
        // x + y ≤ 3 ∧ x ≥ 1 ∧ y ≥ 1.
        let sys =
            [c(&[(0, 1), (1, 1)], -3, false), c(&[(0, -1)], 1, false), c(&[(1, -1)], 1, false)];
        assert_eq!(rational_sat(&sys), RatSat::Sat);
    }
}
