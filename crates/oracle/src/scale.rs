//! Scale-corpus generator: mega DML programs with stamped verdict counts.
//!
//! The fuzz templates in [`crate::program`] exercise the pipeline on
//! single-function programs of a handful of obligations — the paper's
//! Table 2/3 regime. The service roadmap cares about a different regime:
//! 10k–100k obligations per compile batch, where the worker pool, the
//! canonical verdict cache, and the disk tier either pay off or fall
//! over. This module generates that workload.
//!
//! A corpus is a set of files, each a long sequence of *units* drawn from
//! four shapes modelled on real partially-annotated codebases:
//!
//! * **Proven chain** — a call chain of annotated functions, every level
//!   indexing under a guard the solver proves (`sub(v, i)` under
//!   `i < n`). All sites eliminate.
//! * **Residual chain** — the same chain with every annotation stripped:
//!   phase-2 has no index information, every site keeps its runtime
//!   check (`Unknown(PossiblyFalsifiable)`).
//! * **Mixed chain** — annotated wrappers over an annotation-stripped
//!   leaf: the wrappers' own sites eliminate, the leaf's site stays.
//! * **Nonlinear leaf** — `sub(v, i * j)` under a guard that implies
//!   safety but only nonlinearly (the paper's §3.2 rejection):
//!   `Unknown(Nonlinear)` residual.
//!
//! Every unit's obligation count and per-site verdicts are statically
//! known (a chain of depth `d` generates exactly `3d − 1` obligations, a
//! nonlinear leaf exactly 2 — pinned by tests), so each generated case is
//! stamped with [`ExpectedCounts`] and doubles as a correctness oracle:
//! a compile whose proven/residual/nonlinear site counts differ from the
//! stamp is a divergence, whatever the configuration.
//!
//! The generator is deterministic per seed and splits the corpus across
//! files: constraint generation is superlinear in single-file size (see
//! `EXPERIMENTS.md`), and the multi-file shape is both the realistic
//! multi-tenant workload and what `dmlc check --jobs N` fans out.

use crate::rng::OracleRng;
use dml::UnknownReason;

/// Verdict counts a generated case is expected to produce, by site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedCounts {
    /// Total checking-primitive sites (`proven + residual`).
    pub check_sites: usize,
    /// Sites whose bound obligations the solver must prove (eliminated).
    pub proven_sites: usize,
    /// Sites that must keep their runtime check.
    pub residual_sites: usize,
    /// Subset of `residual_sites` left for a nonlinear conclusion.
    pub nonlinear_sites: usize,
}

impl ExpectedCounts {
    fn absorb(&mut self, other: &ExpectedCounts) {
        self.check_sites += other.check_sites;
        self.proven_sites += other.proven_sites;
        self.residual_sites += other.residual_sites;
        self.nonlinear_sites += other.nonlinear_sites;
    }
}

impl std::fmt::Display for ExpectedCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} site(s): {} proven, {} residual ({} nonlinear)",
            self.check_sites, self.proven_sites, self.residual_sites, self.nonlinear_sites
        )
    }
}

/// One generated unit: a short self-contained group of declarations with
/// statically known obligation and verdict counts.
#[derive(Debug, Clone)]
pub struct ScaleUnit {
    /// DML source of the unit's declarations.
    pub source: String,
    /// Obligations (constraints) the unit generates.
    pub obligations: usize,
    /// Stamped per-site verdicts.
    pub expected: ExpectedCounts,
}

/// One generated file of the corpus.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Deterministic case name (`scale-s<seed>-f<index>`).
    pub name: String,
    /// Full DML source (the concatenated units).
    pub source: String,
    /// The units, in emission order (the shrinking granularity).
    pub units: Vec<ScaleUnit>,
    /// Obligations the whole file generates.
    pub obligations: usize,
    /// Stamped verdict counts for the whole file.
    pub expected: ExpectedCounts,
}

impl ScaleCase {
    /// Rebuilds a case from a subset of its units (used by the shrinker
    /// and the corpus assembler); counts are re-derived from the units.
    pub fn from_units(name: String, units: Vec<ScaleUnit>) -> ScaleCase {
        let mut source = String::new();
        let mut obligations = 0;
        let mut expected = ExpectedCounts::default();
        for u in &units {
            source.push_str(&u.source);
            obligations += u.obligations;
            expected.absorb(&u.expected);
        }
        ScaleCase { name, source, units, obligations, expected }
    }
}

/// A generated corpus: the files plus corpus-wide totals.
#[derive(Debug, Clone)]
pub struct ScaleCorpus {
    /// The generated files.
    pub cases: Vec<ScaleCase>,
    /// Total obligations across the corpus.
    pub obligations: usize,
    /// Total stamped verdict counts across the corpus.
    pub expected: ExpectedCounts,
}

/// Scale-corpus configuration. `Default` is the 1k-obligation preset.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// RNG seed; identical configs generate identical corpora.
    pub seed: u64,
    /// Total obligations to generate across the corpus (hit within one
    /// unit's worth, ≤ `3 · max_depth − 1`).
    pub target_obligations: usize,
    /// Number of files to split the corpus over. Constraint generation
    /// is superlinear in single-file size, so mega-corpora must spread.
    pub files: usize,
    /// Relative unit-shape weights: proven chain.
    pub proven_weight: u32,
    /// Relative unit-shape weights: annotation-stripped residual chain.
    pub residual_weight: u32,
    /// Relative unit-shape weights: annotated-over-stripped mixed chain.
    pub mixed_weight: u32,
    /// Relative unit-shape weights: nonlinear leaf.
    pub nonlinear_weight: u32,
    /// Maximum call-chain depth (inclusive; chains are 2..=max_depth).
    pub max_depth: usize,
}

impl ScaleConfig {
    /// A corpus of roughly `target_obligations` obligations with the
    /// default shape mix, split over a file count that keeps per-file
    /// generation time tame.
    pub fn new(seed: u64, target_obligations: usize) -> ScaleConfig {
        ScaleConfig {
            seed,
            target_obligations,
            files: (target_obligations / 1200).clamp(1, 64),
            proven_weight: 5,
            residual_weight: 2,
            mixed_weight: 2,
            nonlinear_weight: 1,
            max_depth: 6,
        }
    }

    /// Overrides the file count.
    pub fn files(mut self, files: usize) -> ScaleConfig {
        self.files = files.max(1);
        self
    }
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig::new(42, 1_000)
    }
}

/// The guard families provable chains draw from: (guard, valid index
/// expressions under that guard). Every level of a chain shares the
/// chain's guard, so the wrapper-to-callee guard obligation is the
/// identity implication and the whole chain stays proven.
const PROVEN_GUARDS: [(&str, &[&str]); 3] =
    [("i < n", &["i"]), ("i + 1 < n", &["i", "i + 1"]), ("n > 0", &["0"])];

/// Obligations generated by a call chain of depth `d` (pinned by the
/// `unit_obligation_formulas_hold` test): one bound obligation per `sub`
/// site plus two per declaration boundary.
fn chain_obligations(depth: usize) -> usize {
    3 * depth - 1
}

/// Obligations generated by a nonlinear leaf unit.
const NONLINEAR_OBLIGATIONS: usize = 2;

/// Emits an annotated, fully provable call chain of `depth` levels.
fn proven_chain(rng: &mut OracleRng, prefix: &str, depth: usize) -> ScaleUnit {
    let (guard, idxs) = *rng.pick(&PROVEN_GUARDS);
    let mut src = String::new();
    for k in 0..depth {
        let idx = *rng.pick(idxs);
        let body = if k == 0 {
            format!("sub(v, {idx})")
        } else {
            format!("{prefix}_{}(v, i) + sub(v, {idx})", k - 1)
        };
        src.push_str(&format!(
            "fun {prefix}_{k}(v, i) = {body}\n\
             where {prefix}_{k} <| {{n:nat, i:nat | {guard}}} int array(n) * int(i) -> int\n\n"
        ));
    }
    ScaleUnit {
        source: src,
        obligations: chain_obligations(depth),
        expected: ExpectedCounts {
            check_sites: depth,
            proven_sites: depth,
            ..ExpectedCounts::default()
        },
    }
}

/// Emits the same chain shape with every annotation stripped: no index
/// information reaches phase 2, every site keeps its check.
fn residual_chain(prefix: &str, depth: usize) -> ScaleUnit {
    let mut src = String::new();
    for k in 0..depth {
        let body = if k == 0 {
            "sub(v, i)".to_string()
        } else {
            format!("{prefix}_{}(v, i) + sub(v, i)", k - 1)
        };
        src.push_str(&format!("fun {prefix}_{k}(v, i) = {body}\n\n"));
    }
    ScaleUnit {
        source: src,
        obligations: chain_obligations(depth),
        expected: ExpectedCounts {
            check_sites: depth,
            residual_sites: depth,
            ..ExpectedCounts::default()
        },
    }
}

/// Emits annotated wrappers over an annotation-stripped leaf: the
/// wrappers' own sites eliminate, the leaf's site stays residual.
fn mixed_chain(prefix: &str, depth: usize) -> ScaleUnit {
    let mut src = format!("fun {prefix}_0(v, i) = sub(v, i)\n\n");
    for k in 1..depth {
        src.push_str(&format!(
            "fun {prefix}_{k}(v, i) = {prefix}_{}(v, i) + sub(v, i)\n\
             where {prefix}_{k} <| {{n:nat, i:nat | i < n}} int array(n) * int(i) -> int\n\n",
            k - 1
        ));
    }
    ScaleUnit {
        source: src,
        obligations: chain_obligations(depth),
        expected: ExpectedCounts {
            check_sites: depth,
            proven_sites: depth - 1,
            residual_sites: 1,
            ..ExpectedCounts::default()
        },
    }
}

/// Emits a nonlinear leaf: the guard implies safety (`i < 4 ∧ j < 4 ∧
/// n ≥ 16 ⊃ i·j < n`) but only through a product of variables, which the
/// linear solver rejects per the paper's §3.2.
fn nonlinear_leaf(prefix: &str) -> ScaleUnit {
    let src = format!(
        "fun {prefix}(v, i, j) = sub(v, i * j)\n\
         where {prefix} <| {{n:nat, i:nat, j:nat | i < 4 && j < 4 && n >= 16}} \
         int array(n) * int(i) * int(j) -> int\n\n"
    );
    ScaleUnit {
        source: src,
        obligations: NONLINEAR_OBLIGATIONS,
        expected: ExpectedCounts {
            check_sites: 1,
            residual_sites: 1,
            nonlinear_sites: 1,
            ..ExpectedCounts::default()
        },
    }
}

/// Generates one corpus file worth roughly `target` obligations.
fn gen_case(rng: &mut OracleRng, name: String, target: usize, cfg: &ScaleConfig) -> ScaleCase {
    let weights = [
        cfg.proven_weight as u64,
        cfg.residual_weight as u64,
        cfg.mixed_weight as u64,
        cfg.nonlinear_weight as u64,
    ];
    let total_weight: u64 = weights.iter().sum::<u64>().max(1);
    let mut units = Vec::new();
    let mut obligations = 0usize;
    let mut unit_id = 0usize;
    while obligations < target {
        let mut roll = rng.below(total_weight);
        let mut kind = 3;
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                kind = i;
                break;
            }
            roll -= w;
        }
        let depth = rng.int_in(2, cfg.max_depth as i64) as usize;
        let unit = match kind {
            0 => proven_chain(rng, &format!("p{unit_id}"), depth),
            1 => residual_chain(&format!("r{unit_id}"), depth),
            2 => mixed_chain(&format!("m{unit_id}"), depth),
            _ => nonlinear_leaf(&format!("q{unit_id}")),
        };
        obligations += unit.obligations;
        units.push(unit);
        unit_id += 1;
    }
    ScaleCase::from_units(name, units)
}

/// Generates the corpus described by `cfg`. Deterministic: identical
/// configs yield byte-identical sources and identical stamps.
pub fn gen_scale_corpus(cfg: &ScaleConfig) -> ScaleCorpus {
    let mut rng = OracleRng::new(cfg.seed ^ 0x5ca1_e000_0000_0000);
    let files = cfg.files.max(1);
    let per_file = cfg.target_obligations.div_ceil(files).max(1);
    let mut cases = Vec::with_capacity(files);
    let mut obligations = 0usize;
    let mut expected = ExpectedCounts::default();
    for f in 0..files {
        let case = gen_case(&mut rng, format!("scale-s{}-f{f}", cfg.seed), per_file, cfg);
        obligations += case.obligations;
        expected.absorb(&case.expected);
        cases.push(case);
    }
    ScaleCorpus { cases, obligations, expected }
}

/// Checks a compiled program against a case's stamped counts. `Err`
/// carries a deterministic description of the first mismatch.
pub fn verify_scale_case(
    compiled: &dml::Compiled,
    expected: &ExpectedCounts,
) -> Result<(), String> {
    let proven = compiled.proven_sites().len();
    let residuals = compiled.residual_checks();
    let residual = residuals.len();
    let nonlinear =
        residuals.iter().filter(|r| matches!(r.reason, UnknownReason::Nonlinear(_))).count();
    let actual = ExpectedCounts {
        check_sites: proven + residual,
        proven_sites: proven,
        residual_sites: residual,
        nonlinear_sites: nonlinear,
    };
    if actual != *expected {
        return Err(format!("expected {expected}; got {actual}"));
    }
    if compiled.stats().constraints == 0 {
        return Err("compile generated no constraints".into());
    }
    Ok(())
}

/// Greedily shrinks a mismatching case at unit granularity: repeatedly
/// tries dropping chunks of units while `still_fails` holds on the
/// rebuilt case. The 1998 paper's programs fit on a page; a divergence
/// repro should too.
pub fn minimize_scale_case(
    case: &ScaleCase,
    mut still_fails: impl FnMut(&ScaleCase) -> bool,
) -> ScaleCase {
    let mut best = case.clone();
    let mut chunk = (best.units.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < best.units.len() && best.units.len() > 1 {
            let end = (start + chunk).min(best.units.len());
            if end - start == best.units.len() {
                // Never drop every unit.
                break;
            }
            let mut units = best.units.clone();
            units.drain(start..end);
            let candidate = ScaleCase::from_units(best.name.clone(), units);
            if still_fails(&candidate) {
                best = candidate;
                shrunk = true;
                // Retry the same window: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !shrunk {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml::Compiler;

    #[test]
    fn unit_obligation_formulas_hold() {
        // The static per-unit obligation counts (`3d − 1` per chain, 2
        // per nonlinear leaf) are what lets a config target exact
        // obligation totals; pin them against the real pipeline.
        let mut rng = OracleRng::new(7);
        for depth in 2..=5 {
            for unit in [
                proven_chain(&mut rng, "p0", depth),
                residual_chain("r0", depth),
                mixed_chain("m0", depth),
            ] {
                let c = Compiler::new().workers(1).compile(&unit.source).expect("unit compiles");
                assert_eq!(
                    c.stats().constraints,
                    unit.obligations,
                    "depth {depth} unit:\n{}",
                    unit.source
                );
                verify_scale_case(&c, &unit.expected).expect("unit stamp holds");
            }
        }
        let leaf = nonlinear_leaf("q0");
        let c = Compiler::new().workers(1).compile(&leaf.source).expect("leaf compiles");
        assert_eq!(c.stats().constraints, leaf.obligations);
        verify_scale_case(&c, &leaf.expected).expect("leaf stamp holds");
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let cfg = ScaleConfig::new(11, 400).files(3);
        let a = gen_scale_corpus(&cfg);
        let b = gen_scale_corpus(&cfg);
        assert_eq!(a.cases.len(), b.cases.len());
        for (ca, cb) in a.cases.iter().zip(&b.cases) {
            assert_eq!(ca.source, cb.source);
            assert_eq!(ca.expected, cb.expected);
        }
        let c = gen_scale_corpus(&ScaleConfig::new(12, 400).files(3));
        assert_ne!(a.cases[0].source, c.cases[0].source, "different seeds differ");
    }

    #[test]
    fn corpus_hits_the_obligation_target() {
        for target in [200, 1_000] {
            let corpus = gen_scale_corpus(&ScaleConfig::new(5, target));
            // Each file overshoots by at most one unit (≤ 3·max_depth − 1).
            let slack = corpus.cases.len() * (3 * 6 - 1);
            assert!(corpus.obligations >= target, "{} < {target}", corpus.obligations);
            assert!(
                corpus.obligations <= target + slack,
                "{} > {target} + {slack}",
                corpus.obligations
            );
            assert_eq!(
                corpus.expected.check_sites,
                corpus.expected.proven_sites + corpus.expected.residual_sites
            );
            assert!(corpus.expected.nonlinear_sites > 0, "mix includes nonlinear units");
        }
    }

    #[test]
    fn stamped_counts_match_the_compiler() {
        let corpus = gen_scale_corpus(&ScaleConfig::new(3, 240).files(2));
        let mut total = 0usize;
        for case in &corpus.cases {
            let c = Compiler::new().workers(1).compile(&case.source).expect("case elaborates");
            verify_scale_case(&c, &case.expected).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert_eq!(c.stats().constraints, case.obligations, "{}", case.name);
            total += c.stats().constraints;
        }
        assert_eq!(total, corpus.obligations);
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_unit() {
        let corpus = gen_scale_corpus(&ScaleConfig::new(9, 300).files(1));
        let case = &corpus.cases[0];
        assert!(case.units.len() > 4, "enough units to shrink");
        // Pretend the last nonlinear unit is the culprit: the minimized
        // case must still contain one and shed most of the rest.
        let has_nonlinear = |c: &ScaleCase| c.units.iter().any(|u| u.expected.nonlinear_sites > 0);
        assert!(has_nonlinear(case), "corpus mix includes a nonlinear unit");
        let small = minimize_scale_case(case, has_nonlinear);
        assert!(has_nonlinear(&small));
        assert!(small.units.len() <= 2, "shrunk to {} units", small.units.len());
    }
}
