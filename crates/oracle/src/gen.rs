//! Seeded random generation of solver goals.
//!
//! Goals stay inside the fragment where the oracle is meaningful: small
//! integer contexts (≤ 3 variables), linear atoms with coefficients in
//! `[-3, 3]` and constants in `[-6, 6]`, occasional disjunctive
//! hypotheses and conjunctive conclusions, every comparison operator
//! including `=` and `<>`. Constants stay well inside the enumerator's
//! default `[-5, 5]` box and the solver's witness-search box (`[-8, 8]`,
//! ≤ 4 variables), so most falsifiable goals get concrete refutations
//! from both sides. Combined atoms can still push the first satisfiable
//! disjunct's witnesses outside the box (`x = 8` negates to `x > 8`
//! first), which is why the harness treats solver `Unknown` on an
//! oracle-*refuted* goal as in-contract and only flags `Unknown` on an
//! oracle-*proven* one.

use crate::rng::OracleRng;
use dml_index::{Cmp, IExp, Prop, Sort, Var, VarGen};
use dml_solver::Goal;

/// Tunables for the goal generator (defaults match the oracle's domain).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum context variables (all integer-sorted).
    pub max_vars: usize,
    /// Maximum hypotheses (before optional nat-guards).
    pub max_hyps: usize,
    /// Coefficient magnitude bound.
    pub coeff_bound: i64,
    /// Constant magnitude bound.
    pub const_bound: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_vars: 3, max_hyps: 4, coeff_bound: 3, const_bound: 6 }
    }
}

/// Generates one random goal. Variable names are `x0`, `x1`, … with ids
/// drawn from `gen`, so callers control id disjointness.
pub fn gen_goal(rng: &mut OracleRng, gen: &mut VarGen, cfg: &GenConfig) -> Goal {
    let nvars = 1 + rng.below(cfg.max_vars as u64) as usize;
    let vars: Vec<Var> = (0..nvars).map(|i| gen.fresh(&format!("x{i}"))).collect();
    let mut hyps = Vec::new();
    // Nat-style sort guards, like the elaborator emits for `{n:nat}`.
    for v in &vars {
        if rng.chance(1, 2) {
            hyps.push(Prop::le(IExp::lit(0), IExp::var(v.clone())));
        }
    }
    let nhyps = rng.below(cfg.max_hyps as u64 + 1) as usize;
    for _ in 0..nhyps {
        let atom = gen_atom(rng, &vars, cfg);
        // Occasional disjunctive hypothesis exercises the DNF path.
        if rng.chance(1, 4) {
            hyps.push(atom.or(gen_atom(rng, &vars, cfg)));
        } else {
            hyps.push(atom);
        }
    }
    let concl = if rng.chance(1, 5) {
        gen_atom(rng, &vars, cfg).and(gen_atom(rng, &vars, cfg))
    } else {
        gen_atom(rng, &vars, cfg)
    };
    let ctx = vars.into_iter().map(|v| (v, Sort::Int)).collect();
    Goal { ctx, hyps, concl, residual_existential: false }
}

/// One random linear comparison atom over the context variables.
fn gen_atom(rng: &mut OracleRng, vars: &[Var], cfg: &GenConfig) -> Prop {
    const OPS: [Cmp; 6] = [Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne];
    let op = *rng.pick(&OPS);
    Prop::cmp(op, gen_expr(rng, vars, cfg), gen_expr(rng, vars, cfg))
}

/// A random linear expression: up to two coefficient·variable terms plus
/// an optional constant.
fn gen_expr(rng: &mut OracleRng, vars: &[Var], cfg: &GenConfig) -> IExp {
    let mut e: Option<IExp> = None;
    let nterms = rng.below(3);
    for _ in 0..nterms {
        let v = rng.pick(vars).clone();
        let c = rng.int_in(-cfg.coeff_bound, cfg.coeff_bound);
        let term = match c {
            0 => continue,
            1 => IExp::var(v),
            c => IExp::lit(c) * IExp::var(v),
        };
        e = Some(match e {
            None => term,
            Some(prev) => prev + term,
        });
    }
    let k = rng.int_in(-cfg.const_bound, cfg.const_bound);
    match e {
        None => IExp::lit(k),
        Some(prev) if k == 0 => prev,
        Some(prev) => prev + IExp::lit(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GenConfig::default();
        let mut r1 = OracleRng::new(42);
        let mut g1 = VarGen::new();
        let mut r2 = OracleRng::new(42);
        let mut g2 = VarGen::new();
        for _ in 0..50 {
            assert_eq!(gen_goal(&mut r1, &mut g1, &cfg), gen_goal(&mut r2, &mut g2, &cfg));
        }
    }

    #[test]
    fn stays_in_the_linear_small_fragment() {
        let cfg = GenConfig::default();
        let mut rng = OracleRng::new(7);
        let mut gen = VarGen::new();
        for _ in 0..200 {
            let g = gen_goal(&mut rng, &mut gen, &cfg);
            assert!(!g.ctx.is_empty() && g.ctx.len() <= cfg.max_vars);
            assert!(g.ctx.iter().all(|(_, s)| s.is_int()));
            // Every free variable is bound by the context.
            for p in g.hyps.iter().chain(std::iter::once(&g.concl)) {
                for v in p.free_vars() {
                    assert!(g.ctx.iter().any(|(w, _)| *w == v), "{v} escapes the context");
                }
            }
        }
    }
}
