//! Exact rational arithmetic for the reference Fourier–Motzkin eliminator.
//!
//! `Rat` is a normalized `i128` fraction (positive denominator, reduced by
//! the GCD). Every operation is overflow-checked and returns `None` on
//! overflow, so the oracle either answers exactly or declines — it never
//! silently wraps. For the small-coefficient goals the fuzz generator
//! produces, overflow does not occur in practice.

use std::cmp::Ordering;
use std::fmt;

/// A normalized exact rational number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational `n/1`.
    pub fn int(n: i64) -> Rat {
        Rat { num: i128::from(n), den: 1 }
    }

    /// Zero.
    pub fn zero() -> Rat {
        Rat::int(0)
    }

    /// Builds `num/den`, normalizing sign and common factors. `None` if
    /// `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd128(num, den).max(1);
        Some(Rat { num: sign * (num / g), den: (den / g).abs() })
    }

    /// The numerator (denominator is always positive).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The (positive) denominator.
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` if this is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Checked addition.
    pub fn add(&self, o: &Rat) -> Option<Rat> {
        let num = self.num.checked_mul(o.den)?.checked_add(o.num.checked_mul(self.den)?)?;
        Rat::new(num, self.den.checked_mul(o.den)?)
    }

    /// Checked subtraction.
    pub fn sub(&self, o: &Rat) -> Option<Rat> {
        self.add(&o.neg())
    }

    /// Checked multiplication.
    pub fn mul(&self, o: &Rat) -> Option<Rat> {
        Rat::new(self.num.checked_mul(o.num)?, self.den.checked_mul(o.den)?)
    }

    /// Checked division. `None` when dividing by zero (or on overflow).
    pub fn div(&self, o: &Rat) -> Option<Rat> {
        if o.is_zero() {
            return None;
        }
        Rat::new(self.num.checked_mul(o.den)?, self.den.checked_mul(o.num)?)
    }

    /// Negation (never overflows for normalized values produced from
    /// `i64` inputs).
    pub fn neg(&self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves
        // order. i128 headroom makes this safe for values built from i64.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_gcd() {
        let r = Rat::new(4, -6).unwrap();
        assert_eq!((r.numer(), r.denom()), (-2, 3));
        assert_eq!(r.to_string(), "-2/3");
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 6).unwrap();
        assert_eq!(a.add(&b).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(a.sub(&b).unwrap(), b);
        assert_eq!(a.mul(&b).unwrap(), Rat::new(1, 18).unwrap());
        assert_eq!(a.div(&b).unwrap(), Rat::int(2));
    }

    #[test]
    fn ordering_by_cross_multiplication() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 2).unwrap();
        assert!(a < b);
        assert!(Rat::int(-1) < Rat::zero());
    }

    #[test]
    fn division_by_zero_declines() {
        assert!(Rat::int(1).div(&Rat::zero()).is_none());
        assert!(Rat::new(1, 0).is_none());
    }
}
