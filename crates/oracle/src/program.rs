//! End-to-end property cases over generated DML programs.
//!
//! Each case instantiates a tiny array-indexing program template, compiles
//! it permissively (residual checks stay in) and strictly (compile fails
//! unless fully verified), and runs it under two interpreter
//! configurations:
//!
//! * `Mode::Checked` — every bound check executes;
//! * `Mode::Eliminated` with validation — proven checks are skipped, and
//!   any out-of-bounds access through a "proven" site aborts with
//!   `UnsoundElimination`.
//!
//! Properties asserted per case:
//!
//! 1. both runs produce the same result (value-equal, or both errors);
//! 2. eliminated + executed checks in eliminated mode equals executed
//!    checks in checked mode — no access is silently dropped;
//! 3. every check executed in eliminated mode is counted as residual —
//!    the residual counter never undercounts actual array accesses;
//! 4. if the strict compile succeeds, the permissive compile has zero
//!    residual checks and eliminated mode executes zero array checks;
//! 5. validation never fires (`UnsoundElimination` would mean the solver
//!    proved a falsifiable bound).
//!
//! Call arguments always satisfy the `where`-clause refinement — the
//! dependent type is a caller-side contract, so out-of-contract calls
//! prove nothing about the solver. Templates with unprovable guards get
//! occasionally out-of-*bounds* (but in-contract) indices to exercise the
//! residual-error path in both modes.

use crate::rng::OracleRng;
use dml::{CheckConfig, Compiler, Mode, PipelineError};
use dml_eval::value::{value_eq, Value};
use std::collections::HashSet;
use std::rc::Rc;

/// One array-indexing template: index expression, refinement guard (empty
/// string = no guard), and whether the solver is expected to prove it.
struct Template {
    idx: &'static str,
    guard: &'static str,
    provable: bool,
}

const TEMPLATES: [Template; 7] = [
    Template { idx: "i", guard: "i < n", provable: true },
    Template { idx: "i + 1", guard: "i + 1 < n", provable: true },
    Template { idx: "0", guard: "n > 0", provable: true },
    Template { idx: "length(v) - 1", guard: "n > 0", provable: true },
    // i <= n admits i = n: out of bounds, so not provable.
    Template { idx: "i", guard: "i <= n", provable: false },
    // i - 1 >= 0 holds, but i - 1 < n needs i <= n which the guard lacks.
    Template { idx: "i - 1", guard: "i > 0", provable: false },
    Template { idx: "i", guard: "", provable: false },
];

/// A generated case: the program source and a contract-respecting call.
pub struct ProgramCase {
    /// DML source of the program.
    pub source: String,
    /// Array length `n`.
    pub len: i64,
    /// Index argument `i` (always satisfies the guard; may be out of
    /// bounds when the template is unprovable).
    pub arg: i64,
    /// Whether the bound obligation should be proven.
    pub provable: bool,
}

/// Generates one program case from the template pool.
pub fn gen_program(rng: &mut OracleRng) -> ProgramCase {
    let t = rng.pick(&TEMPLATES);
    let len = rng.int_in(2, 6);
    // Pick `i` satisfying the guard; for unprovable templates let it
    // wander out of bounds sometimes.
    let arg = match t.guard {
        "i < n" => rng.int_in(0, len - 1),
        "i + 1 < n" => rng.int_in(0, len - 2),
        "i <= n" => rng.int_in(0, len),
        "i > 0" => rng.int_in(1, len + 1),
        _ => rng.int_in(0, len),
    };
    let refinement = if t.guard.is_empty() {
        "{n:nat, i:nat}".to_string()
    } else {
        format!("{{n:nat, i:nat | {}}}", t.guard)
    };
    let source = format!(
        "fun f(v, i) = sub(v, {})\nwhere f <| {} int array(n) * int(i) -> int\n",
        t.idx, refinement
    );
    ProgramCase { source, len, arg, provable: t.provable }
}

/// Runs one end-to-end case; `Err` carries a deterministic description of
/// the violated property (with the program source inline).
pub fn check_program_case(rng: &mut OracleRng) -> Result<(), String> {
    let case = gen_program(rng);
    let fail = |what: &str| {
        Err(format!(
            "{what} (len={}, i={}, provable={})\n--- source ---\n{}",
            case.len, case.arg, case.provable, case.source
        ))
    };

    let permissive = match Compiler::new().workers(1).compile(&case.source) {
        Ok(c) => c,
        Err(e) => return fail(&format!("permissive compile failed: {e}")),
    };
    let strict = Compiler::new().workers(1).strict(true).compile(&case.source);
    match (&strict, case.provable) {
        (Ok(_), false) => return fail("strict compile succeeded on an unprovable template"),
        (Err(PipelineError::Unproven(_)), true) => {
            return fail("strict compile rejected a provable template")
        }
        (Err(e), true) => return fail(&format!("strict compile failed unexpectedly: {e}")),
        _ => {}
    }
    if strict.is_ok() && !permissive.residual_checks().is_empty() {
        return fail("strict compile succeeded but permissive left residual checks");
    }

    let args = |case: &ProgramCase| {
        vec![Value::Tuple(Rc::new(vec![
            Value::int_array((0..case.len).map(|k| k * 10)),
            Value::Int(case.arg),
        ]))]
    };
    let mut checked = permissive.machine(Mode::Checked);
    let mut elim =
        permissive.machine_with(CheckConfig::eliminated(HashSet::new()).with_validation());
    let r_checked = checked.call("f", args(&case));
    let r_elim = elim.call("f", args(&case));

    match (&r_checked, &r_elim) {
        (Ok(a), Ok(b)) if !value_eq(a, b) => {
            return fail(&format!("result mismatch: checked={a} eliminated={b}"))
        }
        (Ok(a), Err(e)) => {
            return fail(&format!("checked succeeded ({a}) but eliminated failed: {e}"))
        }
        (Err(e), Ok(b)) => {
            return fail(&format!("checked failed ({e}) but eliminated succeeded ({b})"))
        }
        _ => {}
    }

    let c = &checked.counters;
    let e = &elim.counters;
    if e.array_checks_eliminated + e.array_checks_executed != c.array_checks_executed {
        return fail(&format!(
            "check accounting broken: eliminated {} + executed {} != checked-mode executed {}",
            e.array_checks_eliminated, e.array_checks_executed, c.array_checks_executed
        ));
    }
    if e.array_checks_residual != e.array_checks_executed {
        return fail(&format!(
            "residual counter undercounts: residual {} != executed {} in eliminated mode",
            e.array_checks_residual, e.array_checks_executed
        ));
    }
    if strict.is_ok() && e.array_checks_executed != 0 {
        return fail("fully verified program still executed array checks in eliminated mode");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_hold_across_many_cases() {
        let mut rng = OracleRng::new(3);
        for _ in 0..40 {
            if let Err(e) = check_program_case(&mut rng) {
                panic!("program case diverged:\n{e}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = OracleRng::new(9);
        let mut b = OracleRng::new(9);
        for _ in 0..20 {
            let ca = gen_program(&mut a);
            let cb = gen_program(&mut b);
            assert_eq!(ca.source, cb.source);
            assert_eq!((ca.len, ca.arg), (cb.len, cb.arg));
        }
    }

    #[test]
    fn arguments_respect_the_contract() {
        let mut rng = OracleRng::new(11);
        for _ in 0..200 {
            let c = gen_program(&mut rng);
            assert!(c.arg >= 0, "i is a nat");
            assert!((2..=6).contains(&c.len));
        }
    }
}
