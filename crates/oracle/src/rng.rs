//! Deterministic seeded randomness for the fuzz harness.
//!
//! An xorshift64* generator, written here rather than borrowed from
//! `dml-eval` so the oracle crate stays fully independent of the code
//! under test. The workspace takes no third-party dependencies, so no
//! `rand` either. Identical seeds produce identical streams on every
//! platform, which is what makes `dmlc fuzz --seed S` replayable.

/// A deterministic xorshift64* pseudo-random generator.
#[derive(Debug, Clone)]
pub struct OracleRng {
    state: u64,
}

impl OracleRng {
    /// Creates a generator from a seed (a zero seed is remapped — the
    /// xorshift state must never be zero).
    pub fn new(seed: u64) -> Self {
        OracleRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `i64` in the inclusive range `lo..=hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = OracleRng::new(42);
        let mut b = OracleRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = OracleRng::new(1);
        let mut b = OracleRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = OracleRng::new(0);
        assert_ne!(z.next_u64(), 0, "state never sticks at zero");
    }

    #[test]
    fn int_in_respects_bounds() {
        let mut r = OracleRng::new(7);
        for _ in 0..1000 {
            let n = r.int_in(-3, 5);
            assert!((-3..=5).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = OracleRng::new(9);
        let mut xs: Vec<u32> = (0..10).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
