//! Replayable repro files for divergences and corpus regression cases.
//!
//! A repro file is a line-oriented text format (`# dml-oracle repro v1`)
//! holding one goal in prefix s-expression syntax plus optional metadata:
//!
//! ```text
//! # dml-oracle repro v1
//! note seed=42 iter=17 solver=proven oracle=refuted
//! var x0 int
//! var x1 int
//! hyp (<= 0 x0)
//! hyp (or (< x0 x1) (= x0 0))
//! concl (< (+ x0 1) x1)
//! expect unknown
//! ```
//!
//! * `var NAME int|bool` — a context variable, in order.
//! * `hyp SEXPR` / `concl SEXPR` — propositions in prefix syntax:
//!   `true`, `false`, bare names (boolean variables), `(not p)`,
//!   `(and p q)`, `(or p q)`, `(< e e)` and the other comparisons
//!   (`<= > >= = <>`); expressions are integers, names, `(+ e e)`,
//!   `(- e e)`, `(* e e)`, `(div e e)`, `(mod e e)`, `(min e e)`,
//!   `(max e e)`, `(abs e)`, `(sgn e)`.
//! * `expect WORD` — the expected collapsed verdict (`proven`, `refuted`
//!   or `unknown`), replayed by the corpus test.
//! * `note …` — free-form metadata, preserved by the parser.
//! * `#` lines are comments.
//!
//! Round-tripping is exact: `parse(write(goal))` reproduces the goal up
//! to variable identity (fresh ids are drawn from the caller's `VarGen`).

use dml_index::{Cmp, IExp, Prop, Sort, Var, VarGen};
use dml_solver::Goal;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed repro file.
#[derive(Debug, Clone)]
pub struct ReproCase {
    /// The goal to replay.
    pub goal: Goal,
    /// The `expect` line, if present (`proven` / `refuted` / `unknown`).
    pub expect: Option<String>,
    /// All `note` lines, verbatim.
    pub notes: Vec<String>,
}

/// Serializes a goal (plus free-form notes) to the repro format.
pub fn write_goal(goal: &Goal, expect: Option<&str>, notes: &[String]) -> String {
    let mut out = String::from("# dml-oracle repro v1\n");
    for n in notes {
        let _ = writeln!(out, "note {n}");
    }
    for (v, s) in &goal.ctx {
        let _ = writeln!(out, "var {} {}", v.name(), if s.is_int() { "int" } else { "bool" });
    }
    for h in &goal.hyps {
        let _ = writeln!(out, "hyp {}", prop_sexpr(h));
    }
    let _ = writeln!(out, "concl {}", prop_sexpr(&goal.concl));
    if let Some(e) = expect {
        let _ = writeln!(out, "expect {e}");
    }
    out
}

/// Renders a proposition in prefix syntax.
pub fn prop_sexpr(p: &Prop) -> String {
    match p {
        Prop::True => "true".into(),
        Prop::False => "false".into(),
        Prop::BVar(v) => v.name().to_string(),
        Prop::Not(q) => format!("(not {})", prop_sexpr(q)),
        Prop::And(a, b) => format!("(and {} {})", prop_sexpr(a), prop_sexpr(b)),
        Prop::Or(a, b) => format!("(or {} {})", prop_sexpr(a), prop_sexpr(b)),
        Prop::Cmp(op, a, b) => format!("({} {} {})", cmp_token(*op), iexp_sexpr(a), iexp_sexpr(b)),
    }
}

/// Renders an index expression in prefix syntax.
pub fn iexp_sexpr(e: &IExp) -> String {
    match e {
        IExp::Var(v) => v.name().to_string(),
        IExp::Lit(n) => n.to_string(),
        IExp::Add(a, b) => format!("(+ {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Sub(a, b) => format!("(- {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Mul(a, b) => format!("(* {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Div(a, b) => format!("(div {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Mod(a, b) => format!("(mod {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Min(a, b) => format!("(min {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Max(a, b) => format!("(max {} {})", iexp_sexpr(a), iexp_sexpr(b)),
        IExp::Abs(a) => format!("(abs {})", iexp_sexpr(a)),
        IExp::Sgn(a) => format!("(sgn {})", iexp_sexpr(a)),
    }
}

fn cmp_token(op: Cmp) -> &'static str {
    match op {
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
        Cmp::Eq => "=",
        Cmp::Ne => "<>",
    }
}

/// Parses a repro file. Fresh variable ids come from `gen`, so replayed
/// goals never collide with ids the caller already handed out.
///
/// # Errors
///
/// Returns a line-anchored message on malformed input.
pub fn parse_goal(text: &str, gen: &mut VarGen) -> Result<ReproCase, String> {
    let mut ctx: Vec<(Var, Sort)> = Vec::new();
    let mut names: HashMap<String, Var> = HashMap::new();
    let mut hyps = Vec::new();
    let mut concl: Option<Prop> = None;
    let mut expect = None;
    let mut notes = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "note" => notes.push(rest.to_string()),
            "expect" => expect = Some(rest.trim().to_string()),
            "var" => {
                let mut it = rest.split_whitespace();
                let (Some(name), Some(sort)) = (it.next(), it.next()) else {
                    return Err(err("expected `var NAME int|bool`".into()));
                };
                let s = match sort {
                    "int" => Sort::Int,
                    "bool" => Sort::Bool,
                    other => return Err(err(format!("unknown sort `{other}`"))),
                };
                let v = gen.fresh(name);
                names.insert(name.to_string(), v.clone());
                ctx.push((v, s));
            }
            "hyp" | "concl" => {
                let mut toks = tokenize(rest);
                let p = parse_prop(&mut toks, &names).map_err(&err)?;
                if let Some(extra) = toks.first() {
                    return Err(err(format!("trailing token `{extra}`")));
                }
                if cmd == "hyp" {
                    hyps.push(p);
                } else {
                    concl = Some(p);
                }
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    let concl = concl.ok_or("missing `concl` line")?;
    Ok(ReproCase { goal: Goal { ctx, hyps, concl, residual_existential: false }, expect, notes })
}

fn tokenize(s: &str) -> Vec<String> {
    s.replace('(', " ( ").replace(')', " ) ").split_whitespace().map(String::from).collect()
}

fn parse_prop(toks: &mut Vec<String>, names: &HashMap<String, Var>) -> Result<Prop, String> {
    if toks.is_empty() {
        return Err("unexpected end of proposition".into());
    }
    let head = toks.remove(0);
    if head != "(" {
        return match head.as_str() {
            "true" => Ok(Prop::True),
            "false" => Ok(Prop::False),
            name => names
                .get(name)
                .map(|v| Prop::BVar(v.clone()))
                .ok_or_else(|| format!("unknown boolean variable `{name}`")),
        };
    }
    let op = if toks.is_empty() { return Err("empty form".into()) } else { toks.remove(0) };
    let p = match op.as_str() {
        "not" => Prop::Not(Box::new(parse_prop(toks, names)?)),
        "and" => parse_prop(toks, names)?.and(parse_prop(toks, names)?),
        "or" => parse_prop(toks, names)?.or(parse_prop(toks, names)?),
        "<" | "<=" | ">" | ">=" | "=" | "<>" => {
            let cmp = match op.as_str() {
                "<" => Cmp::Lt,
                "<=" => Cmp::Le,
                ">" => Cmp::Gt,
                ">=" => Cmp::Ge,
                "=" => Cmp::Eq,
                _ => Cmp::Ne,
            };
            Prop::cmp(cmp, parse_iexp(toks, names)?, parse_iexp(toks, names)?)
        }
        other => return Err(format!("unknown proposition form `{other}`")),
    };
    expect_close(toks)?;
    Ok(p)
}

fn parse_iexp(toks: &mut Vec<String>, names: &HashMap<String, Var>) -> Result<IExp, String> {
    if toks.is_empty() {
        return Err("unexpected end of expression".into());
    }
    let head = toks.remove(0);
    if head != "(" {
        if let Ok(n) = head.parse::<i64>() {
            return Ok(IExp::lit(n));
        }
        return names
            .get(&head)
            .map(|v| IExp::var(v.clone()))
            .ok_or_else(|| format!("unknown variable `{head}`"));
    }
    let op = if toks.is_empty() { return Err("empty form".into()) } else { toks.remove(0) };
    let e = match op.as_str() {
        "abs" => parse_iexp(toks, names)?.abs(),
        "sgn" => parse_iexp(toks, names)?.sgn(),
        "+" => parse_iexp(toks, names)? + parse_iexp(toks, names)?,
        "-" => parse_iexp(toks, names)? - parse_iexp(toks, names)?,
        "*" => parse_iexp(toks, names)? * parse_iexp(toks, names)?,
        "div" => parse_iexp(toks, names)?.div(parse_iexp(toks, names)?),
        "mod" => parse_iexp(toks, names)?.modulo(parse_iexp(toks, names)?),
        "min" => parse_iexp(toks, names)?.min(parse_iexp(toks, names)?),
        "max" => parse_iexp(toks, names)?.max(parse_iexp(toks, names)?),
        other => return Err(format!("unknown expression form `{other}`")),
    };
    expect_close(toks)?;
    Ok(e)
}

fn expect_close(toks: &mut Vec<String>) -> Result<(), String> {
    if toks.first().map(String::as_str) == Some(")") {
        toks.remove(0);
        Ok(())
    } else {
        Err("expected `)`".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_goal, GenConfig};
    use crate::rng::OracleRng;

    #[test]
    fn round_trips_generated_goals() {
        let cfg = GenConfig::default();
        let mut rng = OracleRng::new(11);
        let mut gen = VarGen::new();
        for _ in 0..100 {
            let goal = gen_goal(&mut rng, &mut gen, &cfg);
            let text = write_goal(&goal, Some("unknown"), &["seed=11".into()]);
            let mut gen2 = VarGen::new();
            let case = parse_goal(&text, &mut gen2).expect(&text);
            // Structural equality up to variable identity: compare the
            // re-serialized form.
            assert_eq!(text, write_goal(&case.goal, Some("unknown"), &["seed=11".into()]));
            assert_eq!(case.expect.as_deref(), Some("unknown"));
            assert_eq!(case.notes, vec!["seed=11".to_string()]);
        }
    }

    #[test]
    fn parses_every_operator() {
        let text = "\
# dml-oracle repro v1
var n int
var b bool
hyp (<= (min n 3) (max n (- 0 3)))
hyp (or b (not b))
hyp (= (mod (abs n) 4) (sgn n))
concl (<> (div (* 2 n) 2) (+ n 1))
";
        let mut gen = VarGen::new();
        let case = parse_goal(text, &mut gen).unwrap();
        assert_eq!(case.goal.ctx.len(), 2);
        assert_eq!(case.goal.hyps.len(), 3);
        assert_eq!(text, write_goal(&case.goal, None, &[]));
    }

    #[test]
    fn rejects_malformed_input() {
        let mut gen = VarGen::new();
        assert!(parse_goal("concl (< 1", &mut gen).is_err(), "unclosed form");
        assert!(parse_goal("concl (< 1 y)", &mut gen).is_err(), "unknown variable");
        assert!(parse_goal("var n rat\nconcl true", &mut gen).is_err(), "unknown sort");
        assert!(parse_goal("hyp true", &mut gen).is_err(), "missing conclusion");
        assert!(parse_goal("frob x\nconcl true", &mut gen).is_err(), "unknown directive");
    }
}
