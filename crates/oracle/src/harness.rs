//! The differential fuzz harness: generate → decide → cross-check.
//!
//! Every iteration generates one goal, asks the [oracle](crate::oracle)
//! for a reference verdict, and decides the goal with the production
//! solver under several configurations:
//!
//! * shared solver, cache on, unlimited fuel (the production shape —
//!   its cache is warm across iterations, exactly like a compile);
//! * fresh solver, cache off, unlimited fuel;
//! * fresh solver, cache on (cold), unlimited fuel;
//! * shared solver at two fuel budgets (tiny and ample).
//!
//! Cross-checks, in decreasing severity:
//!
//! 1. **Soundness vs oracle** — solver `Proven` against an enumerated
//!    integer countermodel, or solver `Refuted` against a rational
//!    unsatisfiability proof, is a bug in the bound-check elision story.
//! 2. **Config coherence** — a fresh cache-on solver and a cache-off
//!    solver recompute the same goal and must agree *exactly*. The warm
//!    shared solver may serve a verdict cached for a canonically-equal
//!    goal, and canonically-equal goals can split refuted/unknown
//!    differently (hypothesis order steers which DNF disjunct the witness
//!    search certifies) — so against the warm cache only the *Proven*
//!    status is pinned, which is the part elision soundness depends on.
//! 3. **Budget monotonicity** — a fuel-limited `Proven` forces unlimited
//!    `Proven`, and a fuel-limited `Refuted` (a concrete countermodel)
//!    forbids unlimited `Proven`.
//! 4. **Metamorphic invariances** — α-renaming must preserve the full
//!    verdict (the canonical renamer assigns dense ids in
//!    first-occurrence order, so α-variants share a cache key), while
//!    hypothesis permutation and duplication must preserve the *Proven*
//!    status: a proof must never depend on hypothesis order, but the
//!    refuted/unknown split may (the witness search certifies the first
//!    satisfiable DNF disjunct, whose identity follows hypothesis order).
//! 5. **Completeness on the generated fragment** — a goal the oracle
//!    *proves* must be proven by the unlimited solver: rational
//!    unsatisfiability means Fourier–Motzkin refutes every disjunct of
//!    the negation, and integer tightening only strengthens that. An
//!    oracle *refutation* does not bound the solver the same way — the
//!    witness search only certifies the first satisfiable disjunct, and
//!    only inside its `[-8, 8]` box — so there `Unknown` is within
//!    contract and only a solver `Proven` is a (soundness) divergence.
//!
//! Every `workers_batch` iterations the accumulated goals are wrapped in
//! `Constraint`s and proven with 1-worker and 4-worker `prove_all`,
//! pinning verdict equality under parallel solving.
//!
//! With [`FuzzConfig::infer`] on, the run ends with an end-to-end
//! inference cross-check: each seed benchmark is stripped of its
//! annotations, re-inferred (`dml::Compiler::infer`), and every
//! solver-proven goal of the refined program is decided by the oracle —
//! a countermodel there means a synthesized annotation made the solver
//! elide a falsifiable bound check.
//!
//! Divergences are [minimized](crate::minimize()) and serialized as
//! [repro files](crate::repro); the report is deterministic for a fixed
//! seed (it carries a digest the tests compare across runs).

use crate::gen::{gen_goal, GenConfig};
use crate::minimize::minimize;
use crate::oracle::{decide as oracle_decide, OracleVerdict, DEFAULT_BOUND};
use crate::program::check_program_case;
use crate::repro::write_goal;
use crate::rng::OracleRng;
use crate::scale::{gen_scale_corpus, minimize_scale_case, verify_scale_case, ScaleConfig};
use dml_index::{Constraint, Prop, VarGen, Verdict};
use dml_obs::json::{obj, Json};
use dml_solver::{prove_all, Goal, Solver, SolverOptions, SolverStats};
use std::fmt;
use std::path::PathBuf;

/// Fuzz-run configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// RNG seed; identical seeds give identical reports.
    pub seed: u64,
    /// Number of goal iterations.
    pub iters: u64,
    /// Enumeration box half-width for the oracle.
    pub bound: i64,
    /// Where to write divergence repro files (`None` keeps them in the
    /// report only).
    pub repro_dir: Option<PathBuf>,
    /// Also run end-to-end generated-program cases (every 8th iteration).
    pub programs: bool,
    /// Also cross-check inferred refinements: strip each benchmark
    /// program's annotations, re-infer them, and decide every
    /// solver-proven goal of the refined program with the exact oracle.
    pub infer: bool,
    /// Goal-generator tunables.
    pub gen: GenConfig,
    /// Batch size for the 1-vs-4-worker `prove_all` comparison.
    pub workers_batch: usize,
    /// Also cross-check the scale-corpus generator: compile each seeded
    /// scale case under `{workers 1, workers 4} × {cache on, cache off}`
    /// and pin the stamped verdict counts plus stable-report equality
    /// across the matrix. Divergent cases are shrunk with
    /// [`crate::minimize_scale_case`] and serialized as `.dml` repros.
    pub scale: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 1000,
            bound: DEFAULT_BOUND,
            repro_dir: None,
            programs: true,
            infer: false,
            gen: GenConfig::default(),
            workers_batch: 32,
            scale: false,
        }
    }
}

/// What kind of cross-check a divergence violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Solver proved a goal the enumerator refutes with a concrete
    /// integer countermodel — an unsound bound-check elision.
    UnsoundProven,
    /// Solver refuted a goal whose negation the rational eliminator
    /// proves unsatisfiable — a bogus counterexample claim.
    BogusRefutation,
    /// The oracle proved the goal (rationally unsatisfiable negation)
    /// but the unlimited solver answered `Unknown` — a completeness gap
    /// integer Fourier–Motzkin cannot have on this fragment.
    IncompleteDecided,
    /// Verdicts differ across unlimited solver configurations
    /// (cache/sharing/workers must be invisible).
    ConfigFlip,
    /// A fuel-limited run *decided* differently than the unlimited run.
    BudgetFlip,
    /// Hypothesis permutation, duplication, or α-renaming changed the
    /// verdict.
    MetamorphicFlip,
    /// A generated program behaved differently across check modes.
    ProgramMismatch,
    /// The solver proved a goal of an inference-refined program that the
    /// enumeration oracle refutes with a concrete countermodel — an
    /// inferred annotation led to an unsound bound-check elision.
    InferUnsound,
    /// A scale-corpus case diverged from its stamped expectation: the
    /// verdict counts the generator predicted did not match what the
    /// compiler produced, or the stable report differed across the
    /// workers × cache configuration matrix.
    ScaleMismatch,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::UnsoundProven => "unsound-proven",
            DivergenceKind::BogusRefutation => "bogus-refutation",
            DivergenceKind::IncompleteDecided => "incomplete-decided",
            DivergenceKind::ConfigFlip => "config-flip",
            DivergenceKind::BudgetFlip => "budget-flip",
            DivergenceKind::MetamorphicFlip => "metamorphic-flip",
            DivergenceKind::ProgramMismatch => "program-mismatch",
            DivergenceKind::InferUnsound => "infer-unsound",
            DivergenceKind::ScaleMismatch => "scale-mismatch",
        };
        write!(f, "{s}")
    }
}

/// One detected divergence with its minimized, replayable repro.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Iteration at which it was found.
    pub iter: u64,
    /// Which cross-check failed.
    pub kind: DivergenceKind,
    /// Deterministic human-readable detail.
    pub detail: String,
    /// The repro-file content (minimized goal + notes), replayable with
    /// [`crate::repro::parse_goal`]. Empty for program mismatches (the
    /// detail carries the source).
    pub repro: String,
    /// Where the repro file was written, when a directory was configured.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// The seed the run used.
    pub seed: u64,
    /// Goal iterations executed.
    pub iters: u64,
    /// Solver verdict counts under the base configuration.
    pub proven: u64,
    /// See [`FuzzReport::proven`].
    pub refuted: u64,
    /// See [`FuzzReport::proven`].
    pub unknown: u64,
    /// Oracle verdict counts.
    pub oracle_proven: u64,
    /// See [`FuzzReport::oracle_proven`].
    pub oracle_refuted: u64,
    /// See [`FuzzReport::oracle_proven`].
    pub oracle_unknown: u64,
    /// Metamorphic variants checked.
    pub metamorphic_checks: u64,
    /// End-to-end program cases executed.
    pub program_cases: u64,
    /// Goals compared under 1-vs-4-worker `prove_all`.
    pub worker_checked_goals: u64,
    /// Benchmark programs round-tripped through strip → infer (0 unless
    /// [`FuzzConfig::infer`] is on).
    pub infer_programs: u64,
    /// Annotations inference synthesized and the solver verified.
    pub infer_accepted: u64,
    /// Solver-proven goals of refined programs decided by the oracle.
    pub infer_goals: u64,
    /// Scale-corpus cases compiled under the configuration matrix (0
    /// unless [`FuzzConfig::scale`] is on).
    pub scale_cases: u64,
    /// Total bound-check sites across those cases.
    pub scale_sites: u64,
    /// All divergences, in discovery order.
    pub divergences: Vec<Divergence>,
    /// FNV-1a digest over every verdict of the run — two runs with the
    /// same seed must produce the same digest (the determinism pin).
    pub digest: u64,
}

impl FuzzReport {
    /// `true` when the run found no divergence.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz: seed {} · {} goal(s) · digest {:016x}\n",
            self.seed, self.iters, self.digest
        ));
        out.push_str(&format!(
            "solver verdicts: {} proven, {} refuted, {} unknown\n",
            self.proven, self.refuted, self.unknown
        ));
        out.push_str(&format!(
            "oracle verdicts: {} proven, {} refuted, {} unknown\n",
            self.oracle_proven, self.oracle_refuted, self.oracle_unknown
        ));
        out.push_str(&format!(
            "cross-checks: {} metamorphic variant(s), {} worker-compared goal(s), {} program case(s)\n",
            self.metamorphic_checks, self.worker_checked_goals, self.program_cases
        ));
        if self.infer_programs > 0 {
            out.push_str(&format!(
                "inference: {} program(s) stripped and re-inferred, {} annotation(s) accepted, \
                 {} proven goal(s) oracle-checked\n",
                self.infer_programs, self.infer_accepted, self.infer_goals
            ));
        }
        if self.scale_cases > 0 {
            out.push_str(&format!(
                "scale: {} corpus case(s) compiled across the workers x cache matrix, \
                 {} check site(s) pinned\n",
                self.scale_cases, self.scale_sites
            ));
        }
        if self.ok() {
            out.push_str("no divergences\n");
        } else {
            out.push_str(&format!("{} DIVERGENCE(S):\n", self.divergences.len()));
            for d in &self.divergences {
                out.push_str(&format!("  iter {}: [{}] {}\n", d.iter, d.kind, d.detail));
                if let Some(p) = &d.repro_path {
                    out.push_str(&format!("    repro: {}\n", p.display()));
                }
            }
        }
        out
    }

    /// Machine-readable summary (stable key order).
    pub fn render_json(&self) -> String {
        let divs: Vec<Json> = self
            .divergences
            .iter()
            .map(|d| {
                obj(vec![
                    ("iter", Json::Int(d.iter as i64)),
                    ("kind", Json::Str(d.kind.to_string())),
                    ("detail", Json::Str(d.detail.clone())),
                    ("repro", Json::Str(d.repro.clone())),
                    (
                        "reproPath",
                        d.repro_path
                            .as_ref()
                            .map(|p| Json::Str(p.display().to_string()))
                            .unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("seed", Json::Int(self.seed as i64)),
            ("iters", Json::Int(self.iters as i64)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            (
                "solver",
                obj(vec![
                    ("proven", Json::Int(self.proven as i64)),
                    ("refuted", Json::Int(self.refuted as i64)),
                    ("unknown", Json::Int(self.unknown as i64)),
                ]),
            ),
            (
                "oracle",
                obj(vec![
                    ("proven", Json::Int(self.oracle_proven as i64)),
                    ("refuted", Json::Int(self.oracle_refuted as i64)),
                    ("unknown", Json::Int(self.oracle_unknown as i64)),
                ]),
            ),
            ("metamorphicChecks", Json::Int(self.metamorphic_checks as i64)),
            ("workerCheckedGoals", Json::Int(self.worker_checked_goals as i64)),
            ("programCases", Json::Int(self.program_cases as i64)),
            (
                "infer",
                obj(vec![
                    ("programs", Json::Int(self.infer_programs as i64)),
                    ("accepted", Json::Int(self.infer_accepted as i64)),
                    ("goals", Json::Int(self.infer_goals as i64)),
                ]),
            ),
            (
                "scale",
                obj(vec![
                    ("cases", Json::Int(self.scale_cases as i64)),
                    ("sites", Json::Int(self.scale_sites as i64)),
                ]),
            ),
            ("divergences", Json::Array(divs)),
        ])
        .render()
    }
}

/// Tiny fuel budget that regularly exhausts on generated goals.
const FUEL_TINY: u64 = 2;
/// Ample fuel budget that never exhausts on generated goals.
const FUEL_AMPLE: u64 = 1024;

/// Runs the differential fuzz harness (see module docs).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = OracleRng::new(cfg.seed);
    let mut gen = VarGen::new();
    let mut report = FuzzReport { seed: cfg.seed, ..FuzzReport::default() };
    let mut digest = Fnv::new();

    let shared = Solver::new(SolverOptions::default().with_workers(Some(1)));
    let tiny = shared
        .with_options(SolverOptions::default().with_workers(Some(1)).with_fuel(Some(FUEL_TINY)));
    let ample = shared
        .with_options(SolverOptions::default().with_workers(Some(1)).with_fuel(Some(FUEL_AMPLE)));

    let mut batch: Vec<(u64, Goal)> = Vec::new();

    for iter in 0..cfg.iters {
        let goal = gen_goal(&mut rng, &mut gen, &cfg.gen);
        report.iters += 1;

        let oracle = oracle_decide(&goal, cfg.bound);
        match &oracle {
            OracleVerdict::Proven => report.oracle_proven += 1,
            OracleVerdict::Refuted(_) => report.oracle_refuted += 1,
            OracleVerdict::Unknown => report.oracle_unknown += 1,
        }

        // Unlimited configurations: shared warm cache, no cache, cold cache.
        let shared_v = decide_with(&shared, &goal, &mut gen);
        let nocache = decide_with(
            &Solver::new(SolverOptions::default().with_workers(Some(1)).with_cache(false)),
            &goal,
            &mut gen,
        );
        let cold = decide_with(
            &Solver::new(SolverOptions::default().with_workers(Some(1))),
            &goal,
            &mut gen,
        );
        match &cold {
            Verdict::Proven => report.proven += 1,
            Verdict::Refuted => report.refuted += 1,
            _ => report.unknown += 1,
        }
        digest.push(&cold.to_string());
        digest.push(&shared_v.to_string());

        // A fresh cache-on solver and a cache-off solver both recompute
        // this exact goal; any difference is a bug.
        if cold != nocache {
            record(
                &mut report,
                cfg,
                iter,
                DivergenceKind::ConfigFlip,
                format!("cold-cache={cold} vs no-cache={nocache}"),
                &goal,
                |g, gen| {
                    let a = decide_with(
                        &Solver::new(SolverOptions::default().with_workers(Some(1))),
                        g,
                        gen,
                    );
                    let b = decide_with(
                        &Solver::new(
                            SolverOptions::default().with_workers(Some(1)).with_cache(false),
                        ),
                        g,
                        gen,
                    );
                    a != b
                },
                &mut gen,
            );
        }
        // The warm shared cache may have served a verdict computed for a
        // canonically-equal goal; the proven status must still match. Not
        // minimized: the flip depends on the cache history, which shrinking
        // cannot replay.
        if shared_v.is_proven() != cold.is_proven() {
            push_divergence(
                &mut report,
                cfg,
                Divergence {
                    iter,
                    kind: DivergenceKind::ConfigFlip,
                    detail: format!(
                        "warm shared cache flipped proven status: shared={shared_v} vs cold={cold}"
                    ),
                    repro: write_goal(
                        &goal,
                        None,
                        &[format!(
                            "warm-cache proven-status flip: shared={shared_v} cold={cold} \
                             (seed={} iter={iter})",
                            cfg.seed
                        )],
                    ),
                    repro_path: None,
                },
            );
        }

        // Budget monotonicity: a fuel-limited proof forces an unlimited
        // proof; a fuel-limited countermodel forbids one.
        for (name, solver) in [("fuel-tiny", &tiny), ("fuel-ample", &ample)] {
            let v = decide_with(solver, &goal, &mut gen);
            digest.push(&v.to_string());
            let conflict =
                (v.is_proven() && !cold.is_proven()) || (v.is_refuted() && cold.is_proven());
            if conflict {
                let fuel = solver.options().fuel;
                record(
                    &mut report,
                    cfg,
                    iter,
                    DivergenceKind::BudgetFlip,
                    format!("unlimited={cold} vs {name}={v}"),
                    &goal,
                    move |g, gen| {
                        let unlimited = decide_with(
                            &Solver::new(SolverOptions::default().with_workers(Some(1))),
                            g,
                            gen,
                        );
                        let limited = decide_with(
                            &Solver::new(
                                SolverOptions::default().with_workers(Some(1)).with_fuel(fuel),
                            ),
                            g,
                            gen,
                        );
                        (limited.is_proven() && !unlimited.is_proven())
                            || (limited.is_refuted() && unlimited.is_proven())
                    },
                    &mut gen,
                );
            }
        }

        // Oracle cross-check (against the deterministic cold verdict).
        match (&oracle, &cold) {
            (OracleVerdict::Refuted(model), Verdict::Proven) => {
                let detail = format!(
                    "solver proved a goal with integer countermodel {}",
                    model.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join(" ")
                );
                let bound = cfg.bound;
                record(
                    &mut report,
                    cfg,
                    iter,
                    DivergenceKind::UnsoundProven,
                    detail,
                    &goal,
                    move |g, gen| {
                        matches!(oracle_decide(g, bound), OracleVerdict::Refuted(_))
                            && decide_with(
                                &Solver::new(SolverOptions::default().with_workers(Some(1))),
                                g,
                                gen,
                            ) == Verdict::Proven
                    },
                    &mut gen,
                );
            }
            (OracleVerdict::Proven, Verdict::Refuted) => {
                let bound = cfg.bound;
                record(
                    &mut report,
                    cfg,
                    iter,
                    DivergenceKind::BogusRefutation,
                    "solver refuted a goal whose negation is rationally unsatisfiable".into(),
                    &goal,
                    move |g, gen| {
                        oracle_decide(g, bound) == OracleVerdict::Proven
                            && decide_with(
                                &Solver::new(SolverOptions::default().with_workers(Some(1))),
                                g,
                                gen,
                            ) == Verdict::Refuted
                    },
                    &mut gen,
                );
            }
            (OracleVerdict::Proven, v) if v.is_unknown() => {
                let bound = cfg.bound;
                record(
                    &mut report,
                    cfg,
                    iter,
                    DivergenceKind::IncompleteDecided,
                    format!("oracle proved but unlimited solver answered `{v}`"),
                    &goal,
                    move |g, gen| {
                        oracle_decide(g, bound) == OracleVerdict::Proven
                            && decide_with(
                                &Solver::new(SolverOptions::default().with_workers(Some(1))),
                                g,
                                gen,
                            )
                            .is_unknown()
                    },
                    &mut gen,
                );
            }
            _ => {}
        }

        // Metamorphic variants (decided with the shared warm-cache solver:
        // a canonicalization bug would surface as a stale cache answer).
        for (name, variant) in metamorphic_variants(&goal, &mut rng, &mut gen) {
            report.metamorphic_checks += 1;
            let v = decide_with(&shared, &variant, &mut gen);
            digest.push(&v.to_string());
            // α-renaming shares a cache key with the base, so the whole
            // verdict must survive; permutation/duplication key separately
            // and only the proven status is order-independent.
            let flipped = if name == "alpha-renaming" {
                v != shared_v
            } else {
                v.is_proven() != shared_v.is_proven()
            };
            if flipped {
                let repro = write_goal(
                    &variant,
                    None,
                    &[format!(
                        "metamorphic {name}: base verdict {shared_v}, variant verdict {v} \
                         (seed={} iter={iter})",
                        cfg.seed
                    )],
                );
                push_divergence(
                    &mut report,
                    cfg,
                    Divergence {
                        iter,
                        kind: DivergenceKind::MetamorphicFlip,
                        detail: format!("{name}: base={shared_v} variant={v}"),
                        repro,
                        repro_path: None,
                    },
                );
            }
        }

        batch.push((iter, goal));
        if batch.len() >= cfg.workers_batch {
            check_workers(&mut report, cfg, &batch, &mut gen, &mut digest);
            batch.clear();
        }

        // End-to-end program case on a fixed cadence.
        if cfg.programs && iter % 8 == 0 {
            report.program_cases += 1;
            if let Err(detail) = check_program_case(&mut rng) {
                push_divergence(
                    &mut report,
                    cfg,
                    Divergence {
                        iter,
                        kind: DivergenceKind::ProgramMismatch,
                        detail,
                        repro: String::new(),
                        repro_path: None,
                    },
                );
            }
        }
    }
    if !batch.is_empty() {
        check_workers(&mut report, cfg, &batch, &mut gen, &mut digest);
    }
    if cfg.infer {
        check_infer(&mut report, cfg, &mut digest);
    }
    if cfg.scale {
        check_scale(&mut report, cfg, &mut digest);
    }
    report.digest = digest.finish();
    report
}

/// Obligation target for the fuzz-mode scale corpus: large enough that
/// every unit shape (proven/residual/mixed/nonlinear chains) appears,
/// small enough for a nightly-CI iteration.
const SCALE_TARGET: usize = 240;

/// Cross-checks the scale-corpus generator end to end (see
/// [`FuzzConfig::scale`]). Three properties are pinned per case:
///
/// 1. **Determinism** — regenerating the corpus from the same seed must
///    reproduce every source byte-for-byte.
/// 2. **Stamped counts** — the verdict counts the generator predicted
///    (proven / residual / nonlinear sites) must match the compiler
///    under every `{workers} × {cache}` configuration.
/// 3. **Config invisibility** — the stable report body (volatile timing
///    and cache lines stripped) must be identical across the matrix.
///
/// A diverging case is shrunk with [`minimize_scale_case`]: units are
/// dropped while the *first* configuration still exhibits the failure,
/// and the minimized `.dml` source is the repro.
fn check_scale(report: &mut FuzzReport, cfg: &FuzzConfig, digest: &mut Fnv) {
    let scale_cfg = ScaleConfig::new(cfg.seed, SCALE_TARGET).files(3);
    let corpus = gen_scale_corpus(&scale_cfg);
    let again = gen_scale_corpus(&scale_cfg);
    for (a, b) in corpus.cases.iter().zip(again.cases.iter()) {
        if a.source != b.source {
            push_divergence(
                report,
                cfg,
                Divergence {
                    iter: 0,
                    kind: DivergenceKind::ScaleMismatch,
                    detail: format!("regenerating `{}` from seed {} differed", a.name, cfg.seed),
                    repro: a.source.clone(),
                    repro_path: None,
                },
            );
            return;
        }
    }

    let matrix: [(usize, bool); 4] = [(1, true), (1, false), (4, true), (4, false)];
    for case in &corpus.cases {
        report.scale_cases += 1;
        report.scale_sites += case.expected.check_sites as u64;
        let mut base: Option<String> = None;
        for (workers, cache) in matrix {
            let compiler = dml::Compiler::new().workers(workers).cache(cache);
            let fail = match compiler.compile(&case.source) {
                Err(e) => Some(format!("workers={workers} cache={cache}: compile failed: {e}")),
                Ok(compiled) => match verify_scale_case(&compiled, &case.expected) {
                    Err(e) => Some(format!("workers={workers} cache={cache}: {e}")),
                    Ok(()) => {
                        let body =
                            dml::stable_body(&dml::check_report(&compiled, &case.source).text);
                        match &base {
                            None => {
                                digest.push(&body);
                                base = Some(body);
                                None
                            }
                            Some(b) if *b != body => Some(format!(
                                "workers={workers} cache={cache}: stable report differs \
                                 from workers=1 cache=on"
                            )),
                            Some(_) => None,
                        }
                    }
                },
            };
            if let Some(detail) = fail {
                // Shrink against the *observed* failing configuration.
                let shrunk = minimize_scale_case(case, |c| {
                    let compiler = dml::Compiler::new().workers(workers).cache(cache);
                    match compiler.compile(&c.source) {
                        Err(_) => true,
                        Ok(compiled) => verify_scale_case(&compiled, &c.expected).is_err(),
                    }
                });
                push_divergence(
                    report,
                    cfg,
                    Divergence {
                        iter: 0,
                        kind: DivergenceKind::ScaleMismatch,
                        detail: format!("{}: {detail}", case.name),
                        repro: format!(
                            "(* scale-mismatch in {} (seed={}): {detail} *)\n{}",
                            case.name, cfg.seed, shrunk.source
                        ),
                        repro_path: None,
                    },
                );
                break;
            }
        }
    }
}

/// Cross-checks the inference pipeline end to end: every seed benchmark
/// program is stripped of its annotations, recompiled with inference on,
/// and every obligation of the refined program is re-proven goal by goal;
/// each solver-`Proven` goal is then decided by the enumeration oracle. A
/// concrete countermodel means an inferred annotation made the solver
/// prove a falsifiable bound — the exact unsoundness `dmlc infer`'s
/// "solver disposes" contract must exclude. Goals carrying residual
/// existentials are skipped: a countermodel of `hyps ∧ ¬concl` does not
/// refute an existentially quantified conclusion.
fn check_infer(report: &mut FuzzReport, cfg: &FuzzConfig, digest: &mut Fnv) {
    let infer_fail = |report: &mut FuzzReport, cfg: &FuzzConfig, name: &str, detail: String| {
        push_divergence(
            report,
            cfg,
            Divergence {
                iter: 0,
                kind: DivergenceKind::InferUnsound,
                detail: format!("{name}: {detail}"),
                repro: String::new(),
                repro_path: None,
            },
        );
    };
    for p in dml_programs::all_programs() {
        report.infer_programs += 1;
        let stripped = match dml::strip_annotations(p.source) {
            Ok(s) => s,
            Err(e) => {
                infer_fail(report, cfg, p.name, format!("strip failed: {e}"));
                continue;
            }
        };
        let compiled = match dml::Compiler::new().workers(1).infer(true).compile(&stripped) {
            Ok(c) => c,
            Err(e) => {
                infer_fail(report, cfg, p.name, format!("stripped compile failed: {e}"));
                continue;
            }
        };
        report.infer_accepted += compiled.infer_report().map_or(0, |r| r.accepted.len() as u64);
        // Re-prove each obligation of the refined program to recover its
        // individual goals, then hand every proven one to the oracle. The
        // id range starts far above anything elaboration generated, so
        // existential elimination cannot capture constraint variables.
        let solver = Solver::new(SolverOptions::default().with_workers(Some(1)));
        let mut oracle_gen = VarGen::starting_at(1 << 24);
        for (ob, _) in compiled.obligations() {
            let outcome = solver.prove(&ob.constraint, &mut oracle_gen);
            for (goal, verdict) in &outcome.results {
                if !verdict.is_proven() || goal.residual_existential {
                    continue;
                }
                report.infer_goals += 1;
                if let OracleVerdict::Refuted(model) = oracle_decide(goal, cfg.bound) {
                    let assignment =
                        model.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join(" ");
                    push_divergence(
                        report,
                        cfg,
                        Divergence {
                            iter: 0,
                            kind: DivergenceKind::InferUnsound,
                            detail: format!(
                                "{}: solver proved a goal of the refined `{}` with integer \
                                 countermodel {assignment}",
                                p.name, ob.in_fun
                            ),
                            repro: write_goal(
                                goal,
                                None,
                                &[format!(
                                    "infer-unsound in {} fun {} (countermodel {assignment})",
                                    p.name, ob.in_fun
                                )],
                            ),
                            repro_path: None,
                        },
                    );
                }
            }
        }
        digest.push(p.name);
        digest.push(&report.infer_goals.to_string());
    }
}

/// Decides one goal with a solver (fresh stats; the solver's options and
/// cache drive the interesting behaviour).
fn decide_with(solver: &Solver, goal: &Goal, gen: &mut VarGen) -> Verdict {
    let mut stats = SolverStats::default();
    solver.decide(goal, gen, &mut stats)
}

/// The metamorphic variants of a goal: hypothesis permutation, duplicate
/// hypothesis, and α-renaming of every context variable.
fn metamorphic_variants(
    goal: &Goal,
    rng: &mut OracleRng,
    gen: &mut VarGen,
) -> Vec<(&'static str, Goal)> {
    let mut out = Vec::new();
    if goal.hyps.len() > 1 {
        let mut permuted = goal.clone();
        rng.shuffle(&mut permuted.hyps);
        out.push(("hyp-permutation", permuted));
    }
    if !goal.hyps.is_empty() {
        let mut duped = goal.clone();
        let i = rng.below(duped.hyps.len() as u64) as usize;
        let h = duped.hyps[i].clone();
        duped.hyps.push(h);
        out.push(("duplicate-hyp", duped));
    }
    // α-renaming: substitute a fresh variable for every context variable.
    let mut renamed = goal.clone();
    for i in 0..renamed.ctx.len() {
        let (old, sort) = renamed.ctx[i].clone();
        let fresh = gen.fresh(old.name());
        let replacement = dml_index::IExp::var(fresh.clone());
        renamed.ctx[i] = (fresh, sort);
        renamed.hyps = renamed.hyps.iter().map(|h| h.subst(&old, &replacement)).collect();
        renamed.concl = renamed.concl.subst(&old, &replacement);
    }
    out.push(("alpha-renaming", renamed));
    out
}

/// Proves the batched goals as constraints with 1 and 4 workers and pins
/// verdict-sequence equality.
fn check_workers(
    report: &mut FuzzReport,
    cfg: &FuzzConfig,
    batch: &[(u64, Goal)],
    gen: &mut VarGen,
    digest: &mut Fnv,
) {
    let constraints: Vec<Constraint> = batch.iter().map(|(_, g)| goal_to_constraint(g)).collect();
    let refs: Vec<&Constraint> = constraints.iter().collect();
    let one = Solver::new(SolverOptions::default().with_workers(Some(1)));
    let four = Solver::new(SolverOptions::default().with_workers(Some(4)));
    let mut gen_one = gen.clone();
    let mut gen_four = gen.clone();
    let out_one = prove_all(&one, &refs, &mut gen_one);
    let out_four = prove_all(&four, &refs, &mut gen_four);
    gen.advance_past(gen_one.count().max(gen_four.count()));
    for (i, (a, b)) in out_one.iter().zip(out_four.iter()).enumerate() {
        report.worker_checked_goals += u64::try_from(a.results.len()).unwrap_or(0);
        for (_, v) in &a.results {
            digest.push(&v.to_string());
        }
        // Worker scheduling changes cache warming order, which can move
        // the refuted/unknown split between canonically-equal goals; the
        // proven status is the worker-count-independent part (the same
        // contract `parallel::prove_all`'s own tests pin).
        let va: Vec<bool> = a.results.iter().map(|(_, v)| v.is_proven()).collect();
        let vb: Vec<bool> = b.results.iter().map(|(_, v)| v.is_proven()).collect();
        if va != vb {
            let (iter, goal) = &batch[i];
            push_divergence(
                report,
                cfg,
                Divergence {
                    iter: *iter,
                    kind: DivergenceKind::ConfigFlip,
                    detail: format!("workers=1 proven flags {va:?} vs workers=4 {vb:?}"),
                    repro: write_goal(
                        goal,
                        None,
                        &[format!("workers flip (seed={} iter={iter})", cfg.seed)],
                    ),
                    repro_path: None,
                },
            );
        }
    }
}

/// Wraps a goal back into the constraint language for `prove_all`.
fn goal_to_constraint(goal: &Goal) -> Constraint {
    let hyp = Prop::conj(goal.hyps.iter().cloned());
    let mut c = Constraint::Prop(goal.concl.clone()).guarded_by(hyp);
    for (v, s) in goal.ctx.iter().rev() {
        c = Constraint::forall(v.clone(), *s, c);
    }
    c
}

/// Minimizes a diverging goal with `still` and records the divergence.
#[allow(clippy::too_many_arguments)]
fn record(
    report: &mut FuzzReport,
    cfg: &FuzzConfig,
    iter: u64,
    kind: DivergenceKind,
    detail: String,
    goal: &Goal,
    mut still: impl FnMut(&Goal, &mut VarGen) -> bool,
    gen: &mut VarGen,
) {
    let minimized = minimize(goal, |g| still(g, gen));
    let repro = write_goal(
        &minimized,
        None,
        &[format!("{kind}: {detail} (seed={} iter={iter})", cfg.seed)],
    );
    push_divergence(report, cfg, Divergence { iter, kind, detail, repro, repro_path: None });
}

/// Appends a divergence, writing its repro file when a directory is set.
fn push_divergence(report: &mut FuzzReport, cfg: &FuzzConfig, mut d: Divergence) {
    if let (Some(dir), false) = (&cfg.repro_dir, d.repro.is_empty()) {
        if std::fs::create_dir_all(dir).is_ok() {
            // Scale repros are whole DML programs, not `.goal` sequents.
            let ext = if d.kind == DivergenceKind::ScaleMismatch { "dml" } else { "goal" };
            let path =
                dir.join(format!("repro-seed{}-iter{}-{}.{ext}", report.seed, d.iter, d.kind));
            if std::fs::write(&path, &d.repro).is_ok() {
                d.repro_path = Some(path);
            }
        }
    }
    report.divergences.push(d);
}

/// FNV-1a, the determinism digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig { iters: 60, programs: false, ..FuzzConfig::default() };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert!(a.ok(), "divergences:\n{}", a.render_human());
        assert_eq!(a.digest, b.digest, "same seed, same digest");
        assert_eq!(a.proven, b.proven);
        assert!(a.proven + a.refuted + a.unknown == a.iters);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = run_fuzz(&FuzzConfig { iters: 40, programs: false, ..FuzzConfig::default() });
        let b =
            run_fuzz(&FuzzConfig { iters: 40, seed: 7, programs: false, ..FuzzConfig::default() });
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = run_fuzz(&FuzzConfig { iters: 10, programs: false, ..FuzzConfig::default() });
        let json = r.render_json();
        assert!(json.starts_with(r#"{"seed":42"#), "{json}");
        assert!(json.contains(r#""divergences":[]"#), "{json}");
    }

    #[test]
    fn infer_cross_check_is_clean() {
        // Strip → infer → oracle over the whole benchmark corpus: every
        // annotation inference talks the solver into must survive the
        // enumeration oracle (no countermodel within the box).
        let cfg = FuzzConfig { iters: 0, programs: false, infer: true, ..FuzzConfig::default() };
        let r = run_fuzz(&cfg);
        assert!(r.ok(), "divergences:\n{}", r.render_human());
        assert!(r.infer_programs > 0);
        assert!(r.infer_goals > 0, "no proven goals reached the oracle");
    }

    #[test]
    fn scale_cross_check_is_clean_and_deterministic() {
        // The seeded scale corpus compiles under the whole workers x
        // cache matrix with exactly the stamped verdict counts, and the
        // section contributes to the determinism digest.
        let cfg = FuzzConfig { iters: 0, programs: false, scale: true, ..FuzzConfig::default() };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert!(a.ok(), "divergences:\n{}", a.render_human());
        assert_eq!(a.digest, b.digest, "scale section must be deterministic");
        assert!(a.scale_cases > 0);
        assert!(a.scale_sites > 0);
        assert!(a.render_human().contains("scale:"), "{}", a.render_human());
        assert!(a.render_json().contains(r#""scale":{"cases":"#), "{}", a.render_json());
    }

    #[test]
    fn goal_to_constraint_round_trips_validity() {
        // A valid goal stays provable after wrapping into a constraint.
        let mut gen = VarGen::new();
        let n = gen.fresh("n");
        let goal = Goal {
            ctx: vec![(n.clone(), dml_index::Sort::Int)],
            hyps: vec![Prop::le(dml_index::IExp::lit(0), dml_index::IExp::var(n.clone()))],
            concl: Prop::le(dml_index::IExp::lit(-1), dml_index::IExp::var(n)),
            residual_existential: false,
        };
        let c = goal_to_constraint(&goal);
        let solver = Solver::new(SolverOptions::default().with_workers(Some(1)));
        let outcome = solver.prove(&c, &mut gen);
        assert!(outcome.all_proven(), "{c}");
    }
}
