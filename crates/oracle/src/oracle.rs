//! The combined reference oracle: bounded enumeration + exact-rational FM.
//!
//! A goal `∀ctx. hyps ⊃ concl` is valid over the integers iff its negation
//! `hyps ∧ ¬concl` has no integer model. The oracle attacks the negation
//! from both sides with the two independent deciders:
//!
//! * the [bounded enumerator](crate::enumerate) finds concrete integer
//!   countermodels — a hit means the goal is **definitely invalid**;
//! * the [exact-rational eliminator](crate::fm) proves rational (hence
//!   integer) unsatisfiability — a refutation means the goal is
//!   **definitely valid**.
//!
//! When the negation is rationally satisfiable but has no small integer
//! model the oracle answers [`OracleVerdict::Unknown`] (this is where
//! integer tightening lives, e.g. `2x = 1`); the differential harness only
//! flags solver verdicts that contradict a *definite* oracle answer.
//!
//! The DNF expansion and linearization here are written against
//! `dml_index` types directly and share no code with `crates/solver`.
//! `div`/`mod`/`min`/`max`/`abs`/`sgn` atoms make the rational side
//! decline (the enumerator still handles them with surface semantics).

use crate::enumerate::find_model;
use crate::fm::{rational_sat, RatConstraint, RatSat};
use crate::rat::Rat;
use dml_index::{Cmp, IExp, Prop, Var};
use dml_solver::Goal;
use std::collections::BTreeMap;

/// The oracle's answer about a goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The negation is rationally unsatisfiable: the goal is valid over
    /// the integers. Certified by the exact-rational eliminator.
    Proven,
    /// A concrete integer countermodel of `hyps ∧ ¬concl`, found by the
    /// bounded enumerator. Pairs are `(variable name, value)`.
    Refuted(Vec<(String, i64)>),
    /// Neither decider reached a definite answer within its domain.
    Unknown,
}

/// Default half-width of the enumeration box.
pub const DEFAULT_BOUND: i64 = 5;

/// Cap on oracle-side DNF disjuncts; beyond it the rational side declines.
const MAX_DISJUNCTS: usize = 512;

/// Decides a goal with both reference deciders (see module docs).
/// `bound` is the enumeration half-width; [`DEFAULT_BOUND`] suits the
/// fuzz generator's constant range.
pub fn decide(goal: &Goal, bound: i64) -> OracleVerdict {
    // The negation: hyps ∧ ¬concl, in surface Prop form.
    let mut negation: Vec<Prop> = goal.hyps.clone();
    negation.push(goal.concl.clone().negate());

    if let Some(model) = find_model(&goal.ctx, &negation, bound) {
        let mut named: Vec<(String, i64)> =
            model.iter().map(|(v, n)| (v.name().to_string(), *n)).collect();
        named.sort();
        return OracleVerdict::Refuted(named);
    }

    // Rational side: expand the conjunction of NNF'd props into DNF and
    // refute every disjunct exactly.
    let conj = negation.into_iter().fold(Prop::True, |acc, p| acc.and(p)).nnf();
    let Some(disjuncts) = dnf(&conj) else {
        return OracleVerdict::Unknown;
    };
    for clause in &disjuncts {
        match clause_sat(clause) {
            RatSat::Unsat => continue,
            RatSat::Sat | RatSat::Unknown => return OracleVerdict::Unknown,
        }
    }
    OracleVerdict::Proven
}

/// A DNF literal: a comparison atom or a (possibly negated) boolean
/// variable. `Ne` atoms are split into `<`/`>` disjuncts during expansion.
#[derive(Debug, Clone)]
enum Lit {
    Cmp(Cmp, IExp, IExp),
    Bool(Var, bool),
    Never,
}

/// Expands an NNF proposition into DNF clauses; `None` past the cap.
fn dnf(p: &Prop) -> Option<Vec<Vec<Lit>>> {
    let clauses = match p {
        Prop::True => vec![Vec::new()],
        Prop::False => vec![vec![Lit::Never]],
        Prop::BVar(v) => vec![vec![Lit::Bool(v.clone(), true)]],
        Prop::Not(q) => match q.as_ref() {
            Prop::BVar(v) => vec![vec![Lit::Bool(v.clone(), false)]],
            other => dnf(&other.clone().negate().nnf())?,
        },
        Prop::Cmp(Cmp::Ne, a, b) => vec![
            vec![Lit::Cmp(Cmp::Lt, a.clone(), b.clone())],
            vec![Lit::Cmp(Cmp::Gt, a.clone(), b.clone())],
        ],
        Prop::Cmp(op, a, b) => vec![vec![Lit::Cmp(*op, a.clone(), b.clone())]],
        Prop::Or(a, b) => {
            let mut l = dnf(a)?;
            l.extend(dnf(b)?);
            l
        }
        Prop::And(a, b) => {
            let l = dnf(a)?;
            let r = dnf(b)?;
            let mut out = Vec::with_capacity(l.len().checked_mul(r.len())?);
            for x in &l {
                for y in &r {
                    let mut clause = x.clone();
                    clause.extend(y.iter().cloned());
                    out.push(clause);
                }
            }
            out
        }
    };
    if clauses.len() > MAX_DISJUNCTS {
        None
    } else {
        Some(clauses)
    }
}

/// Decides one DNF clause with the rational eliminator.
fn clause_sat(clause: &[Lit]) -> RatSat {
    let mut sys: Vec<RatConstraint> = Vec::new();
    for lit in clause {
        match lit {
            Lit::Never => return RatSat::Unsat,
            Lit::Bool(v, val) => {
                // β = 0 or β = 1 as two inequalities over the rationals.
                let target = Rat::int(i64::from(*val));
                for sign in [1, -1] {
                    let mut c = RatConstraint::constant(
                        if sign == 1 { target.neg() } else { target },
                        false,
                    );
                    if c.add_term(v.id(), Rat::int(sign)).is_none() {
                        return RatSat::Unknown;
                    }
                    sys.push(c);
                }
            }
            Lit::Cmp(op, a, b) => {
                let (Some(la), Some(lb)) = (rat_linear(a), rat_linear(b)) else {
                    return RatSat::Unknown;
                };
                let Some(diff) = lin_sub(&la, &lb) else {
                    return RatSat::Unknown;
                };
                // diff = a - b; encode op as constraints on diff.
                let push = |sys: &mut Vec<RatConstraint>, lin: RatLinear, strict: bool| {
                    sys.push(RatConstraint { coeffs: lin.0, constant: lin.1, strict });
                };
                match op {
                    Cmp::Le => push(&mut sys, diff, false),
                    Cmp::Lt => push(&mut sys, diff, true),
                    Cmp::Ge => match lin_neg(&diff) {
                        Some(n) => push(&mut sys, n, false),
                        None => return RatSat::Unknown,
                    },
                    Cmp::Gt => match lin_neg(&diff) {
                        Some(n) => push(&mut sys, n, true),
                        None => return RatSat::Unknown,
                    },
                    Cmp::Eq => match lin_neg(&diff) {
                        Some(n) => {
                            push(&mut sys, diff, false);
                            push(&mut sys, n, false);
                        }
                        None => return RatSat::Unknown,
                    },
                    Cmp::Ne => unreachable!("Ne split during DNF expansion"),
                }
            }
        }
    }
    rational_sat(&sys)
}

/// A rational linear form: coefficients by variable id plus a constant.
type RatLinear = (BTreeMap<u32, Rat>, Rat);

/// Linearizes an index expression over the rationals, or `None` if it
/// contains `div`/`mod`/`min`/`max`/`abs`/`sgn`, a product of two
/// non-constants, or overflows.
fn rat_linear(e: &IExp) -> Option<RatLinear> {
    match e {
        IExp::Var(v) => {
            let mut m = BTreeMap::new();
            m.insert(v.id(), Rat::int(1));
            Some((m, Rat::zero()))
        }
        IExp::Lit(n) => Some((BTreeMap::new(), Rat::int(*n))),
        IExp::Add(a, b) => lin_add(&rat_linear(a)?, &rat_linear(b)?),
        IExp::Sub(a, b) => lin_sub(&rat_linear(a)?, &rat_linear(b)?),
        IExp::Mul(a, b) => {
            let la = rat_linear(a)?;
            let lb = rat_linear(b)?;
            if la.0.is_empty() {
                lin_scale(&lb, &la.1)
            } else if lb.0.is_empty() {
                lin_scale(&la, &lb.1)
            } else {
                None
            }
        }
        // Integer division/remainder and the piecewise operators have no
        // exact rational linearization; the rational side declines.
        IExp::Div(..)
        | IExp::Mod(..)
        | IExp::Min(..)
        | IExp::Max(..)
        | IExp::Abs(_)
        | IExp::Sgn(_) => None,
    }
}

fn lin_add(a: &RatLinear, b: &RatLinear) -> Option<RatLinear> {
    let mut coeffs = a.0.clone();
    for (&v, c) in &b.0 {
        let cur = coeffs.remove(&v).unwrap_or_else(Rat::zero);
        let next = cur.add(c)?;
        if !next.is_zero() {
            coeffs.insert(v, next);
        }
    }
    Some((coeffs, a.1.add(&b.1)?))
}

fn lin_neg(a: &RatLinear) -> Option<RatLinear> {
    lin_scale(a, &Rat::int(-1))
}

fn lin_sub(a: &RatLinear, b: &RatLinear) -> Option<RatLinear> {
    lin_add(a, &lin_neg(b)?)
}

fn lin_scale(a: &RatLinear, k: &Rat) -> Option<RatLinear> {
    let mut coeffs = BTreeMap::new();
    for (&v, c) in &a.0 {
        let next = c.mul(k)?;
        if !next.is_zero() {
            coeffs.insert(v, next);
        }
    }
    Some((coeffs, a.1.mul(k)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{Sort, VarGen};

    fn goal(ctx: Vec<(Var, Sort)>, hyps: Vec<Prop>, concl: Prop) -> Goal {
        Goal { ctx, hyps, concl, residual_existential: false }
    }

    #[test]
    fn proves_a_valid_entailment() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let hyps = vec![
            Prop::le(IExp::lit(0), IExp::var(n.clone())),
            Prop::lt(IExp::var(n.clone()), IExp::lit(5)),
        ];
        let concl = Prop::le(IExp::var(n.clone()), IExp::lit(10));
        assert_eq!(
            decide(&goal(vec![(n, Sort::Int)], hyps, concl), DEFAULT_BOUND),
            OracleVerdict::Proven
        );
    }

    #[test]
    fn refutes_with_a_concrete_model() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let hyps = vec![Prop::le(IExp::lit(0), IExp::var(n.clone()))];
        let concl = Prop::lt(IExp::var(n.clone()), IExp::lit(3));
        match decide(&goal(vec![(n, Sort::Int)], hyps, concl), DEFAULT_BOUND) {
            OracleVerdict::Refuted(model) => assert_eq!(model, vec![("n".to_string(), 3)]),
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn tightening_gap_is_unknown() {
        // hyps: 2x = 1 (integer-unsat but rationally sat), concl: false.
        // The goal is vacuously valid over the integers, but neither
        // decider can certify that: no integer model of the negation
        // exists (enumerator silent) and the rational relaxation is
        // satisfiable. This is precisely the integer-tightening gap.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let hyps = vec![Prop::eq(IExp::lit(2) * IExp::var(x.clone()), IExp::lit(1))];
        assert_eq!(
            decide(&goal(vec![(x, Sort::Int)], hyps, Prop::False), DEFAULT_BOUND),
            OracleVerdict::Unknown
        );
    }

    #[test]
    fn disjunctive_hypotheses_expand() {
        // (n = 1 ∨ n = 2) ⊢ n ≤ 2 is valid.
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let hyps = vec![Prop::eq(IExp::var(n.clone()), IExp::lit(1))
            .or(Prop::eq(IExp::var(n.clone()), IExp::lit(2)))];
        let concl = Prop::le(IExp::var(n.clone()), IExp::lit(2));
        assert_eq!(
            decide(&goal(vec![(n, Sort::Int)], hyps, concl), DEFAULT_BOUND),
            OracleVerdict::Proven
        );
    }

    #[test]
    fn ne_conclusion_splits() {
        // 1 ≤ n ⊢ n ≠ 0 is valid (¬concl is n = 0, contradicting 1 ≤ n).
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let hyps = vec![Prop::le(IExp::lit(1), IExp::var(n.clone()))];
        let concl = Prop::cmp(Cmp::Ne, IExp::var(n.clone()), IExp::lit(0));
        assert_eq!(
            decide(&goal(vec![(n, Sort::Int)], hyps, concl), DEFAULT_BOUND),
            OracleVerdict::Proven
        );
    }

    #[test]
    fn nonlinear_negation_declines_to_unknown_or_refutes() {
        // x * x = 4 ⊢ x = 2 has countermodel x = -2: the enumerator finds
        // it even though the rational side cannot linearize the square.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let hyps = vec![Prop::eq(IExp::var(x.clone()) * IExp::var(x.clone()), IExp::lit(4))];
        let concl = Prop::eq(IExp::var(x.clone()), IExp::lit(2));
        match decide(&goal(vec![(x, Sort::Int)], hyps, concl), DEFAULT_BOUND) {
            OracleVerdict::Refuted(model) => assert_eq!(model, vec![("x".to_string(), -2)]),
            other => panic!("expected refutation, got {other:?}"),
        }
    }
}
