//! Differential solver oracle and property-based fuzz harness.
//!
//! The production solver ([`dml_solver`]) decides goals
//! `∀ctx. hyps ⊃ concl` with integer Fourier–Motzkin elimination plus the
//! paper's tightening step, budgets, a canonical verdict cache, and
//! parallel workers — lots of machinery, all of which must agree. This
//! crate cross-checks it against two *independent* reference deciders that
//! share no code with `crates/solver`:
//!
//! * [`enumerate`] — a brute-force model enumerator over a small integer
//!   box. A model of `hyps ∧ ¬concl` is a concrete countermodel: the goal
//!   is definitely invalid, whatever the solver says.
//! * [`fm`] — an exact-rational, fuel-free, single-threaded
//!   Fourier–Motzkin eliminator. Rational unsatisfiability of the
//!   negation implies integer unsatisfiability: the goal is definitely
//!   valid.
//!
//! [`oracle::decide`] combines the two into a three-valued verdict whose
//! `Unknown` is exactly the integer-tightening gap (rationally
//! satisfiable, no small integer model — e.g. `2x = 1`).
//!
//! [`gen`] generates seeded random goals inside the fragment where the
//! oracle is decisive, [`harness::run_fuzz`] runs the differential loop
//! (solver configuration matrix, metamorphic variants, 1-vs-4-worker
//! batches, end-to-end [`program`] cases), [`minimize()`](minimize()) shrinks diverging
//! goals, and [`repro`] serializes them as replayable repro files. The
//! `dmlc fuzz` subcommand and the `tests/` property suites are thin
//! drivers over [`harness`].

#![deny(missing_docs)]

pub mod enumerate;
pub mod fm;
pub mod gen;
pub mod harness;
pub mod minimize;
pub mod oracle;
pub mod program;
pub mod rat;
pub mod repro;
pub mod rng;
pub mod scale;

pub use gen::{gen_goal, GenConfig};
pub use harness::{run_fuzz, Divergence, DivergenceKind, FuzzConfig, FuzzReport};
pub use minimize::minimize;
pub use oracle::{decide, OracleVerdict, DEFAULT_BOUND};
pub use repro::{parse_goal, write_goal, ReproCase};
pub use rng::OracleRng;
pub use scale::{
    gen_scale_corpus, minimize_scale_case, verify_scale_case, ExpectedCounts, ScaleCase,
    ScaleConfig, ScaleCorpus, ScaleUnit,
};
