//! The `--remote` client: one request to a running `dmlc serve` daemon
//! over its Unix socket, rendered exactly like the local command would
//! render it. The daemon renders reports through the same
//! [`dml::report::check_report`] the one-shot path uses, so routing a
//! command through `--remote` changes wall time, not bytes.

use dml::serve::protocol::{self, Json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

/// Sends one request and returns the response's `result` value.
///
/// # Errors
///
/// A printable message for connection failures, transport failures, and
/// in-band protocol errors (the daemon's `error.message`, which for
/// `compile-error` is the same text local `dmlc` prints to stderr).
pub fn call(socket: &str, method: &str, params: Vec<(&str, Json)>) -> Result<Value, String> {
    let stream = UnixStream::connect(socket).map_err(|e| {
        format!(
            "cannot connect to daemon at {socket}: {e}\n\
             (start one with `dmlc serve --socket {socket}`)"
        )
    })?;
    let mut writer = stream.try_clone().map_err(|e| format!("socket error: {e}"))?;
    writer
        .write_all(protocol::request_line(1, method, params).as_bytes())
        .map_err(|e| format!("cannot write to daemon: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read daemon response: {e}"))?;
    if line.trim().is_empty() {
        return Err("daemon closed the connection without responding".to_string());
    }
    let response =
        Value::parse(line.trim()).map_err(|e| format!("daemon sent invalid JSON: {e}"))?;
    if let Some(err) = response.get("error") {
        let code = err.get("code").and_then(Value::as_str).unwrap_or("internal-error");
        let message = err.get("message").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(if code == "compile-error" {
            message.to_string()
        } else {
            format!("daemon error ({code}): {message}")
        });
    }
    response
        .get("result")
        .cloned()
        .ok_or_else(|| "daemon response has neither result nor error".to_string())
}

/// Re-renders a parsed response value as JSON (for `dmlc stats --remote`).
pub fn render(v: &Value) -> String {
    to_json(v).render()
}

fn to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Num(n) => match v.as_i64() {
            Some(i) => Json::Int(i),
            None => Json::Num(*n),
        },
        Value::Str(s) => Json::Str(s.clone()),
        Value::Array(items) => Json::Array(items.iter().map(to_json).collect()),
        Value::Object(fields) => {
            Json::Object(fields.iter().map(|(k, v)| (k.clone(), to_json(v))).collect())
        }
    }
}
