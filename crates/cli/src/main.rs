//! `dmlc` — command-line driver for the dml-rs pipeline.
//!
//! ```text
//! dmlc check <files...> [--jobs N|auto] [--trace-out FILE]
//!                              type-check; report checks (batches fan
//!                              across one warm session)
//! dmlc infer <file.dml> [--json]  synthesize + verify range refinements
//! dmlc strip <file.dml>        print the source with annotations removed
//! dmlc explain <file.dml> [--goal N]  render per-obligation proof traces
//! dmlc constraints <file.dml>  print every generated constraint
//! dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE]
//! dmlc run <file.dml> <fun> [ints...]   run a function on integer args
//! dmlc eval <file.dml> <fun> [ints...]  alias for `run`
//! dmlc emit-rust <file.dml> [--out DIR] [--checked|--unchecked-proven]
//!                              compile to a standalone Rust crate
//! dmlc serve [--socket PATH]   persistent check service (JSON protocol)
//! dmlc stats --remote SOCKET   a running daemon's cache/request counters
//! dmlc shutdown --remote SOCKET  flush the daemon's caches and stop it
//! dmlc fuzz [--seed S] [--iters N] [--scale] [--json]  differential solver fuzzer
//! dmlc figure4                 print the paper's Figure 4 constraints
//! dmlc table <1|2|3> [factor] [--timings]  regenerate an evaluation table
//! dmlc table 1 --infer         Table 1 with annotations stripped + inferred
//! ```
//!
//! `dmlc infer` runs the interval abstract interpreter over every
//! unannotated function, turns the fixpoint into candidate `where`-clauses,
//! and keeps only those the solver verifies — reporting residual bound
//! checks before and after, plus the exact fix-it text for each accepted
//! annotation. `dmlc strip` is its test harness companion: it removes every
//! `where`-clause so a corpus can be round-tripped through inference.
//!
//! Observability (see `docs/ARCHITECTURE.md` for the trace schema):
//!
//! * `dmlc explain` compiles with tracing on and renders each goal's proof
//!   story — hypothesis set, elimination order, fuel, witness — in a
//!   deterministic format (byte-identical across workers/cache settings).
//! * `dmlc check --trace-out trace.json` writes a Chrome trace-event file
//!   (loadable in `chrome://tracing` / Perfetto) with pipeline phase spans,
//!   per-goal solver spans, fuel, and verdict-cache shard occupancy.
//! * `dmlc table 1 --timings` appends per-phase solver latency histograms.
//!
//! Session flags (accepted by `check`, `constraints`, `lint`, `run`/`eval`):
//!
//! * `--fuel N` — per-goal Fourier–Motzkin budget; exhausted goals come
//!   back unknown and their checks stay at run time.
//! * `--deadline-ms N` — per-goal wall-clock budget.
//! * `--strict` — unproven obligations abort compilation (the permissive
//!   default lets them degrade to residual runtime checks).
//! * `--disk-cache FILE` — attach the persistent verdict store: canonical
//!   goal verdicts survive across processes (and are shared with any
//!   `dmlc serve --disk-cache` daemon pointed at the same file).
//! * `--remote SOCKET` — run `check`/`infer`/`explain` against a
//!   `dmlc serve --socket SOCKET` daemon instead of in-process. Output is
//!   byte-identical (both paths render through the same report code);
//!   only the wall time changes.

use dml::experiments;
use dml::{Compiler, Mode, Severity, Value};
use std::process::ExitCode;
use std::time::Duration;

#[cfg(unix)]
mod remote;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (session, args) = match parse_session_flags(&args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let compiler = &session.compiler;
    match args.first().map(String::as_str) {
        Some("check") => check_cmd(&session, &args),
        Some("infer") => infer_cmd(&session, &args),
        Some("strip") => with_file(&args, strip),
        Some("explain") => explain_cmd(&session, &args),
        Some("constraints") => with_file(&args, |src| constraints(compiler, src)),
        Some("lint") => lint(compiler, &args),
        Some("run" | "eval") => run(compiler, &args),
        Some("emit-rust") => emit_rust(compiler, &args),
        Some("serve") => serve_cmd(&session, &args),
        Some("stats") => remote_only(&session, "stats"),
        Some("shutdown") => remote_only(&session, "shutdown"),
        Some("fuzz") => fuzz(&args),
        Some("figure4") => {
            for line in experiments::figure4() {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Some("table") => table(&args),
        _ => {
            eprintln!(
                "usage: dmlc <check|infer|strip|explain|constraints|lint|run|eval|emit-rust|serve|stats|shutdown|fuzz|figure4|table> ...\n\
                 \n\
                 dmlc check <files...> [--jobs N|auto] [--trace-out FILE] [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc infer <file.dml> [--json] [--fuel N] [--deadline-ms N]\n\
                 dmlc strip <file.dml>\n\
                 dmlc explain <file.dml> [--goal N] [--fuel N] [--deadline-ms N]\n\
                 dmlc constraints <file.dml> [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE] [--fuel N] [--strict]\n\
                 dmlc run <file.dml> <fun> [ints...] [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc eval <file.dml> <fun> [ints...]   (alias for run)\n\
                 dmlc emit-rust <file.dml> [--out DIR] [--checked|--unchecked-proven] [--name NAME]\n\
                 dmlc serve [--socket PATH] [--disk-cache FILE] [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc stats --remote SOCKET\n\
                 dmlc shutdown --remote SOCKET\n\
                 dmlc fuzz [--seed S] [--iters N] [--bound B] [--json] [--infer] [--scale] [--repro-dir D] [--no-programs]\n\
                 dmlc figure4\n\
                 dmlc table <1|2|3> [factor] [--timings] [--infer]\n\
                 \n\
                 check/explain/infer also accept --remote SOCKET to run against a\n\
                 `dmlc serve --socket SOCKET` daemon (same output, warm caches)."
            );
            ExitCode::FAILURE
        }
    }
}

/// One configured invocation: the compiler session plus where to run it
/// (locally, or against a `dmlc serve` daemon).
struct SessionSetup {
    compiler: Compiler,
    /// Unix-socket path of a running daemon (`--remote`).
    remote: Option<String>,
}

/// Extracts the session flags (`--fuel`, `--deadline-ms`, `--strict`,
/// `--disk-cache`, `--remote`) from anywhere on the command line,
/// returning the configured [`SessionSetup`] and the remaining arguments.
fn parse_session_flags(args: &[String]) -> Result<(SessionSetup, Vec<String>), String> {
    let mut compiler = Compiler::new();
    let mut remote = None;
    let mut disk_cache: Option<String> = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fuel" => {
                let v = it.next().ok_or("--fuel expects a number")?;
                let n: u64 =
                    v.parse().map_err(|_| format!("--fuel expects a number, got `{v}`"))?;
                compiler = compiler.fuel(n);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms expects a number")?;
                let n: u64 =
                    v.parse().map_err(|_| format!("--deadline-ms expects a number, got `{v}`"))?;
                compiler = compiler.deadline(Duration::from_millis(n));
            }
            "--strict" => compiler = compiler.strict(true),
            "--disk-cache" => {
                let v = it.next().ok_or("--disk-cache expects a file path")?;
                disk_cache = Some(v.clone());
            }
            "--remote" => {
                let v = it.next().ok_or("--remote expects a socket path")?;
                remote = Some(v.clone());
            }
            _ => rest.push(a.clone()),
        }
    }
    // Attach the disk tier after all budget flags are parsed so the
    // session solver is created with its final options.
    if let Some(path) = disk_cache {
        let loaded = {
            compiler = compiler.disk_cache(&path);
            compiler.solver().cache().disk_loaded()
        };
        eprintln!("disk cache: {loaded} verdict(s) loaded from {path}");
    }
    Ok((SessionSetup { compiler, remote }, rest))
}

fn with_file(args: &[String], f: impl Fn(&str) -> ExitCode) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    match std::fs::read_to_string(path) {
        Ok(src) => f(&src),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc check <files...> [--jobs N|auto] [--trace-out FILE]` — with
/// `--trace-out`, compiles with tracing on and writes a Chrome
/// trace-event file alongside the normal report (which stays
/// byte-identical in the default mode). With `--remote SOCKET` the check
/// runs on a `dmlc serve` daemon instead and prints the same report.
///
/// With several files (a batch), every file compiles against the same
/// warm session — canonically-equal goals dedupe across files — and the
/// merged report prints one `== path ==` section per file in input
/// order, byte-identical to sequential per-file runs modulo the volatile
/// timing/cache lines. `--jobs N` fans the batch across N worker
/// threads (`auto` = one per core); output and exit code are identical
/// at any jobs count, only wall time changes.
fn check_cmd(session: &SessionSetup, args: &[String]) -> ExitCode {
    let mut trace_out: Option<String> = None;
    let mut jobs: usize = 1;
    let mut files: Vec<String> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--trace-out" => match rest.next() {
                Some(f) => trace_out = Some(f.clone()),
                None => {
                    eprintln!("--trace-out expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match rest.next().map(String::as_str) {
                Some("auto") => {
                    jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
                }
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs expects a positive number or `auto`, got `{v}`");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--jobs expects a positive number or `auto`");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                return ExitCode::FAILURE;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    }
    if files.len() > 1 && trace_out.is_some() {
        eprintln!("--trace-out expects a single file");
        return ExitCode::FAILURE;
    }

    // Single file, no fan-out: the original path, byte-for-byte.
    if files.len() == 1 && jobs == 1 {
        return check_one(session, &files[0], trace_out.as_deref());
    }

    // Batch mode. Read everything up front so a bad path fails before
    // any compile runs (deterministic regardless of jobs).
    let mut entries = Vec::with_capacity(files.len());
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(source) => entries.push(dml::BatchEntry { name: path.clone(), source }),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(socket) = &session.remote {
        return remote_check_batch(socket, &entries);
    }
    let compiler = session.compiler.clone();
    let outcome = dml::check_batch(&compiler, &entries, jobs);
    if entries.len() == 1 {
        // A 1-file batch (`--jobs` on a single file) keeps the
        // single-file output shape: no section header.
        match (&outcome.results[0].report, &outcome.results[0].error) {
            (Some(r), _) => print!("{}", r.text),
            (None, Some(e)) => eprintln!("{e}"),
            (None, None) => {}
        }
    } else {
        print!("{}", outcome.merged_report());
        eprintln!("{}", outcome.summary.render());
    }
    flush_disk_tier(&compiler);
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The original single-file `dmlc check` path (local or `--remote`).
fn check_one(session: &SessionSetup, path: &str, trace_out: Option<&str>) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(socket) = &session.remote {
        if trace_out.is_some() {
            eprintln!("--trace-out is not supported with --remote");
            return ExitCode::FAILURE;
        }
        return remote_check(socket, path, &src);
    }
    let compiler = if trace_out.is_some() {
        session.compiler.clone().trace(true)
    } else {
        session.compiler.clone()
    };
    match compiler.compile(&src) {
        Ok(compiled) => {
            if let Some(out_path) = trace_out {
                let trace = dml::chrome_trace(&compiled, &src, path);
                if let Err(e) = std::fs::write(out_path, trace.render()) {
                    eprintln!("cannot write {out_path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("trace written to {out_path} ({} events)", trace.len());
            }
            let report = dml::check_report(&compiled, &src);
            print!("{}", report.text);
            flush_disk_tier(&compiler);
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Fans a batch over a `dmlc serve` daemon: one `check` request per file
/// over the daemon's warm session (requests pipeline sequentially — the
/// daemon is the shared cache; `--jobs` only parallelizes local
/// checking). The merged output matches the local batch shape.
#[cfg(unix)]
fn remote_check_batch(socket: &str, entries: &[dml::BatchEntry]) -> ExitCode {
    use dml::serve::protocol::Json;
    let mut failed = 0usize;
    for e in entries {
        println!("== {} ==", e.name);
        let params =
            vec![("source", Json::Str(e.source.clone())), ("path", Json::Str(e.name.clone()))];
        match remote::call(socket, "check", params) {
            Ok(result) => {
                let report =
                    result.get("report").and_then(dml::serve::Value::as_str).unwrap_or_default();
                print!("{report}");
                if !result.get("ok").and_then(dml::serve::Value::as_bool).unwrap_or(false) {
                    failed += 1;
                }
            }
            Err(err) => {
                println!("error: {err}");
                failed += 1;
            }
        }
    }
    eprintln!("batch: {} file(s), {failed} failed (remote)", entries.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(not(unix))]
fn remote_check_batch(_socket: &str, _entries: &[dml::BatchEntry]) -> ExitCode {
    eprintln!("--remote requires a Unix platform");
    ExitCode::FAILURE
}

/// Persists newly decided verdicts when a `--disk-cache` store is
/// attached (a no-op otherwise).
fn flush_disk_tier(compiler: &Compiler) {
    match compiler.flush_disk() {
        Ok(Some(n)) => eprintln!("disk cache: {n} verdict(s) on disk"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: disk cache flush failed: {e}"),
    }
}

#[cfg(unix)]
fn remote_check(socket: &str, path: &str, src: &str) -> ExitCode {
    use dml::serve::protocol::Json;
    let params =
        vec![("source", Json::Str(src.to_string())), ("path", Json::Str(path.to_string()))];
    match remote::call(socket, "check", params) {
        Ok(result) => {
            let report =
                result.get("report").and_then(dml::serve::Value::as_str).unwrap_or_default();
            print!("{report}");
            let ok = result.get("ok").and_then(dml::serve::Value::as_bool).unwrap_or(false);
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn remote_check(_socket: &str, _path: &str, _src: &str) -> ExitCode {
    eprintln!("--remote requires a Unix platform");
    ExitCode::FAILURE
}

/// `dmlc infer <file> [--json]` — compiles with inference enabled and
/// prints the before/after residual-check report: accepted annotations
/// (with fix-it text), rejected candidates (with the solver's reason), and
/// the honestly-residual sites.
fn infer_cmd(session: &SessionSetup, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc infer <file.dml> [--json]");
        return ExitCode::FAILURE;
    };
    let mut json = false;
    for flag in &args[2..] {
        match flag.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(socket) = &session.remote {
        return remote_text(socket, "infer", &src, vec![("json", json_bool(json))]);
    }
    let compiled = match session.compiler.clone().infer(true).compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(report) = compiled.infer_report() else {
        eprintln!("inference produced no report (internal error)");
        return ExitCode::FAILURE;
    };
    if json {
        println!("{}", report.render_json(&src));
    } else {
        print!("{}", report.render_human(&src));
    }
    ExitCode::SUCCESS
}

/// `dmlc strip <file>` — prints the source with every `where`-annotation
/// removed (the inference test harness's corpus generator).
fn strip(src: &str) -> ExitCode {
    match dml::strip_annotations(src) {
        Ok(stripped) => {
            print!("{stripped}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc explain <file> [--goal N]` — renders the deterministic per-goal
/// proof traces of a traced compile.
fn explain_cmd(session: &SessionSetup, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc explain <file.dml> [--goal N]");
        return ExitCode::FAILURE;
    };
    let mut goal: Option<usize> = None;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--goal" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => goal = Some(n),
                None => {
                    eprintln!("--goal expects a goal number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(socket) = &session.remote {
        let extra = match goal {
            Some(n) => vec![("goal", dml::serve::protocol::Json::Int(n as i64))],
            None => Vec::new(),
        };
        return remote_text(socket, "explain", &src, extra);
    }
    match session.compiler.clone().trace(true).compile(&src) {
        Ok(compiled) => {
            if let Some(n) = goal {
                let total = compiled.goal_count();
                if n == 0 || n > total {
                    match total {
                        0 => eprintln!("goal {n} does not exist: the program has no solver goals"),
                        1 => eprintln!("goal {n} does not exist: the only valid goal is 1"),
                        _ => eprintln!("goal {n} does not exist: valid goals are 1..={total}"),
                    }
                    return ExitCode::FAILURE;
                }
            }
            print!("{}", dml::render_explain(&compiled, &src, goal));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc fuzz [--seed S] [--iters N] [--bound B] [--json] [--infer]
/// [--scale] [--repro-dir D] [--no-programs]` — runs the differential
/// solver fuzzer
/// (`dml-oracle`): random goals are decided by the production solver under
/// a configuration matrix and cross-checked against two independent
/// reference deciders, with metamorphic and end-to-end program properties
/// alongside. `--infer` additionally strips each corpus program, re-infers
/// its annotations, and cross-checks every solver-proven obligation of the
/// refined program against the exact-rational oracle. `--scale` compiles a
/// seeded scale corpus under the workers × cache matrix, pinning the
/// generator's stamped verdict counts; diverging cases are shrunk and
/// written as `.dml` repros. Exits FAILURE if any divergence is found;
/// repro files land in `--repro-dir`.
fn fuzz(args: &[String]) -> ExitCode {
    let mut cfg = dml_oracle::FuzzConfig::default();
    let mut json = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("--seed expects a number");
                    return ExitCode::FAILURE;
                }
            },
            "--iters" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.iters = n,
                None => {
                    eprintln!("--iters expects a number");
                    return ExitCode::FAILURE;
                }
            },
            "--bound" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(b) if b > 0 => cfg.bound = b,
                _ => {
                    eprintln!("--bound expects a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--repro-dir" => match rest.next() {
                Some(d) => cfg.repro_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("--repro-dir expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = true,
            "--infer" => cfg.infer = true,
            "--scale" => cfg.scale = true,
            "--no-programs" => cfg.programs = false,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = dml_oracle::run_fuzz(&cfg);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `dmlc serve [--socket PATH]` — runs the persistent check service over
/// stdio (the default) or a Unix socket, holding one warm compiler session
/// — goal cache, gen memo, worker pool, optional `--disk-cache` store —
/// across every request. Protocol: `docs/PROTOCOL.md`.
fn serve_cmd(session: &SessionSetup, args: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--socket" => match rest.next() {
                Some(p) => socket = Some(p.clone()),
                None => {
                    eprintln!("--socket expects a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut service = dml::Session::new(session.compiler.clone());
    let result = match &socket {
        None => {
            eprintln!(
                "dmlc serve: reading requests from stdin (schemaVersion {})",
                dml::serve::SCHEMA_VERSION
            );
            dml::serve::serve_stdio(&mut service)
        }
        Some(path) => serve_socket(&mut service, path),
    };
    // Shutdown requests flush in-band; this covers plain EOF.
    match service.flush_disk() {
        Ok(Some(n)) => eprintln!("disk cache: {n} verdict(s) on disk"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: disk cache flush failed: {e}"),
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn serve_socket(service: &mut dml::Session, path: &str) -> std::io::Result<()> {
    eprintln!("dmlc serve: listening on {path} (schemaVersion {})", dml::serve::SCHEMA_VERSION);
    dml::serve::serve_unix(service, std::path::Path::new(path))
}

#[cfg(not(unix))]
fn serve_socket(_service: &mut dml::Session, _path: &str) -> std::io::Result<()> {
    Err(std::io::Error::other("--socket requires a Unix platform"))
}

/// `dmlc stats --remote SOCKET` / `dmlc shutdown --remote SOCKET` —
/// methods that only make sense against a running daemon.
fn remote_only(session: &SessionSetup, method: &'static str) -> ExitCode {
    let Some(socket) = &session.remote else {
        eprintln!("usage: dmlc {method} --remote SOCKET");
        return ExitCode::FAILURE;
    };
    remote_simple(socket, method)
}

#[cfg(unix)]
fn remote_simple(socket: &str, method: &str) -> ExitCode {
    match remote::call(socket, method, Vec::new()) {
        Ok(result) => {
            println!("{}", remote::render(&result));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn remote_simple(_socket: &str, _method: &str) -> ExitCode {
    eprintln!("--remote requires a Unix platform");
    ExitCode::FAILURE
}

/// Sends a source-bearing request to the daemon and prints its `text`
/// result verbatim (the daemon renders through the same code paths the
/// local commands use).
#[cfg(unix)]
fn remote_text(
    socket: &str,
    method: &str,
    src: &str,
    extra: Vec<(&str, dml::serve::protocol::Json)>,
) -> ExitCode {
    use dml::serve::protocol::Json;
    let mut params = vec![("source", Json::Str(src.to_string()))];
    params.extend(extra);
    match remote::call(socket, method, params) {
        Ok(result) => {
            print!(
                "{}",
                result.get("text").and_then(dml::serve::Value::as_str).unwrap_or_default()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn remote_text(
    _socket: &str,
    _method: &str,
    _src: &str,
    _extra: Vec<(&str, dml::serve::protocol::Json)>,
) -> ExitCode {
    eprintln!("--remote requires a Unix platform");
    ExitCode::FAILURE
}

fn json_bool(b: bool) -> dml::serve::protocol::Json {
    dml::serve::protocol::Json::Bool(b)
}

fn constraints(compiler: &Compiler, src: &str) -> ExitCode {
    match compiler.compile(src) {
        Ok(compiled) => {
            let mut unproven = 0usize;
            for (o, r) in compiled.obligations() {
                if !r.is_proven() {
                    unproven += 1;
                }
                println!("{o}  [{}]", if r.is_proven() { "valid" } else { "NOT PROVEN" });
            }
            // To stderr: cache counters vary with solver configuration,
            // while stdout stays byte-identical across workers/cache
            // settings (the determinism contract of the solve phase).
            let stats = compiled.stats();
            eprintln!(
                "solver cache: {} hits, {} misses",
                stats.solver.cache_hits, stats.solver.cache_misses
            );
            if unproven > 0 {
                eprintln!("{unproven} obligation(s) not proven");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc emit-rust <file> [--out DIR] [--checked|--unchecked-proven]
/// [--name NAME]` — compiles a checked program to a standalone Cargo crate
/// (see docs/EMIT.md for the emission contract).
///
/// The default variant is `--unchecked-proven`: array/list sites whose
/// guard obligations the solver proved become `get_unchecked`-style
/// accesses inside `// SAFETY: goal #N proven` unsafe blocks; everything
/// else (and the whole program under `--checked`) uses the hoisted checked
/// form. The default output directory is `emit/<name>_<variant>/`.
fn emit_rust(compiler: &Compiler, args: &[String]) -> ExitCode {
    let usage =
        "usage: dmlc emit-rust <file.dml> [--out DIR] [--checked|--unchecked-proven] [--name NAME]";
    let Some(path) = args.get(1) else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let mut variant = dml_emit::Variant::UncheckedProven;
    let mut out_dir: Option<String> = None;
    let mut name: Option<String> = None;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--checked" => variant = dml_emit::Variant::Checked,
            "--unchecked-proven" => variant = dml_emit::Variant::UncheckedProven,
            "--out" => match rest.next() {
                Some(d) => out_dir = Some(d.clone()),
                None => {
                    eprintln!("--out expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--name" => match rest.next() {
                Some(n) => name = Some(n.clone()),
                None => {
                    eprintln!("--name expects a crate name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let schemes = match dml_types::infer::infer_program(compiled.program(), compiled.env()) {
        Ok(r) => r.schemes,
        Err(e) => {
            eprintln!("phase-1 re-inference failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let sites = compiled.site_verdicts();
    let stem = std::path::Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("program");
    let variant_tag = match variant {
        dml_emit::Variant::Checked => "checked",
        dml_emit::Variant::UncheckedProven => "unchecked",
    };
    let crate_name =
        name.unwrap_or_else(|| format!("{}_{variant_tag}", dml_emit::sanitize_crate_name(stem)));
    let opts = dml_emit::EmitOptions { variant, crate_name: crate_name.clone() };
    let emitted =
        match dml_emit::emit_program(compiled.program(), compiled.env(), &schemes, &sites, &opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
    let dir = out_dir.unwrap_or_else(|| format!("emit/{crate_name}"));
    let dir = std::path::Path::new(&dir);
    if let Err(e) = dml_emit::write_crate(&emitted, dir) {
        eprintln!("cannot write {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let proven = sites.iter().filter(|s| s.proven).count();
    println!("emitted {} ({}) to {}", emitted.crate_name, variant, dir.display());
    println!(
        "sites: {} proven of {} total; lowered {} unchecked, {} checked",
        proven,
        sites.len(),
        emitted.stats.unchecked_sites,
        emitted.stats.checked_sites
    );
    if let Some(reason) = &emitted.driver_fallback {
        println!("driver: build-only fallback ({reason})");
    } else {
        println!("driver: benchmark main synthesised (argv: [size] [iters] [seed])");
    }
    println!("build: cargo build --release --manifest-path {}/Cargo.toml", dir.display());
    ExitCode::SUCCESS
}

/// `dmlc lint <file> [--format human|json|sarif] [--deny CODE]`
///
/// Exit code contract: FAILURE on compile errors, on unknown flags, and
/// whenever any finding has error severity (a `--deny`'d code promotes its
/// findings to errors); SUCCESS otherwise, warnings included.
fn lint(compiler: &Compiler, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE]");
        return ExitCode::FAILURE;
    };
    let mut format = "human".to_string();
    let mut deny: Vec<&'static str> = Vec::new();
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--format" => match rest.next().map(String::as_str) {
                Some(f @ ("human" | "json" | "sarif")) => format = f.to_string(),
                other => {
                    eprintln!(
                        "--format expects human|json|sarif, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--deny" => match rest.next().and_then(|c| dml::lint_by_code(c)) {
                Some(l) => deny.push(l.code),
                None => {
                    eprintln!("--deny expects a known lint code (DML001..DML007) or name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = compiled.lints();
    for f in &mut findings {
        if deny.contains(&f.code) {
            f.severity = Severity::Error;
        }
    }
    match format.as_str() {
        "human" => print!("{}", dml::render::human(&findings, &src)),
        "json" => print!("{}", dml::render::json(&findings, &src)),
        "sarif" => print!("{}", dml::render::sarif(&findings, &src, path)),
        _ => unreachable!("validated above"),
    }
    if findings.iter().any(|f| f.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run(compiler: &Compiler, args: &[String]) -> ExitCode {
    let (Some(path), Some(fun)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: dmlc run <file.dml> <fun> [ints...]");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ints = Vec::new();
    for a in &args[3..] {
        match a.parse::<i64>() {
            Ok(n) => ints.push(Value::Int(n)),
            Err(_) => {
                eprintln!("argument `{a}` is not an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    let call_args = match ints.len() {
        0 => vec![Value::Unit],
        1 => ints,
        _ => vec![Value::Tuple(std::rc::Rc::new(ints))],
    };
    let mut machine = compiled.machine(Mode::Eliminated);
    match machine.call(fun, call_args) {
        Ok(v) => {
            println!("{v}");
            println!(
                "checks: {} executed ({} residual), {} eliminated",
                machine.counters.executed(),
                machine.counters.residual(),
                machine.counters.eliminated()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn table(args: &[String]) -> ExitCode {
    let timings = args.iter().any(|a| a == "--timings");
    let infer = args.iter().any(|a| a == "--infer");
    let rest: Vec<&String> = args.iter().filter(|a| *a != "--timings" && *a != "--infer").collect();
    let which = rest.get(1).map(|s| s.as_str()).unwrap_or("1");
    let factor: u32 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    match which {
        "1" if infer => {
            print!("{}", experiments::table1_infer_rendered(&experiments::table1_infer()));
        }
        "1" => {
            let rows = experiments::table1();
            print!("{}", experiments::table1_rows_rendered(&rows));
            if timings {
                print!("{}", experiments::table1_timings(&rows));
            }
        }
        "2" => print!("{}", experiments::table_rendered(&experiments::table2(factor))),
        "3" => print!("{}", experiments::table_rendered(&experiments::table3(factor))),
        other => {
            eprintln!("unknown table `{other}` (expected 1, 2, or 3)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
